//! Telemetry observer hooks.
//!
//! Two thin traits let the telemetry layer watch the kernel without the
//! kernel depending on it (the same cycle-avoiding pattern as
//! [`crate::trace::TraceSink`]):
//!
//! * [`KernelObserver`] receives virtual-time scheduling records —
//!   context switches, migrations, preemptions, enqueues, IRQ/softirq
//!   service windows and policy switches — plus every dispatched event
//!   (the same [`EventRecord`] stream the sanitizer folds). Observers
//!   are pure: no method returns a value the kernel reads, so attaching
//!   one cannot perturb the simulation. The purity property test in
//!   `noiselab-core` proves it by `stream_hash` equality.
//! * [`HostProfiler`] receives host-time phase boundaries (event
//!   dispatch, scheduler, tracer). The kernel never reads a clock — it
//!   only announces phase entry/exit; the boxed implementation in
//!   `noiselab-telemetry` reads the single audited `wall_clock()` site.
//!
//! Every call site is guarded by an `Option` check, so a kernel with no
//! observer attached pays one branch per hook and nothing else.

use crate::sanitize::{EventKind, EventRecord};
use crate::thread::{ThreadKind, ThreadState};
use crate::wire::{InternTable, WireRecord};
use noiselab_sim::SimTime;

/// One scheduling-layer occurrence, flattened for observation. Borrowed
/// string fields keep the hooks allocation-free.
#[derive(Debug, Clone, Copy)]
pub enum SchedRecord<'a> {
    /// A thread went on-CPU.
    SwitchIn {
        cpu: u32,
        thread: u32,
        /// Thread name, for span labels.
        name: &'a str,
        kind: ThreadKind,
        time: SimTime,
        /// Threads left queued on this CPU after the pick.
        runq_depth: u32,
    },
    /// A thread left its CPU into `state`.
    SwitchOut {
        cpu: u32,
        thread: u32,
        time: SimTime,
        state: ThreadState,
    },
    /// The current thread was involuntarily descheduled (stays ready).
    Preempt {
        cpu: u32,
        thread: u32,
        time: SimTime,
    },
    /// A thread was placed in a runqueue; `depth` counts queued threads
    /// on that CPU after insertion.
    Enqueue {
        cpu: u32,
        thread: u32,
        time: SimTime,
        depth: u32,
    },
    /// A thread is being pulled onto `to_cpu` from another CPU.
    Migrate {
        thread: u32,
        to_cpu: u32,
        time: SimTime,
        cross_numa: bool,
    },
    /// An IRQ or softirq service window occupied `cpu` for
    /// `duration_ns` starting at `time`.
    IrqSpan {
        cpu: u32,
        time: SimTime,
        duration_ns: u64,
        source: &'a str,
        softirq: bool,
    },
    /// A queued (Ready) thread was removed from its runqueue without
    /// going on-CPU: a preempted spinner gave up, or a fault abort tore
    /// the thread down while it waited. Steal-path dequeues are *not*
    /// reported here — they surface as [`SchedRecord::Migrate`]. With
    /// this record, runqueue membership is fully reconstructible from
    /// the stream (the conformance invariants depend on that).
    Dequeue {
        cpu: u32,
        thread: u32,
        time: SimTime,
    },
    /// A thread changed scheduling class.
    PolicySwitch {
        thread: u32,
        time: SimTime,
        rt: bool,
    },
    /// The scheduler passed a decision point (pick, placement,
    /// preemption check, steal). The conformance suite derives its
    /// branch-coverage signature from this stream; telemetry counts it.
    Decision {
        cpu: u32,
        time: SimTime,
        point: DecisionPoint,
    },
    /// A CPU changed frequency (DVFS). `from_khz`/`to_khz` name the
    /// levels; the conformance invariants chain these per CPU (each
    /// record's `from_khz` must equal the previous record's `to_khz`)
    /// and audit the per-package turbo budget from the stream alone.
    FreqTransition {
        cpu: u32,
        time: SimTime,
        from_khz: u32,
        to_khz: u32,
    },
    /// A CPU crossed a thermal-throttle boundary. `heat_milli` is the
    /// integer thermal accumulator at the transition; `entered == true`
    /// means the CPU is now clamped to its minimum frequency. The
    /// hysteresis invariant checks enter-heat against the configured
    /// threshold and exit-heat against the release point.
    Throttle {
        cpu: u32,
        time: SimTime,
        heat_milli: u64,
        entered: bool,
    },
}

/// A branch the scheduler can take at one of its decision sites. Each
/// variant is one edge of the decision graph the conformance fuzzer
/// tries to cover; [`DecisionPoint::index`] gives a dense coverage-map
/// slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecisionPoint {
    /// Dispatch picked the head of the local RT queue.
    PickRt,
    /// Dispatch picked the local CFS argmin-vruntime thread.
    PickFair,
    /// Dispatch pulled a thread from another CPU (idle balance).
    PickSteal,
    /// Dispatch found nothing runnable; the CPU goes idle.
    PickNone,
    /// A wakeup preempted the current thread.
    WakePreempt,
    /// A wakeup left the current thread running.
    WakeNoPreempt,
    /// The scheduler tick preempted the fair current thread.
    TickPreempt,
    /// Placement: previous CPU, on a fully idle physical core.
    PlaceLastCore,
    /// Placement: a fully idle core in the thread's home domain.
    PlaceHomeIdleCore,
    /// Placement: a fully idle core in a remote NUMA domain.
    PlaceRemoteIdleCore,
    /// Placement: the merely-idle previous CPU (busy sibling).
    PlaceLastIdle,
    /// Placement: the first idle CPU in the allowed mask.
    PlaceAnyIdle,
    /// Placement: no idle CPU — the least-loaded allowed CPU.
    PlaceLeastLoaded,
    /// Idle balance stole an RT thread.
    StealRt,
    /// Idle balance stole a fair (CFS-tail) thread.
    StealFair,
    /// Idle balance found no eligible victim.
    StealNone,
    /// The governor requested turbo and a package slot was free.
    TurboGrant,
    /// The governor settled the CPU at base: turbo was requested but
    /// the package budget was exhausted, or load no longer warrants a
    /// boost (schedutil downshift).
    TurboDeny,
    /// The thermal accumulator crossed the throttle threshold; the CPU
    /// clamped to min.
    ThrottleEnter,
    /// A throttled CPU cooled past the release point and rejoined
    /// governor control.
    ThrottleExit,
    /// A CPU with no runnable work dropped to its idle (min) frequency.
    FreqIdle,
}

impl DecisionPoint {
    pub const ALL: [DecisionPoint; 21] = [
        DecisionPoint::PickRt,
        DecisionPoint::PickFair,
        DecisionPoint::PickSteal,
        DecisionPoint::PickNone,
        DecisionPoint::WakePreempt,
        DecisionPoint::WakeNoPreempt,
        DecisionPoint::TickPreempt,
        DecisionPoint::PlaceLastCore,
        DecisionPoint::PlaceHomeIdleCore,
        DecisionPoint::PlaceRemoteIdleCore,
        DecisionPoint::PlaceLastIdle,
        DecisionPoint::PlaceAnyIdle,
        DecisionPoint::PlaceLeastLoaded,
        DecisionPoint::StealRt,
        DecisionPoint::StealFair,
        DecisionPoint::StealNone,
        DecisionPoint::TurboGrant,
        DecisionPoint::TurboDeny,
        DecisionPoint::ThrottleEnter,
        DecisionPoint::ThrottleExit,
        DecisionPoint::FreqIdle,
    ];

    /// Dense index into coverage maps; `ALL[p.index()] == p`.
    pub fn index(self) -> usize {
        self as usize
    }

    pub fn name(self) -> &'static str {
        match self {
            DecisionPoint::PickRt => "pick-rt",
            DecisionPoint::PickFair => "pick-fair",
            DecisionPoint::PickSteal => "pick-steal",
            DecisionPoint::PickNone => "pick-none",
            DecisionPoint::WakePreempt => "wake-preempt",
            DecisionPoint::WakeNoPreempt => "wake-no-preempt",
            DecisionPoint::TickPreempt => "tick-preempt",
            DecisionPoint::PlaceLastCore => "place-last-core",
            DecisionPoint::PlaceHomeIdleCore => "place-home-idle-core",
            DecisionPoint::PlaceRemoteIdleCore => "place-remote-idle-core",
            DecisionPoint::PlaceLastIdle => "place-last-idle",
            DecisionPoint::PlaceAnyIdle => "place-any-idle",
            DecisionPoint::PlaceLeastLoaded => "place-least-loaded",
            DecisionPoint::StealRt => "steal-rt",
            DecisionPoint::StealFair => "steal-fair",
            DecisionPoint::StealNone => "steal-none",
            DecisionPoint::TurboGrant => "turbo-grant",
            DecisionPoint::TurboDeny => "turbo-deny",
            DecisionPoint::ThrottleEnter => "throttle-enter",
            DecisionPoint::ThrottleExit => "throttle-exit",
            DecisionPoint::FreqIdle => "freq-idle",
        }
    }
}

/// A pure observer of kernel activity. Both methods default to no-ops
/// so an implementation can subscribe to only one stream.
pub trait KernelObserver {
    /// Called at the single dispatch point, with the same record the
    /// sanitizer hashes.
    fn event(&mut self, rec: &EventRecord<'_>) {
        let _ = rec;
    }

    /// A batch of consecutively dispatched events, in dispatch order,
    /// in the compact wire encoding: `tag` is [`EventKind::tag`],
    /// `name` indexes `intern` (the event's noise-source label, absent
    /// for `u32::MAX`), `start`/`dur_ns` carry the dispatch time and
    /// IRQ service length. The kernel buffers small batches and always
    /// flushes before delivering a scheduling record and before the
    /// run-loop returns, so the merged event/sched order an observer
    /// sees is unchanged — only the call granularity differs.
    /// Implementations that only count can add `batch.len()` in one
    /// step; the default decodes each record back into an
    /// [`EventRecord`] and fans out to [`KernelObserver::event`].
    fn events(&mut self, batch: &[WireRecord], intern: &InternTable) {
        for w in batch {
            let rec = EventRecord {
                kind: EventKind::from_tag(w.tag).expect("invalid event tag in batch"),
                cpu: (w.cpu != u32::MAX).then_some(w.cpu),
                thread: (w.thread != u32::MAX).then_some(w.thread),
                time: SimTime(w.start),
                duration_ns: w.dur_ns,
                source: intern.get(w.name),
            };
            self.event(&rec);
        }
    }

    /// Called at each scheduling-layer hook.
    fn sched(&mut self, rec: &SchedRecord<'_>) {
        let _ = rec;
    }
}

/// Host-time phases the kernel announces to an attached
/// [`HostProfiler`]. Phases nest (dispatch contains scheduler contains
/// tracer); implementations attribute self-time with a stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Handling one popped event (the whole of `Kernel::handle`).
    Dispatch,
    /// Picking the next thread in `Kernel::dispatch`.
    Scheduler,
    /// Writing records into the attached trace sink.
    Tracer,
    /// Statistics/summary computation (announced by the harness, not
    /// the kernel).
    Stats,
}

impl Phase {
    pub const ALL: [Phase; 4] = [
        Phase::Dispatch,
        Phase::Scheduler,
        Phase::Tracer,
        Phase::Stats,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Phase::Dispatch => "dispatch",
            Phase::Scheduler => "scheduler",
            Phase::Tracer => "tracer",
            Phase::Stats => "stats",
        }
    }

    /// Dense index for per-phase accumulator arrays.
    pub fn index(self) -> usize {
        match self {
            Phase::Dispatch => 0,
            Phase::Scheduler => 1,
            Phase::Tracer => 2,
            Phase::Stats => 3,
        }
    }
}

/// Receives phase boundaries. The kernel guarantees every `enter` is
/// matched by an `exit` of the same phase in LIFO order.
pub trait HostProfiler {
    fn enter(&mut self, phase: Phase);
    fn exit(&mut self, phase: Phase);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_names_and_indices_are_stable() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
            assert!(!p.name().is_empty());
        }
    }

    #[test]
    fn decision_point_names_and_indices_are_stable() {
        for (i, p) in DecisionPoint::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
            assert!(!p.name().is_empty());
        }
    }
}
