//! Kernel tunables.

use noiselab_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Scheduler and interrupt-model configuration.
///
/// Defaults approximate the Ubuntu 24.04 kernels of the paper's two
/// platforms with the paper's required overrides already applied (RT
/// throttling disabled so `SCHED_FIFO` noise can occupy 100 % of a CPU).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelConfig {
    /// CFS wakeup preemption granularity: a woken fair task preempts the
    /// running fair task only if its vruntime is at least this much
    /// smaller.
    pub wakeup_granularity: SimDuration,
    /// Minimum on-CPU time before tick-driven fair preemption.
    pub min_granularity: SimDuration,
    /// Whether the RT throttling fail-safe is active. The paper disables
    /// it during injection; we default to disabled for parity.
    pub rt_throttling: bool,
    /// Mean service time of the per-tick local timer interrupt.
    pub timer_irq_mean: SimDuration,
    /// Standard deviation of the timer interrupt service time.
    pub timer_irq_sd: SimDuration,
    /// Probability that a tick raises a follow-on softirq (RCU or SCHED).
    pub softirq_prob: f64,
    /// Mean softirq service time.
    pub softirq_mean: SimDuration,
    /// Per-recorded-event cost charged to the traced CPU when tracing is
    /// enabled (buffer write + timestamp), producing the sub-1 % overhead
    /// of paper Table 1.
    pub trace_event_overhead: SimDuration,
    /// Enable idle load balancing (pulling a waiting thread when a CPU
    /// goes idle). Real kernels always do this; exposed for ablations.
    pub idle_balance: bool,
    /// Tickless idle (NO_HZ): an idle CPU parks its timer tick instead
    /// of re-arming it every period, and is re-kicked when it gets work
    /// (or when queued work it could pull appears elsewhere). Ticks stay
    /// on the same per-CPU grid in both modes, and idle ticks are
    /// side-effect-free in both modes, so busy-CPU behaviour — noise
    /// draws, traces, preemption — is identical with the flag on or off;
    /// only the simulator's own event count changes. Exposed so the
    /// equivalence suite can run both modes at the same seed.
    pub tickless: bool,
    /// Maximum consecutive instantaneous actions per behavior step, to
    /// catch runaway behaviors early.
    pub max_instant_actions: u32,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            wakeup_granularity: SimDuration::from_millis(1),
            min_granularity: SimDuration::from_millis(3),
            rt_throttling: false,
            timer_irq_mean: SimDuration::from_nanos(1_800),
            timer_irq_sd: SimDuration::from_nanos(600),
            softirq_prob: 0.25,
            softirq_mean: SimDuration::from_nanos(2_500),
            trace_event_overhead: SimDuration::from_nanos(2_000),
            idle_balance: true,
            tickless: true,
            max_instant_actions: 1024,
        }
    }
}
