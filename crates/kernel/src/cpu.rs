//! Per-CPU scheduler state: the real-time FIFO queue and the fair
//! (CFS-like) vruntime queue.

use crate::ids::ThreadId;
use noiselab_sim::{EventToken, SimTime};
use std::collections::BTreeSet;

/// Fair runqueue ordered by `(vruntime, tid)`; the tid tiebreak keeps the
/// simulation deterministic.
#[derive(Debug, Default)]
pub struct CfsQueue {
    set: BTreeSet<(u64, ThreadId)>,
    /// Monotonic floor used to place newly woken threads so they cannot
    /// starve long-running ones.
    pub min_vruntime: u64,
}

impl CfsQueue {
    pub fn enqueue(&mut self, vruntime: u64, tid: ThreadId) {
        let inserted = self.set.insert((vruntime, tid));
        debug_assert!(inserted, "thread {tid} double-enqueued");
    }

    pub fn dequeue(&mut self, vruntime: u64, tid: ThreadId) -> bool {
        self.set.remove(&(vruntime, tid))
    }

    /// Leftmost (smallest vruntime) thread.
    pub fn peek(&self) -> Option<(u64, ThreadId)> {
        self.set.first().copied()
    }

    pub fn pop(&mut self) -> Option<(u64, ThreadId)> {
        self.set.pop_first()
    }

    /// Rightmost (largest vruntime) thread — the preferred steal victim:
    /// it would run last here, so moving it costs the least local
    /// progress (mirrors CFS pulling from the tail).
    pub fn peek_last(&self) -> Option<(u64, ThreadId)> {
        self.set.last().copied()
    }

    pub fn len(&self) -> usize {
        self.set.len()
    }

    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    pub fn iter(&self) -> impl DoubleEndedIterator<Item = (u64, ThreadId)> + '_ {
        self.set.iter().copied()
    }

    /// Update the min_vruntime floor from the current leftmost entry.
    pub fn refresh_floor(&mut self, running_vruntime: Option<u64>) {
        let leftmost = self.peek().map(|(v, _)| v);
        let candidate = match (leftmost, running_vruntime) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => return,
        };
        self.min_vruntime = self.min_vruntime.max(candidate);
    }
}

/// Real-time FIFO runqueue: highest priority first; equal priorities in
/// strict arrival order (SCHED_FIFO semantics — no time slicing).
#[derive(Debug, Default)]
pub struct RtQueue {
    // Small; linear scan is fine and keeps arrival order explicit.
    items: Vec<(u8, ThreadId)>,
}

impl RtQueue {
    pub fn enqueue(&mut self, prio: u8, tid: ThreadId) {
        self.items.push((prio, tid));
    }

    /// Highest priority, earliest arrival.
    pub fn peek(&self) -> Option<(u8, ThreadId)> {
        let best = self
            .items
            .iter()
            .enumerate()
            .max_by(|(ia, (pa, _)), (ib, (pb, _))| pa.cmp(pb).then(ib.cmp(ia)))?;
        Some(*best.1)
    }

    pub fn pop(&mut self) -> Option<(u8, ThreadId)> {
        let (idx, _) = self
            .items
            .iter()
            .enumerate()
            .max_by(|(ia, (pa, _)), (ib, (pb, _))| pa.cmp(pb).then(ib.cmp(ia)))?;
        Some(self.items.remove(idx))
    }

    pub fn remove(&mut self, tid: ThreadId) -> bool {
        if let Some(pos) = self.items.iter().position(|&(_, t)| t == tid) {
            self.items.remove(pos);
            true
        } else {
            false
        }
    }

    pub fn max_prio(&self) -> Option<u8> {
        self.items.iter().map(|&(p, _)| p).max()
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (u8, ThreadId)> + '_ {
        self.items.iter().copied()
    }
}

/// Per-CPU state.
pub struct Cpu {
    pub current: Option<ThreadId>,
    pub rt: RtQueue,
    pub cfs: CfsQueue,
    /// CPU is servicing an interrupt until this time (exclusive); the
    /// current thread makes no progress meanwhile.
    pub irq_until: SimTime,
    pub irq_token: EventToken,
    /// Accumulated busy time (for utilisation assertions).
    pub busy_ns: u64,
    /// Accumulated interrupt time.
    pub irq_ns: u64,
    /// Whether a `Tick` event for this CPU is pending in the event
    /// queue. Under tickless idle a parked CPU has no pending tick and
    /// must be re-armed when it gets (or could pull) work.
    pub tick_armed: bool,
}

impl Cpu {
    pub fn new() -> Self {
        Cpu {
            current: None,
            rt: RtQueue::default(),
            cfs: CfsQueue::default(),
            irq_until: SimTime::ZERO,
            irq_token: EventToken::NONE,
            busy_ns: 0,
            irq_ns: 0,
            tick_armed: false,
        }
    }

    /// Number of runnable tasks (running + queued), the load metric for
    /// wake placement and stealing.
    pub fn nr_running(&self) -> usize {
        self.current.is_some() as usize + self.rt.len() + self.cfs.len()
    }

    pub fn in_irq(&self, now: SimTime) -> bool {
        self.irq_until > now
    }
}

impl Default for Cpu {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfs_orders_by_vruntime_then_tid() {
        let mut q = CfsQueue::default();
        q.enqueue(100, ThreadId(2));
        q.enqueue(50, ThreadId(3));
        q.enqueue(50, ThreadId(1));
        assert_eq!(q.pop(), Some((50, ThreadId(1))));
        assert_eq!(q.pop(), Some((50, ThreadId(3))));
        assert_eq!(q.pop(), Some((100, ThreadId(2))));
    }

    #[test]
    fn cfs_dequeue_specific() {
        let mut q = CfsQueue::default();
        q.enqueue(10, ThreadId(1));
        q.enqueue(20, ThreadId(2));
        assert!(q.dequeue(10, ThreadId(1)));
        assert!(!q.dequeue(10, ThreadId(1)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn cfs_floor_is_monotone() {
        let mut q = CfsQueue::default();
        q.enqueue(100, ThreadId(1));
        q.refresh_floor(None);
        assert_eq!(q.min_vruntime, 100);
        q.dequeue(100, ThreadId(1));
        q.enqueue(50, ThreadId(2));
        q.refresh_floor(None);
        assert_eq!(q.min_vruntime, 100); // never decreases
    }

    #[test]
    fn rt_priority_then_fifo_order() {
        let mut q = RtQueue::default();
        q.enqueue(10, ThreadId(1));
        q.enqueue(20, ThreadId(2));
        q.enqueue(20, ThreadId(3));
        q.enqueue(10, ThreadId(4));
        assert_eq!(q.pop(), Some((20, ThreadId(2))));
        assert_eq!(q.pop(), Some((20, ThreadId(3))));
        assert_eq!(q.pop(), Some((10, ThreadId(1))));
        assert_eq!(q.pop(), Some((10, ThreadId(4))));
    }

    #[test]
    fn rt_remove_by_tid() {
        let mut q = RtQueue::default();
        q.enqueue(5, ThreadId(1));
        q.enqueue(6, ThreadId(2));
        assert!(q.remove(ThreadId(1)));
        assert!(!q.remove(ThreadId(1)));
        assert_eq!(q.max_prio(), Some(6));
    }

    #[test]
    fn nr_running_counts_all_classes() {
        let mut c = Cpu::new();
        assert_eq!(c.nr_running(), 0);
        c.current = Some(ThreadId(0));
        c.rt.enqueue(5, ThreadId(1));
        c.cfs.enqueue(0, ThreadId(2));
        assert_eq!(c.nr_running(), 3);
    }
}
