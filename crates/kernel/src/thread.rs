//! Per-thread kernel state.

use crate::ids::ThreadId;
use crate::policy::Policy;
use noiselab_machine::{CpuId, CpuSet, SoloProfile};
use noiselab_sim::{EventToken, SimDuration, SimTime};

/// What kind of task this is, for the tracer's noise classification: the
/// `osnoise` tracer counts everything that is not the traced workload as
/// noise (paper §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThreadKind {
    /// The application under measurement (runtime workers included).
    Workload,
    /// Natural OS/background activity (kworkers, daemons, GUI, ...).
    Noise,
    /// A replay process of the noise injector.
    Injector,
}

/// Lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadState {
    /// Created, never started (start timer pending).
    New,
    /// Runnable, waiting in a runqueue.
    Ready,
    /// Currently on a CPU.
    Running,
    /// Waiting for a timer.
    Sleeping,
    /// Blocked on a wait queue or barrier (off-CPU).
    Blocked,
    /// Done; never runs again.
    Exited,
}

/// An in-progress compute action.
#[derive(Debug, Clone)]
pub struct ActiveCompute {
    /// Roofline profile of the work unit being executed.
    pub solo: SoloProfile,
    /// Remaining solo-equivalent nanoseconds. `f64::INFINITY` while
    /// spinning on a barrier/wait queue.
    pub remaining: f64,
    /// Rate of progress at the last update (solo-ns per wall-ns).
    pub rate: f64,
    /// Virtual time of the last progress update.
    pub last_update: SimTime,
    /// Unproductive time (context switch, migration penalty) to burn at
    /// rate 1 before productive progress resumes.
    pub overhead_ns: f64,
}

impl ActiveCompute {
    /// Advance progress to time `now` at the current rate.
    pub fn advance_to(&mut self, now: SimTime) {
        let mut dt = now.since(self.last_update).nanos() as f64;
        self.last_update = now;
        if dt <= 0.0 {
            return;
        }
        if self.overhead_ns > 0.0 {
            let burn = self.overhead_ns.min(dt);
            self.overhead_ns -= burn;
            dt -= burn;
        }
        if dt > 0.0 && self.remaining.is_finite() {
            self.remaining = (self.remaining - dt * self.rate).max(0.0);
        }
    }

    /// Wall-clock nanoseconds until completion at the current rate, or
    /// `None` if it will never complete at this rate (spin / zero rate).
    pub fn eta_ns(&self) -> Option<u64> {
        if !self.remaining.is_finite() {
            return None;
        }
        if self.remaining <= 0.0 && self.overhead_ns <= 0.0 {
            return Some(0);
        }
        if self.rate <= 0.0 {
            // Overhead still burns at rate 1 even if work rate is 0 only
            // when the thread is actually on-CPU; a zero rate here means
            // the CPU is stalled (IRQ) so nothing progresses.
            return None;
        }
        let ns = self.overhead_ns + self.remaining / self.rate;
        Some(ns.ceil() as u64)
    }
}

/// Why a blocked thread is blocked (used to route wake-ups).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockReason {
    None,
    Barrier(crate::ids::BarrierId),
    Wait(crate::ids::WaitId),
    /// Explicitly waiting for `Action::Wake`.
    Direct,
}

/// Runtime statistics for assertions and reports.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreadStats {
    /// Productive + overhead time spent on-CPU (ns).
    pub cpu_ns: u64,
    /// Number of migrations between CPUs.
    pub migrations: u64,
    /// Migrations that crossed a NUMA domain (subset of `migrations`).
    pub numa_migrations: u64,
    /// Number of involuntary preemptions.
    pub preemptions: u64,
    /// Number of voluntary context switches (sleep/block/yield).
    pub switches: u64,
}

/// Kernel-side thread control block.
pub struct Thread {
    pub id: ThreadId,
    pub name: String,
    pub kind: ThreadKind,
    pub policy: Policy,
    pub affinity: CpuSet,
    pub state: ThreadState,
    /// CPU currently running on (Running) or queued at (Ready).
    pub cpu: Option<CpuId>,
    /// Last CPU the thread ran on, for wake placement and migration cost.
    pub last_cpu: Option<CpuId>,
    /// CFS virtual runtime (weighted ns).
    pub vruntime: u64,
    /// True while the thread spins in a barrier/wait instead of blocking.
    pub spinning: bool,
    pub block_reason: BlockReason,
    /// Time the thread went on-CPU (for tick-based preemption decisions).
    pub on_cpu_since: SimTime,
    /// Runtime has been charged (vruntime + stats) up to this instant.
    pub charged_until: SimTime,
    /// Unproductive overhead (ctx switch, migration) accumulated while
    /// off-CPU, folded into the next compute as `overhead_ns`.
    pub pending_overhead_ns: f64,
    /// Pending event tokens (cancelled on state changes).
    pub timer_token: EventToken,
    pub compute_token: EventToken,
    pub spin_token: EventToken,
    pub stats: ThreadStats,
    /// Exit timestamp, once exited.
    pub exit_time: Option<SimTime>,
    /// Migration penalty to apply on next dispatch (set when stolen or
    /// woken on a different CPU).
    pub pending_migration: bool,
}

impl Thread {
    pub fn new(
        id: ThreadId,
        name: String,
        kind: ThreadKind,
        policy: Policy,
        affinity: CpuSet,
    ) -> Self {
        Thread {
            id,
            name,
            kind,
            policy,
            affinity,
            state: ThreadState::New,
            cpu: None,
            last_cpu: None,
            vruntime: 0,
            spinning: false,
            block_reason: BlockReason::None,
            on_cpu_since: SimTime::ZERO,
            charged_until: SimTime::ZERO,
            pending_overhead_ns: 0.0,
            timer_token: EventToken::NONE,
            compute_token: EventToken::NONE,
            spin_token: EventToken::NONE,
            stats: ThreadStats::default(),
            exit_time: None,
            pending_migration: false,
        }
    }

    #[inline]
    pub fn is_runnable(&self) -> bool {
        matches!(self.state, ThreadState::Ready | ThreadState::Running)
    }

    /// Charge `delta` of on-CPU time to vruntime, weighted by policy.
    pub fn charge_vruntime(&mut self, delta: SimDuration) {
        let w = self.policy.weight();
        self.vruntime += delta.nanos() * 1024 / w;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compute(remaining: f64, rate: f64) -> ActiveCompute {
        ActiveCompute {
            solo: SoloProfile {
                solo_ns: remaining,
                cpu_ns: remaining,
                bw_demand: 0.0,
            },
            remaining,
            rate,
            last_update: SimTime::ZERO,
            overhead_ns: 0.0,
        }
    }

    #[test]
    fn advance_consumes_at_rate() {
        let mut c = compute(1000.0, 0.5);
        c.advance_to(SimTime(1000));
        assert!((c.remaining - 500.0).abs() < 1e-9);
    }

    #[test]
    fn advance_burns_overhead_first() {
        let mut c = compute(1000.0, 1.0);
        c.overhead_ns = 300.0;
        c.advance_to(SimTime(500));
        assert_eq!(c.overhead_ns, 0.0);
        assert!((c.remaining - 800.0).abs() < 1e-9);
    }

    #[test]
    fn eta_includes_overhead() {
        let mut c = compute(1000.0, 0.5);
        c.overhead_ns = 100.0;
        assert_eq!(c.eta_ns(), Some(2100));
    }

    #[test]
    fn eta_none_when_spinning_or_stalled() {
        let c = compute(f64::INFINITY, 1.0);
        assert_eq!(c.eta_ns(), None);
        let c2 = compute(100.0, 0.0);
        assert_eq!(c2.eta_ns(), None);
    }

    #[test]
    fn vruntime_weighting() {
        let mut heavy = Thread::new(
            ThreadId(0),
            "h".into(),
            ThreadKind::Workload,
            Policy::Other { nice: -5 },
            CpuSet::first_n(1),
        );
        let mut normal = Thread::new(
            ThreadId(1),
            "n".into(),
            ThreadKind::Workload,
            Policy::NORMAL,
            CpuSet::first_n(1),
        );
        heavy.charge_vruntime(SimDuration(1000));
        normal.charge_vruntime(SimDuration(1000));
        assert!(heavy.vruntime < normal.vruntime);
    }

    #[test]
    fn advance_never_goes_negative() {
        let mut c = compute(10.0, 1.0);
        c.advance_to(SimTime(1000));
        assert_eq!(c.remaining, 0.0);
    }
}
