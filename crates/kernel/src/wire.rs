//! The compact wire record: one fixed-width encoding shared by every
//! high-volume event store in the workspace — the osnoise tracer's ring
//! buffer, the telemetry span recorder's timeline, and the NLTB binary
//! trace format (schema v2).
//!
//! A [`WireRecord`] is 29 bytes, little-endian, with string payloads
//! replaced by indices into an [`InternTable`] carried alongside the
//! records. Compared to the owned-`String` record structs it replaces,
//! recording one is a fixed-size push with no heap traffic, and a
//! buffer of them encodes to bytes with a bump of the write cursor per
//! record — no per-field varint branching.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Sentinel for "no thread" in [`WireRecord::thread`].
pub const WIRE_NO_THREAD: u32 = u32::MAX;

/// Encoded size of one record, in bytes.
pub const WIRE_RECORD_BYTES: usize = 29;

/// One fixed-width event/span record. Field meaning is assigned by the
/// producer: the tracer stores noise-class tags and interned source
/// names, the telemetry exporter stores span categories and interned
/// span names. The layout is shared so one encoder/decoder serves both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireRecord {
    /// Interval start (virtual ns).
    pub start: u64,
    /// Interval length (virtual ns).
    pub dur_ns: u64,
    /// CPU track the interval belongs to.
    pub cpu: u32,
    /// Occupying thread, or [`WIRE_NO_THREAD`].
    pub thread: u32,
    /// Index into the accompanying [`InternTable`].
    pub name: u32,
    /// Producer-defined discriminator (noise class / span category).
    pub tag: u8,
}

impl WireRecord {
    /// Append the fixed-width little-endian encoding to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.start.to_le_bytes());
        out.extend_from_slice(&self.dur_ns.to_le_bytes());
        out.extend_from_slice(&self.cpu.to_le_bytes());
        out.extend_from_slice(&self.thread.to_le_bytes());
        out.extend_from_slice(&self.name.to_le_bytes());
        out.push(self.tag);
    }

    /// Decode one record from `buf` at `offset`. Returns `None` when
    /// fewer than [`WIRE_RECORD_BYTES`] bytes remain.
    pub fn decode_from(buf: &[u8], offset: usize) -> Option<WireRecord> {
        let b = buf.get(offset..offset + WIRE_RECORD_BYTES)?;
        let u64_at = |i: usize| u64::from_le_bytes(b[i..i + 8].try_into().unwrap());
        let u32_at = |i: usize| u32::from_le_bytes(b[i..i + 4].try_into().unwrap());
        Some(WireRecord {
            start: u64_at(0),
            dur_ns: u64_at(8),
            cpu: u32_at(16),
            thread: u32_at(20),
            name: u32_at(24),
            tag: b[28],
        })
    }
}

/// Append-only string intern table: each distinct string is stored once
/// and addressed by a dense `u32` id. Lookup is a `BTreeMap` walk (never
/// a hash map — hash iteration order is a nondeterminism hazard the
/// audit crate bans), allocation happens only on first sight of a
/// string, and `clear` keeps the id vector's capacity for arena reuse.
#[derive(Debug, Default, Clone)]
pub struct InternTable {
    strings: Vec<String>,
    index: BTreeMap<String, u32>,
}

impl InternTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Id of `s`, interning it on first sight.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&i) = self.index.get(s) {
            return i;
        }
        let i = self.strings.len() as u32;
        self.strings.push(s.to_string());
        self.index.insert(s.to_string(), i);
        i
    }

    /// The string behind `id`; None for ids this table never issued.
    pub fn get(&self, id: u32) -> Option<&str> {
        self.strings.get(id as usize).map(String::as_str)
    }

    pub fn strings(&self) -> &[String] {
        &self.strings
    }

    pub fn len(&self) -> usize {
        self.strings.len()
    }

    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Forget every string but keep the id vector's capacity.
    pub fn clear(&mut self) {
        self.strings.clear();
        self.index.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_round_trips_fixed_width() {
        let r = WireRecord {
            start: u64::MAX - 7,
            dur_ns: 123_456_789,
            cpu: 17,
            thread: WIRE_NO_THREAD,
            name: 3,
            tag: 2,
        };
        let mut buf = Vec::new();
        r.encode_into(&mut buf);
        assert_eq!(buf.len(), WIRE_RECORD_BYTES);
        assert_eq!(WireRecord::decode_from(&buf, 0), Some(r));
        assert_eq!(WireRecord::decode_from(&buf, 1), None, "truncated tail");
    }

    #[test]
    fn intern_is_stable_and_dense() {
        let mut t = InternTable::new();
        let a = t.intern("local_timer:236");
        let b = t.intern("kworker/3:1");
        assert_eq!(t.intern("local_timer:236"), a);
        assert_eq!((a, b), (0, 1));
        assert_eq!(t.get(b), Some("kworker/3:1"));
        assert_eq!(t.get(99), None);
        assert_eq!(t.len(), 2);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.intern("fresh"), 0, "ids restart after clear");
    }
}
