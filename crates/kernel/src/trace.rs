//! Tracing hooks.
//!
//! The kernel reports every interference interval to an attached
//! [`TraceSink`]; the `noiselab-noise` crate implements the full
//! `osnoise`-style tracer on top of this. Keeping only a thin trait here
//! avoids a dependency cycle (kernel → noise).

use crate::ids::ThreadId;
use noiselab_machine::CpuId;
use noiselab_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Classification matching the `osnoise` event types (paper Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NoiseClass {
    /// Hardware interrupt service (e.g. `local_timer:236`).
    Irq,
    /// Softirq service (e.g. `RCU:9`, `SCHED:7`).
    Softirq,
    /// A non-workload thread occupying the CPU (e.g. `kworker/13:1`).
    Thread,
}

/// Receives interference events from the kernel.
pub trait TraceSink {
    /// An interference interval ended: `source` ran on `cpu` from `start`
    /// for `duration`, stealing that time from whatever workload thread
    /// was (or would have been) there. `tid` is set for thread noise.
    fn record(
        &mut self,
        cpu: CpuId,
        class: NoiseClass,
        source: &str,
        tid: Option<ThreadId>,
        start: SimTime,
        duration: SimDuration,
    );
}

/// A sink that stores everything in memory; used by unit tests and as the
/// backing store of the osnoise tracer.
#[derive(Debug, Default)]
pub struct VecSink {
    pub events: Vec<RecordedEvent>,
}

#[derive(Debug, Clone, PartialEq)]
pub struct RecordedEvent {
    pub cpu: CpuId,
    pub class: NoiseClass,
    pub source: String,
    pub tid: Option<ThreadId>,
    pub start: SimTime,
    pub duration: SimDuration,
}

impl TraceSink for VecSink {
    fn record(
        &mut self,
        cpu: CpuId,
        class: NoiseClass,
        source: &str,
        tid: Option<ThreadId>,
        start: SimTime,
        duration: SimDuration,
    ) {
        self.events.push(RecordedEvent {
            cpu,
            class,
            source: source.to_string(),
            tid,
            start,
            duration,
        });
    }
}
