//! Kernel-side DVFS state: per-CPU frequency levels, the shared turbo
//! budget, and the integer thermal accumulator.
//!
//! [`DvfsRuntime`] is the live half of
//! [`noiselab_machine::dvfs::DvfsConfig`]. The kernel holds it as an
//! `Option` — `None` when the machine's DVFS axis is disabled — so a
//! disabled run executes *zero* DVFS code: no events, no records, no
//! floating-point perturbation, which is what keeps pre-DVFS outputs
//! bit-identical (proven by the `dvfs_identity` test in
//! `noiselab-core`).
//!
//! Determinism rules, in order of importance:
//!
//! * **No randomness.** Governor decisions are pure functions of
//!   `(level, heat, runqueue depth, turbo budget)`.
//! * **Integer thermal state.** The accumulator is
//!   `milli-heat x 1000` (i.e. milli-heat per *micro*second rates
//!   applied per *nano*second without dividing), so it is exact no
//!   matter how the kernel slices runtime charges. Floats appear only
//!   in the cached `freq_factor`, which is a pure function of two
//!   config integers and never feeds back into integer state.
//! * **Busy-only evaluation.** Frequency and throttle transitions are
//!   evaluated at busy-CPU activity points (dispatch of a thread, the
//!   busy tick). An idle CPU sits at min frequency and its parked
//!   (tickless) ticks touch no DVFS state, preserving eager/tickless
//!   equivalence.
//!
//! Cycle accounting: every charged busy nanosecond adds
//! `ns x current_khz` to a per-CPU `u128`. Every frequency change site
//! charges the running thread *first*, so the cycle total is exactly
//! reconstructible from the `SwitchIn`/`SwitchOut`/`FreqTransition`
//! record stream — the conformance suite's frequency-conservation
//! invariant replays precisely that.

use crate::observe::DecisionPoint;
use noiselab_machine::dvfs::{DvfsConfig, FreqLevel, Governor};
use noiselab_sim::SimTime;

/// What one governor/throttle evaluation decided; the kernel turns this
/// into `SchedRecord`s and `Decision` notes. At most one throttle edge
/// and one frequency transition can happen per evaluation.
#[derive(Debug, Default, Clone, Copy)]
pub struct DvfsOutcome {
    /// `(heat_milli, entered)` when the CPU crossed a throttle boundary.
    pub throttle: Option<(u64, bool)>,
    /// `(from_khz, to_khz, why)` when the CPU changed frequency.
    pub transition: Option<(u32, u32, DecisionPoint)>,
}

/// End-of-run summary for telemetry and the conformance runner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DvfsSummary {
    /// Per-CPU `sum(busy_ns x khz)` — the exact cycle account.
    pub cycles: Vec<u128>,
    /// Frequency transitions over the whole run.
    pub transitions: u64,
    /// Throttle-enter edges over the whole run.
    pub throttle_enters: u64,
    /// Per-CPU wall time spent throttled (closed at `now` for CPUs
    /// still throttled when the run ends).
    pub throttled_ns: Vec<u64>,
}

pub struct DvfsRuntime {
    cfg: DvfsConfig,
    level: Vec<FreqLevel>,
    /// Cached `cfg.freq_factor(level[c])`; multiplied into the compute
    /// factor on the rate path.
    factor: Vec<f64>,
    /// Thermal accumulator in milli-heat x 1000 (see module docs).
    heat_x1000: Vec<u64>,
    /// Wall time (ns) up to which heating/cooling has been applied.
    heat_updated: Vec<u64>,
    throttled: Vec<bool>,
    /// Throttle-enter time (ns), valid while `throttled[c]`.
    throttle_since: Vec<u64>,
    /// Closed throttle window total per CPU.
    throttled_ns: Vec<u64>,
    /// CPUs currently at turbo, per package.
    turbo_used: Vec<u32>,
    cycles: Vec<u128>,
    transitions: u64,
    throttle_enters: u64,
}

impl DvfsRuntime {
    pub fn new(cfg: DvfsConfig, n_cpus: usize) -> Self {
        debug_assert!(cfg.enabled && cfg.is_sane());
        let n_pkg = cfg.n_packages(n_cpus as u32) as usize;
        let min_factor = cfg.freq_factor(FreqLevel::Min);
        DvfsRuntime {
            level: vec![FreqLevel::Min; n_cpus],
            factor: vec![min_factor; n_cpus],
            heat_x1000: vec![0; n_cpus],
            heat_updated: vec![0; n_cpus],
            throttled: vec![false; n_cpus],
            throttle_since: vec![0; n_cpus],
            throttled_ns: vec![0; n_cpus],
            turbo_used: vec![0; n_pkg],
            cycles: vec![0; n_cpus],
            transitions: 0,
            throttle_enters: 0,
            cfg,
        }
    }

    pub fn config(&self) -> &DvfsConfig {
        &self.cfg
    }

    /// Compute-roof multiplier for the rate path: current frequency
    /// over turbo, in (0, 1].
    #[inline]
    pub fn factor(&self, cpu: usize) -> f64 {
        self.factor[cpu]
    }

    #[inline]
    pub fn khz(&self, cpu: usize) -> u32 {
        self.cfg.khz(self.level[cpu])
    }

    #[inline]
    pub fn level(&self, cpu: usize) -> FreqLevel {
        self.level[cpu]
    }

    #[inline]
    pub fn is_throttled(&self, cpu: usize) -> bool {
        self.throttled[cpu]
    }

    /// Account `busy_ns` of charged runtime on `cpu` ending at `now`:
    /// cycles at the current frequency, heat at the current level's
    /// rate. Called from the kernel's single runtime-charge site, which
    /// every frequency-change site flushes first.
    pub fn charge(&mut self, cpu: usize, busy_ns: u64, now: SimTime) {
        self.cycles[cpu] += busy_ns as u128 * self.khz(cpu) as u128;
        self.settle_heat(cpu, now, busy_ns);
    }

    /// Advance the thermal accumulator to `now`: `busy_ns` of heating
    /// at the current level plus always-on cooling over the wall gap.
    /// Pure cooling composes exactly (settling twice equals settling
    /// once over the union), so lazy evaluation cannot diverge.
    fn settle_heat(&mut self, cpu: usize, now: SimTime, busy_ns: u64) {
        let wall = now.nanos().saturating_sub(self.heat_updated[cpu]);
        self.heat_updated[cpu] = now.nanos();
        let h = &mut self.heat_x1000[cpu];
        *h += busy_ns * self.cfg.heat_rate(self.level[cpu]);
        *h = h.saturating_sub(wall * self.cfg.cool);
    }

    /// Heat in milli-heat, as reported in `Throttle` records.
    pub fn heat_milli(&self, cpu: usize) -> u64 {
        self.heat_x1000[cpu] / 1000
    }

    /// Move `cpu` to `to`, maintaining the package turbo budget.
    /// Returns `(from_khz, to_khz)`.
    fn set_level(&mut self, cpu: usize, to: FreqLevel) -> (u32, u32) {
        let from = self.level[cpu];
        debug_assert_ne!(from, to);
        let pkg = self.cfg.package_of(cpu as u32) as usize;
        if from == FreqLevel::Turbo {
            debug_assert!(self.turbo_used[pkg] > 0);
            self.turbo_used[pkg] -= 1;
        }
        if to == FreqLevel::Turbo {
            self.turbo_used[pkg] += 1;
            debug_assert!(self.turbo_used[pkg] <= self.cfg.turbo_slots);
        }
        self.level[cpu] = to;
        self.factor[cpu] = self.cfg.freq_factor(to);
        self.transitions += 1;
        (self.cfg.khz(from), self.cfg.khz(to))
    }

    /// Busy-CPU evaluation: settle heat, run the throttle state
    /// machine, then let the governor pick a level. `depth` is the
    /// number of threads still queued on the CPU (the schedutil load
    /// signal). Called after the running thread's time has been
    /// charged, so heat and cycles are current.
    pub fn eval(&mut self, cpu: usize, now: SimTime, depth: u32) -> DvfsOutcome {
        self.settle_heat(cpu, now, 0);
        let mut out = DvfsOutcome::default();
        let heat = self.heat_x1000[cpu];

        if !self.throttled[cpu] {
            if heat >= self.cfg.throttle_at * 1000 {
                self.throttled[cpu] = true;
                self.throttle_since[cpu] = now.nanos();
                self.throttle_enters += 1;
                out.throttle = Some((heat / 1000, true));
                if self.level[cpu] != FreqLevel::Min {
                    let (f, t) = self.set_level(cpu, FreqLevel::Min);
                    out.transition = Some((f, t, DecisionPoint::ThrottleEnter));
                }
                return out;
            }
        } else if heat <= self.cfg.release_at * 1000 {
            self.throttled[cpu] = false;
            self.throttled_ns[cpu] += now.nanos() - self.throttle_since[cpu];
            out.throttle = Some((heat / 1000, false));
            // Fall through: the governor reclaims control below.
        } else {
            // Still hot: clamped to min; nothing to decide.
            debug_assert_eq!(self.level[cpu], FreqLevel::Min);
            return out;
        }

        let exiting = out.throttle.is_some();
        let want_turbo = match self.cfg.governor {
            Governor::Performance => true,
            Governor::Powersave => false,
            Governor::Schedutil => depth > 0,
        };
        let pkg = self.cfg.package_of(cpu as u32) as usize;
        let (target, why) = if want_turbo {
            // Already holding a slot, or a free slot exists in the
            // package: turbo is granted.
            if self.level[cpu] == FreqLevel::Turbo || self.turbo_used[pkg] < self.cfg.turbo_slots {
                (FreqLevel::Turbo, DecisionPoint::TurboGrant)
            } else {
                (FreqLevel::Base, DecisionPoint::TurboDeny)
            }
        } else if self.cfg.governor == Governor::Powersave {
            (FreqLevel::Min, DecisionPoint::FreqIdle)
        } else {
            (FreqLevel::Base, DecisionPoint::TurboDeny)
        };
        if target != self.level[cpu] {
            let why = if exiting {
                DecisionPoint::ThrottleExit
            } else {
                why
            };
            let (f, t) = self.set_level(cpu, target);
            out.transition = Some((f, t, why));
        }
        out
    }

    /// Idle-entry evaluation: drop to min and release any turbo slot.
    /// Returns the transition, or `None` when the CPU is already at min
    /// — the no-op fast path that makes redundant calls (idle ticks)
    /// side-effect free.
    pub fn idle(&mut self, cpu: usize, now: SimTime) -> Option<(u32, u32)> {
        if self.level[cpu] == FreqLevel::Min {
            return None;
        }
        self.settle_heat(cpu, now, 0);
        Some(self.set_level(cpu, FreqLevel::Min))
    }

    /// Close a throttle window for reporting: wall time spent throttled
    /// up to `now` on `cpu`, counting a still-open window.
    pub fn throttled_ns_at(&self, cpu: usize, now: SimTime) -> u64 {
        let open = if self.throttled[cpu] {
            now.nanos() - self.throttle_since[cpu]
        } else {
            0
        };
        self.throttled_ns[cpu] + open
    }

    /// The time the current throttle window opened (valid while
    /// [`Self::is_throttled`]).
    pub fn throttle_since(&self, cpu: usize) -> SimTime {
        SimTime(self.throttle_since[cpu])
    }

    pub fn summary(&self, now: SimTime) -> DvfsSummary {
        DvfsSummary {
            cycles: self.cycles.clone(),
            transitions: self.transitions,
            throttle_enters: self.throttle_enters,
            throttled_ns: (0..self.level.len())
                .map(|c| self.throttled_ns_at(c, now))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hot_cfg(governor: Governor) -> DvfsConfig {
        DvfsConfig {
            // Heats fast, cools slowly: throttles within microseconds.
            heat_turbo: 4000,
            heat_base: 1000,
            cool: 100,
            throttle_at: 1000,
            release_at: 500,
            turbo_slots: 1,
            ..DvfsConfig::enabled_default(governor)
        }
    }

    #[test]
    fn boots_at_min_and_performance_boosts_to_turbo() {
        let mut d = DvfsRuntime::new(DvfsConfig::enabled_default(Governor::Performance), 2);
        assert_eq!(d.level(0), FreqLevel::Min);
        let out = d.eval(0, SimTime(100), 0);
        assert!(out.throttle.is_none());
        let (f, t, why) = out.transition.unwrap();
        assert_eq!((f, t), (800_000, 5_200_000));
        assert_eq!(why, DecisionPoint::TurboGrant);
        assert_eq!(d.level(0), FreqLevel::Turbo);
    }

    #[test]
    fn turbo_budget_denies_third_cpu() {
        let cfg = DvfsConfig {
            turbo_slots: 2,
            ..DvfsConfig::enabled_default(Governor::Performance)
        };
        let mut d = DvfsRuntime::new(cfg, 4);
        d.eval(0, SimTime(1), 0);
        d.eval(1, SimTime(1), 0);
        let out = d.eval(2, SimTime(1), 0);
        let (_, t, why) = out.transition.unwrap();
        assert_eq!(t, 3_600_000);
        assert_eq!(why, DecisionPoint::TurboDeny);
        // CPU 0 going idle frees a slot for CPU 2.
        assert!(d.idle(0, SimTime(2)).is_some());
        let out = d.eval(2, SimTime(2), 0);
        assert_eq!(out.transition.unwrap().2, DecisionPoint::TurboGrant);
    }

    #[test]
    fn powersave_stays_at_min() {
        let mut d = DvfsRuntime::new(DvfsConfig::enabled_default(Governor::Powersave), 1);
        let out = d.eval(0, SimTime(100), 3);
        assert!(out.transition.is_none());
        assert_eq!(d.level(0), FreqLevel::Min);
        assert!(d.idle(0, SimTime(200)).is_none());
    }

    #[test]
    fn schedutil_follows_queue_depth() {
        let mut d = DvfsRuntime::new(DvfsConfig::enabled_default(Governor::Schedutil), 1);
        // Lone runner: base.
        let out = d.eval(0, SimTime(1), 0);
        assert_eq!(out.transition.unwrap().1, 3_600_000);
        // Work queued behind it: turbo.
        let out = d.eval(0, SimTime(2), 2);
        assert_eq!(out.transition.unwrap().2, DecisionPoint::TurboGrant);
        // Queue drains: back to base.
        let out = d.eval(0, SimTime(3), 0);
        assert_eq!(out.transition.unwrap().1, 3_600_000);
        assert_eq!(out.transition.unwrap().2, DecisionPoint::TurboDeny);
    }

    #[test]
    fn throttle_hysteresis_enter_and_exit() {
        let mut d = DvfsRuntime::new(hot_cfg(Governor::Performance), 1);
        d.eval(0, SimTime(0), 0); // -> turbo
                                  // 300 ns busy at turbo: heat_x1000 = 300*4000 = 1_200_000
                                  // minus 300*100 cooling = 1_170_000 >= throttle_at*1000.
        d.charge(0, 300, SimTime(300));
        let out = d.eval(0, SimTime(300), 0);
        let (heat, entered) = out.throttle.unwrap();
        assert!(entered);
        assert!(heat >= 1000, "enter heat {heat} below threshold");
        assert_eq!(out.transition.unwrap().2, DecisionPoint::ThrottleEnter);
        assert_eq!(d.level(0), FreqLevel::Min);
        assert!(d.is_throttled(0));

        // Still hot shortly after: no event, stays clamped.
        let out = d.eval(0, SimTime(600), 0);
        assert!(out.throttle.is_none() && out.transition.is_none());

        // Cooling 100/us: from ~1.17e6 needs ~6700 ns to reach
        // release_at*1000 = 500_000.
        let out = d.eval(0, SimTime(10_000), 0);
        let (heat, entered) = out.throttle.unwrap();
        assert!(!entered);
        assert!(heat <= 500, "exit heat {heat} above release");
        // Governor reclaims control in the same evaluation.
        let (_, t, why) = out.transition.unwrap();
        assert_eq!(t, 5_200_000);
        assert_eq!(why, DecisionPoint::ThrottleExit);
        assert_eq!(d.throttled_ns_at(0, SimTime(10_000)), 9_700);
    }

    #[test]
    fn cycles_account_busy_time_at_current_khz() {
        let mut d = DvfsRuntime::new(DvfsConfig::enabled_default(Governor::Performance), 1);
        d.charge(0, 100, SimTime(100)); // at min
        d.eval(0, SimTime(100), 0); // -> turbo
        d.charge(0, 50, SimTime(150));
        let s = d.summary(SimTime(150));
        assert_eq!(s.cycles[0], 100 * 800_000 + 50 * 5_200_000);
        assert_eq!(s.transitions, 1);
    }

    #[test]
    fn settle_composes_exactly() {
        // Settling in two steps equals settling once over the union —
        // the property that makes lazy heat evaluation safe.
        let mut a = DvfsRuntime::new(hot_cfg(Governor::Performance), 1);
        let mut b = DvfsRuntime::new(hot_cfg(Governor::Performance), 1);
        a.charge(0, 500, SimTime(500));
        a.settle_heat(0, SimTime(700), 0);
        a.settle_heat(0, SimTime(9000), 0);
        b.charge(0, 500, SimTime(500));
        b.settle_heat(0, SimTime(9000), 0);
        assert_eq!(a.heat_x1000[0], b.heat_x1000[0]);
    }

    #[test]
    fn idle_releases_turbo_slot_and_is_idempotent() {
        let cfg = DvfsConfig {
            turbo_slots: 1,
            ..DvfsConfig::enabled_default(Governor::Performance)
        };
        let mut d = DvfsRuntime::new(cfg, 2);
        d.eval(0, SimTime(1), 0);
        assert_eq!(d.turbo_used[0], 1);
        assert_eq!(d.idle(0, SimTime(2)), Some((5_200_000, 800_000)));
        assert_eq!(d.turbo_used[0], 0);
        assert_eq!(d.idle(0, SimTime(3)), None);
    }
}
