//! The simulated OS kernel: event loop, scheduler, execution rates.
//!
//! One [`Kernel`] instance simulates one machine for one run. Threads are
//! [`Behavior`] state machines (see [`crate::action`]); the kernel
//! multiplexes them over the machine's logical CPUs with two scheduling
//! classes (CFS-like fair + FIFO real-time), periodic timer interrupts,
//! idle load balancing with migration costs, SMT contention and max-min
//! fair memory-bandwidth sharing.
//!
//! Everything is deterministic given the seed: the event queue breaks
//! timestamp ties by insertion order and all scheduler decisions iterate
//! in fixed CPU/thread order.

use crate::action::{Action, Behavior, Ctx};
use crate::config::KernelConfig;
use crate::cpu::Cpu;
use crate::fault::{FaultPlan, FaultState, FaultStats};
use crate::ids::{BarrierId, ThreadId, WaitId};
use crate::observe::{DecisionPoint, HostProfiler, KernelObserver, Phase, SchedRecord};
use crate::policy::Policy;
use crate::sanitize::{EventKind, EventRecord, EventSanitizer, SanitizerConfig, SanitizerReport};
use crate::thread::{ActiveCompute, BlockReason, Thread, ThreadKind, ThreadState};
use crate::trace::{NoiseClass, TraceSink};
use crate::wire::{InternTable, WireRecord};
use noiselab_machine::{waterfill_into, CpuId, CpuSet, Machine, SoloProfile};
use noiselab_sim::{EventQueue, EventToken, Rng, SimDuration, SimTime};
use std::collections::VecDeque;

/// Simulation events.
#[derive(Debug, Clone)]
enum KEvent {
    /// Thread start (spawn delay elapsed).
    Start(ThreadId),
    /// Sleep or delayed wake expired.
    WakeTimer(ThreadId),
    /// The running compute finished.
    ComputeDone(ThreadId),
    /// A spinning waiter gives up and blocks.
    SpinExpire(ThreadId),
    /// Periodic per-CPU timer tick (scheduler tick + timer IRQ).
    Tick(u32),
    /// End of an interrupt-service window on a CPU.
    IrqDone(u32),
    /// A device interrupt injected by a noise source (e.g. an NVMe or
    /// NIC interrupt storm).
    DeviceIrq {
        cpu: u32,
        duration: SimDuration,
        source: Box<str>,
    },
    /// Fault injection: tear the thread down mid-region, as if it
    /// crashed. See [`Kernel::schedule_abort`].
    Abort(ThreadId),
}

/// Thread creation parameters.
#[derive(Debug, Clone)]
pub struct ThreadSpec {
    pub name: String,
    pub kind: ThreadKind,
    pub policy: Policy,
    pub affinity: CpuSet,
    /// Virtual time at which the thread becomes runnable.
    pub start: SimTime,
}

impl ThreadSpec {
    pub fn new(name: impl Into<String>, kind: ThreadKind) -> Self {
        ThreadSpec {
            name: name.into(),
            kind,
            policy: Policy::NORMAL,
            affinity: CpuSet::EMPTY, // replaced by all CPUs at spawn
            start: SimTime::ZERO,
        }
    }

    pub fn policy(mut self, p: Policy) -> Self {
        self.policy = p;
        self
    }

    pub fn affinity(mut self, a: CpuSet) -> Self {
        self.affinity = a;
        self
    }

    pub fn start_at(mut self, t: SimTime) -> Self {
        self.start = t;
        self
    }
}

/// Errors from the run loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The horizon passed before the condition was met.
    Horizon(SimTime),
    /// The event queue drained before the condition was met. With eager
    /// ticks this cannot happen; under tickless idle it means every CPU
    /// parked with no timer, compute or wake event pending — i.e. the
    /// simulated system deadlocked.
    Drained,
}

struct BarrierState {
    parties: usize,
    waiting: Vec<ThreadId>,
}

struct WaitQueueState {
    waiters: VecDeque<ThreadId>,
}

/// Reusable buffers for [`Kernel::recompute_rates`], so the steady-state
/// hot path makes no heap allocations.
#[derive(Default)]
struct RateScratch {
    /// Running `(thread index, cpu index)` pairs with active computes.
    /// (Emptied, capacity kept, by [`RateScratch::reset`].)
    running: Vec<(usize, usize)>,
    factors: Vec<f64>,
    demands: Vec<f64>,
    allocs: Vec<f64>,
    order: Vec<usize>,
    /// Waterfill input of the compute running on each CPU as of the
    /// last recompute (0.0 when idle or demandless). Only meaningful
    /// while `cache_valid`; lets [`Kernel::recompute_rates_local`]
    /// re-derive the saturation check without touching other CPUs.
    demand_by_cpu: Vec<f64>,
    /// Whether the last recompute left the waterfill unsaturated, i.e.
    /// every allocation was a bit-exact copy of its demand.
    cache_unsaturated: bool,
    /// Whether `demand_by_cpu` reflects the live running set. Cleared
    /// by the demandless local path (which does not maintain it).
    cache_valid: bool,
}

impl RateScratch {
    /// Empty every buffer and invalidate the waterfill cache, keeping
    /// allocations for the next run.
    fn reset(&mut self) {
        self.running.clear();
        self.factors.clear();
        self.demands.clear();
        self.allocs.clear();
        self.order.clear();
        self.demand_by_cpu.clear();
        self.cache_unsaturated = false;
        self.cache_valid = false;
    }
}

/// Dense index of the CPUs whose current thread holds an active
/// compute — the set every rate recompute iterates. A bitmask (visited
/// in CPU-index order, matching the historical all-CPU scan) plus a
/// per-CPU thread index keep the hot loops on two small arrays instead
/// of walking the full `Cpu` and `Thread` structs.
#[derive(Default)]
struct RunningSet {
    mask: Vec<u64>,
    tid: Vec<u32>,
}

impl RunningSet {
    /// Size for `n_cpus` and mark every CPU idle, keeping allocations.
    fn reset(&mut self, n_cpus: usize) {
        self.mask.clear();
        self.mask.resize(n_cpus.div_ceil(64), 0);
        self.tid.clear();
        self.tid.resize(n_cpus, u32::MAX);
    }

    #[inline]
    fn insert(&mut self, ci: usize, ti: usize) {
        self.mask[ci >> 6] |= 1u64 << (ci & 63);
        self.tid[ci] = ti as u32;
    }

    #[inline]
    fn remove(&mut self, ci: usize) {
        self.mask[ci >> 6] &= !(1u64 << (ci & 63));
        self.tid[ci] = u32::MAX;
    }

    /// Visit running `(cpu index, thread index)` pairs in CPU order.
    #[inline]
    fn for_each(&self, mut f: impl FnMut(usize, usize)) {
        for (w, &word) in self.mask.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let ci = (w << 6) | bits.trailing_zeros() as usize;
                bits &= bits - 1;
                f(ci, self.tid[ci] as usize);
            }
        }
    }
}

/// The simulated kernel. See module docs.
pub struct Kernel {
    pub machine: Machine,
    pub config: KernelConfig,
    queue: EventQueue<KEvent>,
    threads: Vec<Thread>,
    behaviors: Vec<Option<Box<dyn Behavior>>>,
    cpus: Vec<Cpu>,
    barriers: Vec<BarrierState>,
    waitqs: Vec<WaitQueueState>,
    rng: Rng,
    tracer: Option<Box<dyn TraceSink>>,
    /// Per-CPU trace-write overhead accumulated since the last tick,
    /// charged inside the next tick's IRQ window.
    pending_trace_ns: Vec<u64>,
    /// Alternates softirq attribution between RCU:9 and SCHED:7.
    softirq_flip: bool,
    /// Depth guard for the dispatch -> step_behavior recursion.
    step_depth: u32,
    /// Threads sitting in some CPU's runqueue (not running). Lets the
    /// tickless arming hook skip the per-CPU pullability scan in the
    /// common queues-empty case.
    queued_total: usize,
    /// Set by `enqueue`, cleared by the idle-balance kick in `handle`.
    /// A parked CPU's pullable set can only grow through an enqueue (it
    /// parked precisely because nothing was pullable), so events that
    /// enqueued nothing can skip the kick scan entirely.
    kick_pending: bool,
    /// Number of CPUs whose current thread runs a compute with
    /// `bw_demand > 0` — the O(1) form of the bandwidth-activity scan
    /// consulted on every rate recompute. Maintained at the four
    /// mutation points (dispatch, off_cpu, install/clear compute) and
    /// cross-checked against the scan in debug builds.
    bw_running: u32,
    /// Active computes, parallel to `threads`. Kept out of the big
    /// `Thread` control block so rate recomputes walk a dense array.
    computes: Vec<Option<ActiveCompute>>,
    /// CPUs currently running a compute (see [`RunningSet`]).
    /// Maintained at the same four mutation points as `bw_running`.
    running: RunningSet,
    scratch: RateScratch,
    /// Installed fault plan state, if any. Faults draw from their own
    /// RNG stream so a `None` here (or an all-zero plan) leaves the
    /// event sequence bit-identical to an unfaulted run.
    faults: Option<FaultState>,
    /// Threads torn down by [`Self::schedule_abort`], in abort order.
    aborted: Vec<ThreadId>,
    /// Event-stream sanitizer, folding every dispatched event into a
    /// running hash (see [`crate::sanitize`]). A pure observer unless
    /// its chaos hook is armed.
    sanitizer: Option<EventSanitizer>,
    /// Telemetry observer receiving dispatch and scheduling records
    /// (see [`crate::observe`]). Always a pure observer.
    observer: Option<Box<dyn KernelObserver>>,
    /// Host-time phase profiler; the kernel only announces boundaries,
    /// it never reads a clock itself.
    profiler: Option<Box<dyn HostProfiler>>,
    /// Precomputed observation mask (see `OBS_*` bits): one load tells
    /// the dispatch loop whether any event consumer is attached.
    /// Maintained at the attach/detach/take points.
    obs_mask: u8,
    /// Pending batched event records for the observer, flushed at
    /// `OBS_BATCH` or before any scheduling record / run-loop return.
    obs_events: Vec<WireRecord>,
    /// Intern table for the noise-source labels in `obs_events`.
    obs_intern: InternTable,
    /// Live DVFS state (frequency levels, turbo budget, thermal
    /// accumulator). `None` when the machine's DVFS axis is disabled:
    /// no events, no rate scaling, no state — bit-identical to the
    /// pre-DVFS simulator. Deliberately *not* recycled through
    /// [`KernelStorage`]: the vectors are tiny (per-CPU) and a fresh
    /// runtime per run keeps arena reuse trivially pure.
    dvfs: Option<crate::dvfs::DvfsRuntime>,
}

/// `obs_mask` bit: an event sanitizer is attached.
const OBS_SANITIZER: u8 = 1;
/// `obs_mask` bit: a kernel observer is attached.
const OBS_OBSERVER: u8 = 2;
/// Batched-observer flush threshold (records).
const OBS_BATCH: usize = 64;

/// Recyclable per-run kernel state: every growable buffer the kernel
/// owns, detached from a finished run by [`Kernel::retire`] and handed
/// to the next [`Kernel::new_in`], which empties the buffers but keeps
/// their allocations. Repetition loops (overhead-measurement reps,
/// campaign cells) thereby stop paying event-heap and control-block
/// malloc churn on every run. A defaulted storage is empty, so
/// `new_in(.., &mut KernelStorage::default())` is exactly `new(..)`.
#[derive(Default)]
pub struct KernelStorage {
    queue: EventQueue<KEvent>,
    threads: Vec<Thread>,
    behaviors: Vec<Option<Box<dyn Behavior>>>,
    cpus: Vec<Cpu>,
    barriers: Vec<BarrierState>,
    waitqs: Vec<WaitQueueState>,
    pending_trace_ns: Vec<u64>,
    computes: Vec<Option<ActiveCompute>>,
    running: RunningSet,
    scratch: RateScratch,
    aborted: Vec<ThreadId>,
    obs_events: Vec<WireRecord>,
    obs_intern: InternTable,
}

impl Kernel {
    pub fn new(machine: Machine, config: KernelConfig, seed: u64) -> Self {
        Self::new_in(machine, config, seed, &mut KernelStorage::default())
    }

    /// [`Kernel::new`] drawing its buffers from `storage` (see
    /// [`KernelStorage`]). The arena conformance suite asserts a kernel
    /// built this way runs bit-identically to a fresh one.
    pub fn new_in(
        machine: Machine,
        config: KernelConfig,
        seed: u64,
        storage: &mut KernelStorage,
    ) -> Self {
        let n = machine.n_cpus();
        let mut queue = std::mem::take(&mut storage.queue);
        queue.reset();
        let mut cpus = std::mem::take(&mut storage.cpus);
        cpus.clear();
        cpus.extend((0..n).map(|_| Cpu::new()));
        // Ticks live on a fixed per-CPU grid staggered across the tick
        // period, as on real systems where CPUs boot at slightly
        // different times. Eager mode arms every CPU at boot; tickless
        // CPUs start parked and are armed when they first get work (at
        // the same grid instants, so busy-CPU ticks coincide exactly).
        if !config.tickless {
            let period = machine.tick_period.nanos();
            for (i, cpu) in cpus.iter_mut().enumerate() {
                let offset = period * (i as u64 + 1) / (n as u64 + 1);
                queue.schedule(SimTime(offset), KEvent::Tick(i as u32));
                cpu.tick_armed = true;
            }
        }
        let mut threads = std::mem::take(&mut storage.threads);
        threads.clear();
        let mut behaviors = std::mem::take(&mut storage.behaviors);
        behaviors.clear();
        let mut barriers = std::mem::take(&mut storage.barriers);
        barriers.clear();
        let mut waitqs = std::mem::take(&mut storage.waitqs);
        waitqs.clear();
        let mut pending_trace_ns = std::mem::take(&mut storage.pending_trace_ns);
        pending_trace_ns.clear();
        pending_trace_ns.resize(n, 0);
        let mut computes = std::mem::take(&mut storage.computes);
        computes.clear();
        let mut running = std::mem::take(&mut storage.running);
        running.reset(n);
        let mut scratch = std::mem::take(&mut storage.scratch);
        scratch.reset();
        let mut aborted = std::mem::take(&mut storage.aborted);
        aborted.clear();
        let mut obs_events = std::mem::take(&mut storage.obs_events);
        obs_events.clear();
        let mut obs_intern = std::mem::take(&mut storage.obs_intern);
        obs_intern.clear();
        let dvfs = machine
            .dvfs
            .enabled
            .then(|| crate::dvfs::DvfsRuntime::new(machine.dvfs.clone(), n));
        Kernel {
            machine,
            config,
            queue,
            threads,
            behaviors,
            cpus,
            barriers,
            waitqs,
            rng: Rng::new(seed),
            tracer: None,
            pending_trace_ns,
            softirq_flip: false,
            step_depth: 0,
            queued_total: 0,
            kick_pending: false,
            bw_running: 0,
            computes,
            running,
            scratch,
            faults: None,
            aborted,
            sanitizer: None,
            observer: None,
            profiler: None,
            obs_mask: 0,
            obs_events,
            obs_intern,
            dvfs,
        }
    }

    /// Tear the kernel down, returning its buffers to `storage` for the
    /// next [`Kernel::new_in`]. Attached sinks and observers are
    /// dropped. (Buffer contents are emptied lazily at the next
    /// `new_in`, off any measured path.)
    pub fn retire(self, storage: &mut KernelStorage) {
        storage.queue = self.queue;
        storage.threads = self.threads;
        storage.behaviors = self.behaviors;
        storage.cpus = self.cpus;
        storage.barriers = self.barriers;
        storage.waitqs = self.waitqs;
        storage.pending_trace_ns = self.pending_trace_ns;
        storage.computes = self.computes;
        storage.running = self.running;
        storage.scratch = self.scratch;
        storage.aborted = self.aborted;
        storage.obs_events = self.obs_events;
        storage.obs_intern = self.obs_intern;
    }

    #[inline]
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Attach an osnoise-style trace sink; tracing stays on until
    /// [`Self::detach_tracer`].
    pub fn attach_tracer(&mut self, sink: Box<dyn TraceSink>) {
        self.tracer = Some(sink);
    }

    pub fn detach_tracer(&mut self) -> Option<Box<dyn TraceSink>> {
        self.tracer.take()
    }

    pub fn tracing(&self) -> bool {
        self.tracer.is_some()
    }

    /// Attach an event-stream sanitizer. Every subsequently dispatched
    /// event is folded into its running hash; with the default config
    /// this never changes the simulation.
    pub fn attach_sanitizer(&mut self, config: SanitizerConfig) {
        self.sanitizer = Some(EventSanitizer::new(config));
        self.obs_mask |= OBS_SANITIZER;
    }

    /// Running event-stream hash, if a sanitizer is attached.
    pub fn stream_hash(&self) -> Option<u64> {
        self.sanitizer.as_ref().map(|s| s.hash())
    }

    /// Detach the sanitizer and return its report.
    pub fn take_sanitizer_report(&mut self) -> Option<SanitizerReport> {
        self.obs_mask &= !OBS_SANITIZER;
        self.sanitizer.take().map(|s| s.into_report())
    }

    /// Attach a telemetry observer. It receives every dispatched event
    /// and every scheduling record until [`Self::detach_observer`];
    /// observers are pure, so this never changes the simulation.
    pub fn attach_observer(&mut self, obs: Box<dyn KernelObserver>) {
        self.observer = Some(obs);
        self.obs_mask |= OBS_OBSERVER;
    }

    pub fn detach_observer(&mut self) -> Option<Box<dyn KernelObserver>> {
        self.flush_obs_events();
        self.obs_mask &= !OBS_OBSERVER;
        self.observer.take()
    }

    /// Deliver any batched event records to the observer. A no-op with
    /// an empty batch, so call sites sprinkle it freely: before every
    /// scheduling record and at every run-loop return, keeping the
    /// merged event/sched stream an observer sees in dispatch order.
    fn flush_obs_events(&mut self) {
        if self.obs_events.is_empty() {
            return;
        }
        if let Some(obs) = self.observer.as_mut() {
            obs.events(&self.obs_events, &self.obs_intern);
        }
        self.obs_events.clear();
    }

    /// Attach a host-time phase profiler (see [`crate::observe`]).
    pub fn attach_host_profiler(&mut self, prof: Box<dyn HostProfiler>) {
        self.profiler = Some(prof);
    }

    pub fn detach_host_profiler(&mut self) -> Option<Box<dyn HostProfiler>> {
        self.profiler.take()
    }

    #[inline]
    fn prof_enter(&mut self, phase: Phase) {
        if let Some(p) = self.profiler.as_mut() {
            p.enter(phase);
        }
    }

    #[inline]
    fn prof_exit(&mut self, phase: Phase) {
        if let Some(p) = self.profiler.as_mut() {
            p.exit(phase);
        }
    }

    /// Fork an independent RNG stream (for building workload data etc.).
    pub fn fork_rng(&mut self, stream: u64) -> Rng {
        self.rng.fork(stream)
    }

    /// Install a fault plan, driven by the given dedicated RNG stream.
    /// Pre-schedules the plan's spurious interrupts and CPU stall
    /// through [`Self::inject_irq`]; lost/late ticks are drawn lazily
    /// at tick service/arming time. Thread aborts are *not* scheduled
    /// here — the caller picks victims (it knows the team membership)
    /// and uses [`Self::schedule_abort`].
    pub fn install_faults(&mut self, plan: &FaultPlan, mut rng: Rng) {
        let n = self.machine.n_cpus() as u64;
        let mut stats = FaultStats::default();
        if let Some(sp) = &plan.spurious {
            if sp.rate_per_sec > 0.0 {
                // Poisson arrivals over the window, uniform over CPUs.
                let mean_gap = 1e9 / sp.rate_per_sec;
                let mut t = rng.exp(mean_gap);
                while t < sp.window.nanos() as f64 {
                    let cpu = CpuId(rng.below(n) as u32);
                    let service =
                        SimDuration(rng.exp(sp.service_mean.nanos() as f64).max(200.0) as u64);
                    self.inject_irq(cpu, SimTime(t as u64), service, "fault:spurious-irq");
                    stats.spurious_irqs += 1;
                    t += rng.exp(mean_gap);
                }
            }
        }
        if let Some(st) = &plan.stall {
            let cpu = CpuId(rng.below(n) as u32);
            let start = rng.range_f64(st.start.0.nanos() as f64, st.start.1.nanos() as f64);
            let dur = rng.range_f64(st.duration.0.nanos() as f64, st.duration.1.nanos() as f64);
            self.inject_irq(
                cpu,
                SimTime(start as u64),
                SimDuration(dur.max(1.0) as u64),
                "fault:cpu-stall",
            );
            stats.stall_windows += 1;
        }
        let mut state = FaultState::new(plan, rng);
        state.stats = stats;
        self.faults = Some(state);
    }

    /// Schedule `tid` to be forcibly torn down at `at` (clamped to now),
    /// as if the thread crashed mid-region. The teardown goes through
    /// the ordinary descheduling paths; peers blocked on the dead
    /// thread will deadlock, which [`Self::run_until_exit`] reports as
    /// [`RunError::Drained`].
    pub fn schedule_abort(&mut self, tid: ThreadId, at: SimTime) {
        let at = at.max(self.now());
        self.queue.schedule(at, KEvent::Abort(tid));
    }

    /// Threads torn down by [`Self::schedule_abort`], in abort order.
    pub fn aborted_threads(&self) -> &[ThreadId] {
        &self.aborted
    }

    /// Fault delivery counters, when a plan is installed.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.faults.as_ref().map(|f| f.stats)
    }

    /// Create a thread. It becomes runnable at `spec.start`.
    pub fn spawn(&mut self, mut spec: ThreadSpec, behavior: Box<dyn Behavior>) -> ThreadId {
        if spec.affinity.is_empty() {
            spec.affinity = self.machine.all_cpus();
        }
        let id = ThreadId(self.threads.len() as u32);
        let t = Thread::new(id, spec.name, spec.kind, spec.policy, spec.affinity);
        self.threads.push(t);
        self.computes.push(None);
        self.behaviors.push(Some(behavior));
        let at = spec.start.max(self.now());
        let token = self.queue.schedule(at, KEvent::Start(id));
        self.threads[id.index()].timer_token = token;
        id
    }

    pub fn new_barrier(&mut self, parties: usize) -> BarrierId {
        assert!(parties > 0);
        let id = BarrierId(self.barriers.len() as u32);
        self.barriers.push(BarrierState {
            parties,
            waiting: Vec::new(),
        });
        id
    }

    pub fn new_waitq(&mut self) -> WaitId {
        let id = WaitId(self.waitqs.len() as u32);
        self.waitqs.push(WaitQueueState {
            waiters: VecDeque::new(),
        });
        id
    }

    #[inline]
    pub fn thread(&self, tid: ThreadId) -> &Thread {
        &self.threads[tid.index()]
    }

    pub fn cpu_stats(&self, cpu: CpuId) -> (u64, u64) {
        let c = &self.cpus[cpu.index()];
        (c.busy_ns, c.irq_ns)
    }

    /// Run until `tid` exits; returns its exit time. Fails if virtual
    /// time would pass `horizon` first.
    pub fn run_until_exit(&mut self, tid: ThreadId, horizon: SimTime) -> Result<SimTime, RunError> {
        loop {
            if let Some(t) = self.threads[tid.index()].exit_time {
                self.flush_obs_events();
                return Ok(t);
            }
            let Some(next) = self.queue.peek_time() else {
                self.flush_obs_events();
                return Err(RunError::Drained);
            };
            if next > horizon {
                self.flush_obs_events();
                return Err(RunError::Horizon(horizon));
            }
            let (_, ev) = self.queue.pop().unwrap();
            self.handle(ev);
        }
    }

    /// Run until virtual time `until`. A drained queue also returns
    /// `Ok`: with every tick parked and no event pending, no state can
    /// change before `until` (or ever).
    pub fn run_until(&mut self, until: SimTime) -> Result<(), RunError> {
        loop {
            let Some(next) = self.queue.peek_time() else {
                self.flush_obs_events();
                return Ok(());
            };
            if next > until {
                self.flush_obs_events();
                return Ok(());
            }
            let (_, ev) = self.queue.pop().unwrap();
            self.handle(ev);
        }
    }

    // ------------------------------------------------------------------
    // Event handling
    // ------------------------------------------------------------------

    fn handle(&mut self, ev: KEvent) {
        self.prof_enter(Phase::Dispatch);
        if self.obs_mask != 0 {
            self.observe_event(&ev);
        }
        match ev {
            KEvent::Start(tid) | KEvent::WakeTimer(tid) => {
                self.threads[tid.index()].timer_token = EventToken::NONE;
                self.wake_thread(tid);
            }
            KEvent::ComputeDone(tid) => self.on_compute_done(tid),
            KEvent::SpinExpire(tid) => self.on_spin_expire(tid),
            KEvent::Tick(cpu) => self.on_tick(cpu as usize),
            KEvent::IrqDone(cpu) => self.on_irq_done(cpu as usize),
            KEvent::DeviceIrq {
                cpu,
                duration,
                source,
            } => self.on_device_irq(cpu as usize, duration, &source),
            KEvent::Abort(tid) => self.force_abort(tid),
        }
        // Tickless idle-balance kick: if the event enqueued work that a
        // parked CPU could pull, re-arm that CPU so it gets the same
        // tick (at the same grid instant) an eager kernel would have
        // used to pull it. Events that enqueued nothing cannot have made
        // a parked CPU pullable, so they skip the scan.
        if self.config.tickless && std::mem::take(&mut self.kick_pending) && self.queued_total > 0 {
            for ci in 0..self.cpus.len() {
                if !self.cpus[ci].tick_armed
                    && self.cpus[ci].current.is_none()
                    && self.any_pullable(ci)
                {
                    self.arm_tick(ci);
                }
            }
        }
        self.prof_exit(Phase::Dispatch);
    }

    /// Feed a dispatched event to the attached telemetry observer and
    /// fold it into the attached sanitizer, firing the sanitizer's
    /// chaos hook (one synthetic device IRQ, now) when armed.
    fn observe_event(&mut self, ev: &KEvent) {
        let now = self.now();
        let rec = match ev {
            KEvent::Start(tid) => EventRecord {
                kind: EventKind::Start,
                cpu: None,
                thread: Some(tid.0),
                time: now,
                duration_ns: 0,
                source: None,
            },
            KEvent::WakeTimer(tid) => EventRecord {
                kind: EventKind::WakeTimer,
                cpu: None,
                thread: Some(tid.0),
                time: now,
                duration_ns: 0,
                source: None,
            },
            KEvent::ComputeDone(tid) => EventRecord {
                kind: EventKind::ComputeDone,
                cpu: None,
                thread: Some(tid.0),
                time: now,
                duration_ns: 0,
                source: None,
            },
            KEvent::SpinExpire(tid) => EventRecord {
                kind: EventKind::SpinExpire,
                cpu: None,
                thread: Some(tid.0),
                time: now,
                duration_ns: 0,
                source: None,
            },
            KEvent::Tick(cpu) => EventRecord {
                kind: EventKind::Tick,
                cpu: Some(*cpu),
                thread: None,
                time: now,
                duration_ns: 0,
                source: None,
            },
            KEvent::IrqDone(cpu) => EventRecord {
                kind: EventKind::IrqDone,
                cpu: Some(*cpu),
                thread: None,
                time: now,
                duration_ns: 0,
                source: None,
            },
            KEvent::DeviceIrq {
                cpu,
                duration,
                source,
            } => EventRecord {
                kind: EventKind::DeviceIrq,
                cpu: Some(*cpu),
                thread: None,
                time: now,
                duration_ns: duration.nanos(),
                source: Some(source),
            },
            KEvent::Abort(tid) => EventRecord {
                kind: EventKind::Abort,
                cpu: None,
                thread: Some(tid.0),
                time: now,
                duration_ns: 0,
                source: None,
            },
        };
        if self.obs_mask & OBS_OBSERVER != 0 {
            let name = rec.source.map_or(u32::MAX, |s| self.obs_intern.intern(s));
            self.obs_events.push(WireRecord {
                start: rec.time.0,
                dur_ns: rec.duration_ns,
                cpu: rec.cpu.unwrap_or(u32::MAX),
                thread: rec.thread.unwrap_or(u32::MAX),
                name,
                tag: rec.kind.tag(),
            });
            if self.obs_events.len() >= OBS_BATCH {
                self.flush_obs_events();
            }
        }
        let perturb = self
            .sanitizer
            .as_mut()
            .map(|s| s.observe(&rec))
            .unwrap_or(false);
        if perturb {
            self.queue.schedule(
                now,
                KEvent::DeviceIrq {
                    cpu: 0,
                    duration: SimDuration(1_000),
                    source: "sanitizer:perturb".into(),
                },
            );
        }
    }

    /// Pre-schedule a device interrupt on `cpu` at time `at`. Used by
    /// noise sources to model interrupt storms; recorded as `irq_noise`.
    pub fn inject_irq(
        &mut self,
        cpu: CpuId,
        at: SimTime,
        duration: SimDuration,
        source: impl Into<Box<str>>,
    ) {
        let at = at.max(self.now());
        self.queue.schedule(
            at,
            KEvent::DeviceIrq {
                cpu: cpu.0,
                duration,
                source: source.into(),
            },
        );
    }

    fn on_device_irq(&mut self, ci: usize, duration: SimDuration, source: &str) {
        let now = self.now();
        let mut stall = duration.nanos();
        if self.tracer.is_some() {
            self.prof_enter(Phase::Tracer);
        }
        if let Some(tr) = self.tracer.as_mut() {
            tr.record(
                CpuId(ci as u32),
                NoiseClass::Irq,
                source,
                None,
                now,
                duration,
            );
            stall += self.config.trace_event_overhead.nanos();
            self.prof_exit(Phase::Tracer);
        }
        self.flush_obs_events();
        if let Some(obs) = self.observer.as_mut() {
            obs.sched(&SchedRecord::IrqSpan {
                cpu: ci as u32,
                time: now,
                duration_ns: stall,
                source,
                softirq: false,
            });
        }
        self.cpus[ci].irq_ns += stall;
        if let Some(tid) = self.cpus[ci].current {
            self.charge_runtime(tid);
        }
        let end = now + SimDuration(stall);
        if end > self.cpus[ci].irq_until {
            self.cpus[ci].irq_until = end;
            self.queue.cancel(self.cpus[ci].irq_token);
            self.cpus[ci].irq_token = self.queue.schedule(end, KEvent::IrqDone(ci as u32));
        }
        if self.cpus[ci].current.is_some() {
            self.recompute_rates_for(ci);
        }
    }

    fn on_compute_done(&mut self, tid: ThreadId) {
        let now = self.now();
        let i = tid.index();
        self.threads[i].compute_token = EventToken::NONE;
        if self.threads[i].state != ThreadState::Running {
            // Stale event (should have been cancelled).
            debug_assert!(false, "ComputeDone for non-running {tid}");
            return;
        }
        if let Some(c) = self.computes[i].as_mut() {
            c.advance_to(now);
            debug_assert!(
                c.remaining < 1.0 && c.overhead_ns < 1.0,
                "ComputeDone fired early for {tid}: remaining={} overhead={}",
                c.remaining,
                c.overhead_ns
            );
        }
        self.charge_runtime(tid);
        self.clear_compute(i);
        let cpu = self.threads[i]
            .cpu
            .expect("running thread without cpu")
            .index();
        self.recompute_rates_for(cpu);
        self.step_behavior(tid);
    }

    fn on_spin_expire(&mut self, tid: ThreadId) {
        let now = self.now();
        let i = tid.index();
        self.threads[i].spin_token = EventToken::NONE;
        if !self.threads[i].spinning {
            return; // already released
        }
        // Give up spinning: block off-CPU.
        self.threads[i].spinning = false;
        match self.threads[i].state {
            ThreadState::Running => {
                let cpu = self.threads[i].cpu.unwrap().index();
                self.off_cpu(tid, ThreadState::Blocked);
                self.clear_compute(i);
                self.recompute_rates_for(cpu);
                self.dispatch(cpu);
            }
            ThreadState::Ready => {
                // Preempted while spinning; remove from the runqueue.
                let cpu = self.threads[i].cpu.unwrap().index();
                self.dequeue_ready(cpu, tid);
                self.note_dequeue(cpu, tid);
                self.clear_compute(i);
                self.threads[i].state = ThreadState::Blocked;
                self.threads[i].cpu = None;
                let _ = now;
            }
            _ => {}
        }
    }

    fn on_tick(&mut self, ci: usize) {
        let now = self.now();
        self.cpus[ci].tick_armed = false;

        // Fault hook: a lost timer interrupt. The handler never runs —
        // no IRQ service, no noise draws, no preemption check — but the
        // hardware timer keeps its grid, so the CPU re-arms (or parks)
        // exactly as it would after a serviced tick.
        if self.fault_lost_tick() {
            if !self.config.tickless || self.cpus[ci].current.is_some() || self.any_pullable(ci) {
                self.arm_tick(ci);
            }
            return;
        }

        if self.cpus[ci].current.is_some() {
            // --- timer interrupt service (busy CPU) ---------------------
            // Only busy CPUs take the timer IRQ and its noise draws, so
            // the RNG stream and traces are identical whether or not
            // idle CPUs tick.
            let irq_ns = self
                .rng
                .normal_min(
                    self.config.timer_irq_mean.nanos() as f64,
                    self.config.timer_irq_sd.nanos() as f64,
                    200.0,
                )
                .round() as u64;
            let mut stall = irq_ns;
            let mut trace_events = 0u32;
            if self.tracer.is_some() {
                trace_events += 1;
            }

            let softirq = if self.rng.chance(self.config.softirq_prob) {
                let s = self
                    .rng
                    .exp(self.config.softirq_mean.nanos() as f64)
                    .round()
                    .max(200.0) as u64;
                self.softirq_flip = !self.softirq_flip;
                if self.tracer.is_some() {
                    trace_events += 1;
                }
                Some(s)
            } else {
                None
            };

            if self.tracer.is_some() {
                self.prof_enter(Phase::Tracer);
            }
            if let Some(tr) = self.tracer.as_mut() {
                tr.record(
                    CpuId(ci as u32),
                    NoiseClass::Irq,
                    "local_timer:236",
                    None,
                    now,
                    SimDuration(irq_ns),
                );
                if let Some(s) = softirq {
                    let src = if self.softirq_flip {
                        "RCU:9"
                    } else {
                        "SCHED:7"
                    };
                    tr.record(
                        CpuId(ci as u32),
                        NoiseClass::Softirq,
                        src,
                        None,
                        now + SimDuration(irq_ns),
                        SimDuration(s),
                    );
                }
                self.prof_exit(Phase::Tracer);
            }
            self.flush_obs_events();
            if let Some(obs) = self.observer.as_mut() {
                obs.sched(&SchedRecord::IrqSpan {
                    cpu: ci as u32,
                    time: now,
                    duration_ns: irq_ns,
                    source: "local_timer:236",
                    softirq: false,
                });
                if let Some(s) = softirq {
                    let src = if self.softirq_flip {
                        "RCU:9"
                    } else {
                        "SCHED:7"
                    };
                    obs.sched(&SchedRecord::IrqSpan {
                        cpu: ci as u32,
                        time: now + SimDuration(irq_ns),
                        duration_ns: s,
                        source: src,
                        softirq: true,
                    });
                }
            }
            stall += softirq.unwrap_or(0);
            // Charge deferred trace-write overhead plus this tick's records.
            if self.tracer.is_some() {
                let deferred = std::mem::take(&mut self.pending_trace_ns[ci]);
                stall += deferred + trace_events as u64 * self.config.trace_event_overhead.nanos();
            }

            self.cpus[ci].irq_ns += stall;
            // Freeze the running thread's progress for the IRQ window.
            if let Some(tid) = self.cpus[ci].current {
                self.charge_runtime(tid);
            }
            let end = now + SimDuration(stall);
            if end > self.cpus[ci].irq_until {
                self.cpus[ci].irq_until = end;
                self.queue.cancel(self.cpus[ci].irq_token);
                self.cpus[ci].irq_token = self.queue.schedule(end, KEvent::IrqDone(ci as u32));
            }
            // The busy tick is the periodic governor/thermal evaluation
            // point (runtime was just charged, so heat is current); the
            // recompute below then applies any new frequency.
            self.dvfs_eval(ci);
            self.recompute_rates_for(ci);
        } else {
            // --- periodic idle balancing --------------------------------
            // An idle CPU's tick is a pure dispatch attempt so it can
            // pull queued work from loaded CPUs (the tick-driven load
            // balancing of real kernels). No IRQ is modelled and no
            // noise is drawn: the idle tick must be side-effect-free so
            // that parking it (tickless) cannot change busy-CPU state.
            self.dispatch(ci);
        }

        // --- scheduler tick: fair-class preemption ----------------------
        if let Some(cur) = self.cpus[ci].current {
            let cur_t = &self.threads[cur.index()];
            if !cur_t.policy.is_rt() {
                let ran = now.since(cur_t.on_cpu_since);
                if ran >= self.config.min_granularity {
                    if let Some((v, _)) = self.cpus[ci].cfs.peek() {
                        if v < cur_t.vruntime {
                            self.note_decision(ci, DecisionPoint::TickPreempt);
                            self.preempt_current(ci);
                            self.dispatch(ci);
                        }
                    }
                }
            }
        }

        // --- re-arm or park ---------------------------------------------
        // Eager mode always re-arms. Tickless keeps ticking while the
        // CPU is busy or there is queued work it could still pull;
        // otherwise the tick parks until dispatch or the idle-balance
        // kick in `handle` re-arms it.
        if !self.config.tickless || self.cpus[ci].current.is_some() || self.any_pullable(ci) {
            self.arm_tick(ci);
        }
    }

    /// Schedule the next tick for `ci` at the first point of its fixed
    /// grid strictly after `now`, unless one is already pending. The
    /// grid (boot offset + k * period) is mode-independent, so a CPU
    /// re-armed after parking ticks at exactly the instants it would
    /// have ticked at had it never parked.
    fn arm_tick(&mut self, ci: usize) {
        if self.cpus[ci].tick_armed {
            return;
        }
        let period = self.machine.tick_period.nanos();
        let n = self.cpus.len() as u64;
        let offset = period * (ci as u64 + 1) / (n + 1);
        let now = self.now().0;
        let mut next = if now < offset {
            offset
        } else {
            offset + ((now - offset) / period + 1) * period
        };
        // Fault hook: a late timer expiry pushes this tick off its grid
        // slot by a bounded random delay.
        next += self.fault_tick_delay();
        self.queue.schedule(SimTime(next), KEvent::Tick(ci as u32));
        self.cpus[ci].tick_armed = true;
    }

    /// Draw the lost-tick dice from the fault stream. A plan with a
    /// zero probability draws nothing, so plans differing only in other
    /// fault knobs keep their streams aligned.
    #[inline]
    fn fault_lost_tick(&mut self) -> bool {
        let Some(f) = self.faults.as_mut() else {
            return false;
        };
        if f.lost_tick_prob <= 0.0 || !f.rng.chance(f.lost_tick_prob) {
            return false;
        }
        f.stats.lost_ticks += 1;
        true
    }

    /// Draw the late-tick delay (ns) from the fault stream; zero when
    /// the tick fires on its grid slot.
    #[inline]
    fn fault_tick_delay(&mut self) -> u64 {
        let Some(f) = self.faults.as_mut() else {
            return 0;
        };
        if f.late_tick_prob <= 0.0 || !f.rng.chance(f.late_tick_prob) {
            return 0;
        }
        f.stats.late_ticks += 1;
        1 + f.rng.below(f.late_tick_max_ns.max(1))
    }

    /// Whether an idle-balance pull on `ci` could ever succeed: some
    /// queued thread's affinity admits this CPU. Deliberately looser
    /// than [`Self::try_steal`]'s NUMA thresholds — the CPU keeps
    /// ticking until the pull actually succeeds, exactly as an eager
    /// kernel would keep attempting it every tick.
    fn any_pullable(&self, ci: usize) -> bool {
        if !self.config.idle_balance || self.queued_total == 0 {
            return false;
        }
        let me = CpuId(ci as u32);
        self.cpus.iter().any(|c| {
            c.rt.iter()
                .any(|(_, t)| self.threads[t.index()].affinity.contains(me))
                || c.cfs
                    .iter()
                    .any(|(_, t)| self.threads[t.index()].affinity.contains(me))
        })
    }

    fn on_irq_done(&mut self, ci: usize) {
        self.cpus[ci].irq_token = EventToken::NONE;
        // Rates were zeroed for this CPU's thread; restore them.
        self.recompute_rates_for(ci);
    }

    /// Fault injection: tear `tid` down mid-region as if it crashed.
    /// The thread exits through the ordinary descheduling paths from
    /// whatever state it is in; it is removed from runqueues, wait
    /// queues and barrier arrival lists, so peers that depend on it
    /// block forever (the deadlock the harness then reports).
    fn force_abort(&mut self, tid: ThreadId) {
        let now = self.now();
        let i = tid.index();
        if self.threads[i].state == ThreadState::Exited {
            return; // already exited (or aborted twice)
        }
        // A dead thread never arrives at its barrier or wait queue.
        match self.threads[i].block_reason {
            BlockReason::Barrier(b) => self.barriers[b.0 as usize].waiting.retain(|&t| t != tid),
            BlockReason::Wait(wq) => self.waitqs[wq.0 as usize].waiters.retain(|&t| t != tid),
            BlockReason::None | BlockReason::Direct => {}
        }
        match self.threads[i].state {
            ThreadState::Running => {
                let cpu = self.threads[i]
                    .cpu
                    .expect("running thread without cpu")
                    .index();
                self.off_cpu(tid, ThreadState::Exited);
                self.clear_compute(i);
                self.seal_aborted(tid, now);
                self.recompute_rates_for(cpu);
                self.dispatch(cpu);
            }
            ThreadState::Ready => {
                let cpu = self.threads[i]
                    .cpu
                    .expect("ready thread without cpu")
                    .index();
                self.dequeue_ready(cpu, tid);
                self.note_dequeue(cpu, tid);
                self.threads[i].state = ThreadState::Exited;
                self.threads[i].cpu = None;
                self.clear_compute(i);
                self.seal_aborted(tid, now);
            }
            ThreadState::New | ThreadState::Sleeping | ThreadState::Blocked => {
                self.threads[i].state = ThreadState::Exited;
                self.threads[i].cpu = None;
                self.clear_compute(i);
                self.seal_aborted(tid, now);
            }
            ThreadState::Exited => unreachable!(),
        }
    }

    /// Common tail of [`Self::force_abort`]: cancel pending events,
    /// stamp the exit, drop the behavior, and record the casualty.
    fn seal_aborted(&mut self, tid: ThreadId, now: SimTime) {
        let i = tid.index();
        self.queue.cancel(self.threads[i].timer_token);
        self.queue.cancel(self.threads[i].compute_token);
        self.queue.cancel(self.threads[i].spin_token);
        self.threads[i].timer_token = EventToken::NONE;
        self.threads[i].compute_token = EventToken::NONE;
        self.threads[i].spin_token = EventToken::NONE;
        self.threads[i].spinning = false;
        self.threads[i].block_reason = BlockReason::None;
        self.threads[i].exit_time = Some(now);
        self.behaviors[i] = None;
        self.aborted.push(tid);
        if let Some(f) = self.faults.as_mut() {
            f.stats.aborted_threads += 1;
        }
    }

    // ------------------------------------------------------------------
    // Wake-up and placement
    // ------------------------------------------------------------------

    fn wake_thread(&mut self, tid: ThreadId) {
        let i = tid.index();
        match self.threads[i].state {
            ThreadState::New | ThreadState::Sleeping | ThreadState::Blocked => {}
            // Spurious wake of a runnable/exited thread: ignore.
            _ => return,
        }
        self.threads[i].block_reason = BlockReason::None;
        let (cpu, placement) = self.select_rq(tid);
        self.note_decision(cpu.index(), placement);
        if let Some(last) = self.threads[i].last_cpu {
            if last != cpu {
                self.threads[i].pending_migration = true;
            }
        }
        self.threads[i].state = ThreadState::Ready;
        self.threads[i].cpu = Some(cpu);
        self.enqueue(cpu.index(), tid);
        self.check_preempt(cpu.index(), tid);
    }

    /// Wake placement, mirroring Linux `select_idle_sibling`: prefer a
    /// fully idle physical core (previous CPU first) over an idle CPU
    /// whose sibling is busy, then the previous CPU if merely idle, then
    /// any idle CPU, then the least loaded allowed CPU. Deterministic:
    /// ties break on lowest CPU id. The idle-core preference is what
    /// routes unpinned noise onto housekeeping cores instead of the SMT
    /// siblings of busy workload cores.
    ///
    /// Returns the chosen CPU together with the placement branch taken,
    /// so the caller can announce the decision point.
    fn select_rq(&self, tid: ThreadId) -> (CpuId, DecisionPoint) {
        let t = &self.threads[tid.index()];
        let allowed = t.affinity.intersection(self.machine.all_cpus());
        assert!(!allowed.is_empty(), "thread {} has empty affinity", t.name);

        let is_idle = |c: CpuId| self.cpus[c.index()].nr_running() == 0;
        let core_idle = |c: CpuId| {
            is_idle(c)
                && match self.machine.sibling_of(c) {
                    Some(sib) => is_idle(sib),
                    None => true,
                }
        };

        if let Some(last) = t.last_cpu {
            if allowed.contains(last) && core_idle(last) {
                return (last, DecisionPoint::PlaceLastCore);
            }
        }
        // Any fully idle physical core — preferring the previous NUMA
        // domain (Linux searches the LLC domain first).
        let home = t.last_cpu.map(|c| self.machine.domain_of(c));
        let mut idle_any: Option<CpuId> = None;
        let mut idle_core_remote: Option<CpuId> = None;
        for c in allowed.iter() {
            if !is_idle(c) {
                continue;
            }
            if idle_any.is_none() {
                idle_any = Some(c);
            }
            if core_idle(c) {
                match home {
                    Some(h) if self.machine.domain_of(c) != h => {
                        if idle_core_remote.is_none() {
                            idle_core_remote = Some(c);
                        }
                    }
                    _ => return (c, DecisionPoint::PlaceHomeIdleCore),
                }
            }
        }
        if let Some(c) = idle_core_remote {
            return (c, DecisionPoint::PlaceRemoteIdleCore);
        }
        // Previous CPU if idle (cache affinity), else any idle CPU.
        if let Some(last) = t.last_cpu {
            if allowed.contains(last) && is_idle(last) {
                return (last, DecisionPoint::PlaceLastIdle);
            }
        }
        if let Some(c) = idle_any {
            return (c, DecisionPoint::PlaceAnyIdle);
        }
        // Least loaded.
        let mut best = allowed.first().unwrap();
        let mut best_load = usize::MAX;
        for c in allowed.iter() {
            let load = self.cpus[c.index()].nr_running();
            if load < best_load {
                best_load = load;
                best = c;
            }
        }
        (best, DecisionPoint::PlaceLeastLoaded)
    }

    fn enqueue(&mut self, ci: usize, tid: ThreadId) {
        let i = tid.index();
        debug_assert_eq!(self.threads[i].state, ThreadState::Ready);
        match self.threads[i].policy {
            Policy::Fifo { prio } => self.cpus[ci].rt.enqueue(prio, tid),
            Policy::Other { .. } => {
                // Floor the vruntime so sleepers cannot starve the queue.
                let floor = self.cpus[ci].cfs.min_vruntime;
                if self.threads[i].vruntime < floor {
                    self.threads[i].vruntime = floor;
                }
                self.cpus[ci].cfs.enqueue(self.threads[i].vruntime, tid);
            }
        }
        self.queued_total += 1;
        self.kick_pending = true;
        self.flush_obs_events();
        if let Some(obs) = self.observer.as_mut() {
            let depth = (self.cpus[ci].rt.len() + self.cpus[ci].cfs.len()) as u32;
            obs.sched(&SchedRecord::Enqueue {
                cpu: ci as u32,
                thread: tid.0,
                time: self.queue.now(),
                depth,
            });
        }
    }

    fn dequeue_ready(&mut self, ci: usize, tid: ThreadId) {
        let i = tid.index();
        let removed = match self.threads[i].policy {
            Policy::Fifo { .. } => self.cpus[ci].rt.remove(tid),
            Policy::Other { .. } => self.cpus[ci].cfs.dequeue(self.threads[i].vruntime, tid),
        };
        debug_assert!(removed, "thread {tid} not found in runqueue {ci}");
        if removed {
            self.queued_total -= 1;
        }
    }

    /// Should the newly enqueued `tid` preempt the current thread?
    fn check_preempt(&mut self, ci: usize, tid: ThreadId) {
        match self.cpus[ci].current {
            None => self.dispatch(ci),
            Some(cur) => {
                // Use up-to-date vruntime for the comparison.
                self.charge_runtime(cur);
                let new_t = &self.threads[tid.index()];
                let cur_t = &self.threads[cur.index()];
                let should = match (new_t.policy, cur_t.policy) {
                    (Policy::Fifo { prio: np }, Policy::Fifo { prio: cp }) => np > cp,
                    (Policy::Fifo { .. }, Policy::Other { .. }) => true,
                    (Policy::Other { .. }, Policy::Fifo { .. }) => false,
                    (Policy::Other { .. }, Policy::Other { .. }) => {
                        new_t.vruntime + self.config.wakeup_granularity.nanos() < cur_t.vruntime
                    }
                };
                self.note_decision(
                    ci,
                    if should {
                        DecisionPoint::WakePreempt
                    } else {
                        DecisionPoint::WakeNoPreempt
                    },
                );
                if should {
                    self.preempt_current(ci);
                    self.dispatch(ci);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Dispatch / deschedule
    // ------------------------------------------------------------------

    /// Take the current thread off the CPU into `new_state`, charging its
    /// runtime and recording thread-noise if applicable. Does not requeue.
    fn off_cpu(&mut self, tid: ThreadId, new_state: ThreadState) {
        let now = self.now();
        let i = tid.index();
        debug_assert_eq!(self.threads[i].state, ThreadState::Running);
        self.charge_runtime(tid);
        let cpu = self.threads[i].cpu.expect("running thread without cpu");
        debug_assert_eq!(self.cpus[cpu.index()].current, Some(tid));

        // osnoise-style thread noise: a non-workload thread leaving the
        // CPU ends an interference interval.
        if self.threads[i].kind != ThreadKind::Workload {
            let start = self.threads[i].on_cpu_since;
            let dur = now.since(start);
            if dur > SimDuration::ZERO {
                if self.tracer.is_some() {
                    self.prof_enter(Phase::Tracer);
                }
                if let Some(tr) = self.tracer.as_mut() {
                    tr.record(
                        cpu,
                        NoiseClass::Thread,
                        &self.threads[i].name,
                        Some(tid),
                        start,
                        dur,
                    );
                    self.pending_trace_ns[cpu.index()] += self.config.trace_event_overhead.nanos();
                    self.prof_exit(Phase::Tracer);
                }
            }
        }

        self.flush_obs_events();
        if let Some(obs) = self.observer.as_mut() {
            obs.sched(&SchedRecord::SwitchOut {
                cpu: cpu.0,
                thread: tid.0,
                time: now,
                state: new_state,
            });
        }

        if self.computes[i].is_some() {
            self.running.remove(cpu.index());
            if self.thread_demands_bw(i) {
                self.bw_running -= 1;
            }
        }
        self.cpus[cpu.index()].current = None;
        self.threads[i].last_cpu = Some(cpu);
        self.threads[i].state = new_state;
        self.threads[i].cpu = if new_state == ThreadState::Ready {
            Some(cpu)
        } else {
            None
        };
        // Cancel any pending completion; it will be rescheduled on resume.
        self.queue.cancel(self.threads[i].compute_token);
        self.threads[i].compute_token = EventToken::NONE;
        if let Some(c) = self.computes[i].as_mut() {
            // Credit progress at the old rate before the thread stops.
            c.advance_to(now);
            c.rate = 0.0;
        }
    }

    /// Preempt the current thread (stays runnable, requeued here).
    fn preempt_current(&mut self, ci: usize) {
        let Some(tid) = self.cpus[ci].current else {
            return;
        };
        self.off_cpu(tid, ThreadState::Ready);
        self.threads[tid.index()].stats.preemptions += 1;
        self.flush_obs_events();
        if let Some(obs) = self.observer.as_mut() {
            obs.sched(&SchedRecord::Preempt {
                cpu: ci as u32,
                thread: tid.0,
                time: self.queue.now(),
            });
        }
        self.enqueue(ci, tid);
        self.recompute_rates_for(ci);
    }

    /// Announce a scheduler decision point to the attached observer.
    /// Pure observation: no kernel state is read back.
    #[inline]
    fn note_decision(&mut self, ci: usize, point: DecisionPoint) {
        self.flush_obs_events();
        if let Some(obs) = self.observer.as_mut() {
            obs.sched(&SchedRecord::Decision {
                cpu: ci as u32,
                time: self.queue.now(),
                point,
            });
        }
    }

    #[inline]
    fn note_dequeue(&mut self, ci: usize, tid: ThreadId) {
        self.flush_obs_events();
        if let Some(obs) = self.observer.as_mut() {
            obs.sched(&SchedRecord::Dequeue {
                cpu: ci as u32,
                thread: tid.0,
                time: self.queue.now(),
            });
        }
    }

    /// Pick and start the next thread on CPU `ci`.
    fn dispatch(&mut self, ci: usize) {
        debug_assert!(self.cpus[ci].current.is_none());
        self.prof_enter(Phase::Scheduler);
        let mut from_rt = false;
        let local = self.cpus[ci]
            .rt
            .pop()
            .map(|(_, t)| {
                from_rt = true;
                t
            })
            .or_else(|| self.cpus[ci].cfs.pop().map(|(_, t)| t));
        if local.is_some() {
            self.queued_total -= 1;
        }
        let stolen = local.is_none();
        let next = local.or_else(|| self.try_steal(ci));
        let Some(tid) = next else {
            self.cpus[ci].cfs.refresh_floor(None);
            self.note_decision(ci, DecisionPoint::PickNone);
            self.dvfs_idle(ci);
            self.prof_exit(Phase::Scheduler);
            return;
        };
        self.note_decision(
            ci,
            if stolen {
                DecisionPoint::PickSteal
            } else if from_rt {
                DecisionPoint::PickRt
            } else {
                DecisionPoint::PickFair
            },
        );
        let now = self.now();
        let i = tid.index();
        debug_assert_eq!(self.threads[i].state, ThreadState::Ready);
        self.cpus[ci].current = Some(tid);
        if self.computes[i].is_some() {
            self.running.insert(ci, i);
            if self.thread_demands_bw(i) {
                self.bw_running += 1;
            }
        }
        // A busy CPU always ticks; re-arm if this CPU had parked.
        self.arm_tick(ci);
        // Idle-to-busy governor evaluation (the previous occupant, if
        // any, was charged in `off_cpu`, so heat and cycles are
        // current). Emitted before `SwitchIn` so a replay of the record
        // stream sees the new frequency from the very start of the
        // stint.
        self.dvfs_eval(ci);
        self.threads[i].state = ThreadState::Running;
        self.threads[i].cpu = Some(CpuId(ci as u32));
        self.threads[i].on_cpu_since = now;
        self.threads[i].charged_until = now;
        self.threads[i].stats.switches += 1;

        let mut overhead = self.machine.ctx_switch.nanos() as f64;
        if self.threads[i].pending_migration {
            self.threads[i].pending_migration = false;
            self.threads[i].stats.migrations += 1;
            let mut cost = self.machine.migration_cost.nanos() as f64;
            let mut cross_numa = false;
            // Crossing a NUMA domain costs a remote cache refill.
            if let Some(prev) = self.threads[i].last_cpu {
                if !self.machine.same_domain(prev, CpuId(ci as u32)) {
                    cost *= noiselab_machine::machine::NUMA_MIGRATION_FACTOR;
                    self.threads[i].stats.numa_migrations += 1;
                    cross_numa = true;
                }
            }
            self.flush_obs_events();
            if let Some(obs) = self.observer.as_mut() {
                obs.sched(&SchedRecord::Migrate {
                    thread: tid.0,
                    to_cpu: ci as u32,
                    time: now,
                    cross_numa,
                });
            }
            overhead += cost;
        }
        self.threads[i].pending_overhead_ns += overhead;
        self.threads[i].last_cpu = Some(CpuId(ci as u32));

        self.flush_obs_events();
        if let Some(obs) = self.observer.as_mut() {
            let runq_depth = (self.cpus[ci].rt.len() + self.cpus[ci].cfs.len()) as u32;
            obs.sched(&SchedRecord::SwitchIn {
                cpu: ci as u32,
                thread: tid.0,
                name: &self.threads[i].name,
                kind: self.threads[i].kind,
                time: now,
                runq_depth,
            });
        }
        self.prof_exit(Phase::Scheduler);

        if self.computes[i].is_some() {
            let pending = std::mem::take(&mut self.threads[i].pending_overhead_ns);
            let c = self.computes[i].as_mut().unwrap();
            c.overhead_ns += pending;
            c.last_update = now;
            self.recompute_rates_for(ci);
        } else {
            self.step_behavior(tid);
        }
    }

    /// Idle balancing: pull a waiting thread from the busiest CPU that
    /// has queued work this CPU is allowed to run.
    fn try_steal(&mut self, ci: usize) -> Option<ThreadId> {
        if !self.config.idle_balance {
            return None;
        }
        let this_cpu = CpuId(ci as u32);
        let mut best: Option<(usize, ThreadId, bool)> = None; // (score, tid, is_rt)
        for v in 0..self.cpus.len() {
            if v == ci {
                continue;
            }
            let mut queued = self.cpus[v].rt.len() + self.cpus[v].cfs.len();
            if queued == 0 {
                continue;
            }
            // NUMA-reluctant balancing: a remote domain only looks
            // attractive when clearly overloaded (Linux's imbalance
            // thresholds between sched domains).
            if !self.machine.same_domain(this_cpu, CpuId(v as u32)) {
                if queued < 2 {
                    continue;
                }
                queued -= 1;
            }
            if let Some((cur_q, _, _)) = best {
                if queued <= cur_q {
                    continue;
                }
            }
            // RT first (RT pull), then the CFS tail task.
            let mut candidate: Option<(ThreadId, bool)> = None;
            for (_, t) in self.cpus[v].rt.iter() {
                if self.threads[t.index()].affinity.contains(this_cpu) {
                    candidate = Some((t, true));
                    break;
                }
            }
            if candidate.is_none() {
                for (_, t) in self.cpus[v].cfs.iter().rev() {
                    if self.threads[t.index()].affinity.contains(this_cpu) {
                        candidate = Some((t, false));
                        break;
                    }
                }
            }
            if let Some((t, rt)) = candidate {
                best = Some((queued, t, rt));
            }
        }
        let Some((_, tid, rt)) = best else {
            self.note_decision(ci, DecisionPoint::StealNone);
            return None;
        };
        self.note_decision(
            ci,
            if rt {
                DecisionPoint::StealRt
            } else {
                DecisionPoint::StealFair
            },
        );
        let victim = self.threads[tid.index()]
            .cpu
            .expect("queued thread without cpu")
            .index();
        self.dequeue_ready(victim, tid);
        self.threads[tid.index()].pending_migration = true;
        self.threads[tid.index()].cpu = Some(this_cpu);
        Some(tid)
    }

    // ------------------------------------------------------------------
    // Behavior stepping
    // ------------------------------------------------------------------

    /// Ask `tid`'s behavior for actions until one blocks (or the thread
    /// is descheduled by a side effect of an instant action).
    fn step_behavior(&mut self, tid: ThreadId) {
        self.step_depth += 1;
        assert!(self.step_depth < 256, "behavior recursion too deep");
        let mut instants = 0u32;
        loop {
            let i = tid.index();
            if self.threads[i].state != ThreadState::Running || self.computes[i].is_some() {
                break;
            }
            let mut b = self.behaviors[i]
                .take()
                .unwrap_or_else(|| panic!("thread {} has no behavior", self.threads[i].name));
            let action = {
                let mut ctx = Ctx {
                    now: self.now(),
                    tid,
                    cpu: self.threads[i].cpu,
                    rng: &mut self.rng,
                };
                b.next(&mut ctx)
            };
            // The behavior slot may be consumed by Exit below.
            self.behaviors[i] = Some(b);
            instants += 1;
            assert!(
                instants <= self.config.max_instant_actions,
                "thread {} looped on instant actions",
                self.threads[i].name
            );
            if self.apply_action(tid, action) {
                break;
            }
        }
        self.step_depth -= 1;
    }

    /// Apply one action. Returns `true` if the action blocks (stop
    /// stepping), `false` if it completed instantly.
    fn apply_action(&mut self, tid: ThreadId, action: Action) -> bool {
        let now = self.now();
        let i = tid.index();
        match action {
            Action::Compute(w) => {
                let solo = self.machine.perf.solo(&w);
                self.install_compute(tid, solo, solo.solo_ns, false);
                true
            }
            Action::Burn(d) => {
                let ns = d.nanos() as f64;
                let solo = SoloProfile {
                    solo_ns: ns,
                    cpu_ns: ns,
                    bw_demand: 0.0,
                };
                self.install_compute(tid, solo, ns, false);
                true
            }
            Action::BurnWall(d) => {
                // Occupancy is modelled as pure overhead: it burns at
                // rate 1 whenever the thread is on-CPU, independent of
                // SMT contention.
                let solo = SoloProfile {
                    solo_ns: 1.0,
                    cpu_ns: 0.0,
                    bw_demand: 0.0,
                };
                self.threads[i].pending_overhead_ns += d.nanos() as f64;
                self.install_compute(tid, solo, 0.0, false);
                true
            }
            Action::SleepUntil(t) => {
                if t <= now {
                    return false;
                }
                let cpu = self.threads[i].cpu.unwrap().index();
                self.off_cpu(tid, ThreadState::Sleeping);
                self.clear_compute(i);
                let token = self.queue.schedule(t, KEvent::WakeTimer(tid));
                self.threads[i].timer_token = token;
                self.recompute_rates_for(cpu);
                self.dispatch(cpu);
                true
            }
            Action::SleepFor(d) => self.apply_action(tid, Action::SleepUntil(now + d)),
            Action::Barrier { id, spin } => self.barrier_arrive(tid, id, spin),
            Action::WaitOn { wq, spin } => {
                self.waitqs[wq.0 as usize].waiters.push_back(tid);
                self.start_waiting(tid, BlockReason::Wait(wq), spin);
                true
            }
            Action::Notify { wq, count } => {
                for _ in 0..count {
                    let Some(w) = self.waitqs[wq.0 as usize].waiters.pop_front() else {
                        break;
                    };
                    self.resume_waiter(w);
                }
                false
            }
            Action::Wake(other) => {
                match self.threads[other.index()].state {
                    ThreadState::Sleeping => {
                        self.queue.cancel(self.threads[other.index()].timer_token);
                        self.threads[other.index()].timer_token = EventToken::NONE;
                        self.wake_thread(other);
                    }
                    ThreadState::Blocked => {
                        // Remove from any wait queue it may be in.
                        if let BlockReason::Wait(wq) = self.threads[other.index()].block_reason {
                            self.waitqs[wq.0 as usize].waiters.retain(|&t| t != other);
                        }
                        self.wake_thread(other);
                    }
                    _ => {}
                }
                false
            }
            Action::SetPolicy(p) => {
                self.threads[i].policy = p;
                self.flush_obs_events();
                if let Some(obs) = self.observer.as_mut() {
                    obs.sched(&SchedRecord::PolicySwitch {
                        thread: tid.0,
                        time: now,
                        rt: p.is_rt(),
                    });
                }
                // A demotion may make a queued task preferable.
                if let Some(cpu) = self.threads[i].cpu {
                    self.resched_if_needed(cpu.index());
                }
                false
            }
            Action::SetAffinity(mask) => {
                assert!(!mask.intersection(self.machine.all_cpus()).is_empty());
                self.threads[i].affinity = mask;
                if let Some(cpu) = self.threads[i].cpu {
                    if !mask.contains(cpu) && self.threads[i].state == ThreadState::Running {
                        // Forced migration off this CPU.
                        let ci = cpu.index();
                        self.off_cpu(tid, ThreadState::Ready);
                        let (target, placement) = self.select_rq(tid);
                        self.note_decision(target.index(), placement);
                        self.threads[i].pending_migration = true;
                        self.threads[i].cpu = Some(target);
                        self.enqueue(target.index(), tid);
                        self.recompute_rates_for(ci);
                        self.dispatch(ci);
                        self.check_preempt(target.index(), tid);
                    }
                }
                false
            }
            Action::Yield => {
                let cpu = self.threads[i].cpu.unwrap().index();
                let has_other = !self.cpus[cpu].rt.is_empty() || !self.cpus[cpu].cfs.is_empty();
                if !has_other {
                    return false; // nothing to yield to
                }
                self.off_cpu(tid, ThreadState::Ready);
                self.threads[i].stats.switches += 1;
                self.enqueue(cpu, tid);
                self.recompute_rates_for(cpu);
                self.dispatch(cpu);
                true
            }
            Action::Exit => {
                let cpu = self.threads[i].cpu.unwrap().index();
                self.off_cpu(tid, ThreadState::Exited);
                self.clear_compute(i);
                self.threads[i].exit_time = Some(now);
                self.queue.cancel(self.threads[i].timer_token);
                self.queue.cancel(self.threads[i].spin_token);
                self.behaviors[i] = None;
                self.recompute_rates_for(cpu);
                self.dispatch(cpu);
                true
            }
        }
    }

    /// Re-evaluate whether the current thread on `ci` should yield to a
    /// queued one (after a policy change).
    fn resched_if_needed(&mut self, ci: usize) {
        let Some(cur) = self.cpus[ci].current else {
            return;
        };
        let cur_t = &self.threads[cur.index()];
        let preferred = if let Some((p, _)) = self.cpus[ci].rt.peek() {
            match cur_t.policy {
                Policy::Fifo { prio } => p > prio,
                Policy::Other { .. } => true,
            }
        } else {
            false
        };
        if preferred {
            self.preempt_current(ci);
            self.dispatch(ci);
        }
    }

    fn install_compute(&mut self, tid: ThreadId, solo: SoloProfile, remaining: f64, spin: bool) {
        let now = self.now();
        let i = tid.index();
        debug_assert_eq!(self.threads[i].state, ThreadState::Running);
        let overhead = std::mem::take(&mut self.threads[i].pending_overhead_ns);
        let had_bw = self.thread_demands_bw(i);
        self.computes[i] = Some(ActiveCompute {
            solo,
            remaining,
            rate: 0.0,
            last_update: now,
            overhead_ns: overhead,
        });
        match (had_bw, solo.bw_demand > 0.0) {
            (false, true) => self.bw_running += 1,
            (true, false) => self.bw_running -= 1,
            _ => {}
        }
        self.threads[i].spinning = spin;
        let cpu = self.threads[i]
            .cpu
            .expect("running thread without cpu")
            .index();
        self.running.insert(cpu, i);
        self.recompute_rates_for(cpu);
    }

    // ------------------------------------------------------------------
    // Barriers and wait queues
    // ------------------------------------------------------------------

    /// Returns `true` if the action blocks.
    fn barrier_arrive(&mut self, tid: ThreadId, id: BarrierId, spin: SimDuration) -> bool {
        let b = &mut self.barriers[id.0 as usize];
        if b.waiting.len() + 1 == b.parties {
            // Last arrival: release everyone; this thread passes through.
            let waiters = std::mem::take(&mut b.waiting);
            for w in waiters {
                self.resume_waiter(w);
            }
            false
        } else {
            b.waiting.push(tid);
            self.start_waiting(tid, BlockReason::Barrier(id), spin);
            true
        }
    }

    /// Begin waiting: spin on-CPU for `spin`, then block.
    fn start_waiting(&mut self, tid: ThreadId, reason: BlockReason, spin: SimDuration) {
        let now = self.now();
        let i = tid.index();
        self.threads[i].block_reason = reason;
        if spin > SimDuration::ZERO {
            // Busy-wait: occupies the CPU (and its SMT capacity).
            let solo = SoloProfile {
                solo_ns: f64::INFINITY,
                cpu_ns: 1.0,
                bw_demand: 0.0,
            };
            self.install_compute(tid, solo, f64::INFINITY, true);
            let token = self.queue.schedule(now + spin, KEvent::SpinExpire(tid));
            self.threads[i].spin_token = token;
        } else {
            let cpu = self.threads[i].cpu.unwrap().index();
            self.off_cpu(tid, ThreadState::Blocked);
            self.clear_compute(i);
            self.recompute_rates_for(cpu);
            self.dispatch(cpu);
        }
    }

    /// A barrier released or a notify arrived for `w`.
    fn resume_waiter(&mut self, w: ThreadId) {
        let now = self.now();
        let i = w.index();
        self.queue.cancel(self.threads[i].spin_token);
        self.threads[i].spin_token = EventToken::NONE;
        self.threads[i].block_reason = BlockReason::None;
        match self.threads[i].state {
            ThreadState::Running => {
                // Spinning: proceeds immediately on its CPU.
                debug_assert!(self.threads[i].spinning);
                self.threads[i].spinning = false;
                self.charge_runtime(w);
                self.clear_compute(i);
                let cpu = self.threads[i]
                    .cpu
                    .expect("running thread without cpu")
                    .index();
                self.recompute_rates_for(cpu);
                self.step_behavior(w);
            }
            ThreadState::Ready => {
                // Preempted spinner: clear the spin; it proceeds when
                // dispatched.
                self.threads[i].spinning = false;
                self.clear_compute(i);
            }
            ThreadState::Blocked => {
                // Blocked: wake-up latency applies.
                let token = self
                    .queue
                    .schedule(now + self.machine.wake_latency, KEvent::WakeTimer(w));
                self.threads[i].timer_token = token;
            }
            _ => {}
        }
    }

    // ------------------------------------------------------------------
    // Accounting and rates
    // ------------------------------------------------------------------

    /// Charge on-CPU time since `charged_until` to vruntime and stats.
    fn charge_runtime(&mut self, tid: ThreadId) {
        let now = self.now();
        let i = tid.index();
        if self.threads[i].state != ThreadState::Running {
            return;
        }
        let from = self.threads[i]
            .charged_until
            .max(self.threads[i].on_cpu_since);
        let delta = now.since(from);
        if delta > SimDuration::ZERO {
            self.threads[i].charge_vruntime(delta);
            self.threads[i].stats.cpu_ns += delta.nanos();
            if let Some(cpu) = self.threads[i].cpu {
                self.cpus[cpu.index()].busy_ns += delta.nanos();
                // DVFS cycle/heat accounting shares the single charge
                // site, so every frequency-change point (which charges
                // first) sees exact totals at the old frequency.
                if let Some(d) = self.dvfs.as_mut() {
                    d.charge(cpu.index(), delta.nanos(), now);
                }
                if !self.threads[i].policy.is_rt() {
                    let v = self.threads[i].vruntime;
                    self.cpus[cpu.index()].cfs.refresh_floor(Some(v));
                }
            }
        }
        self.threads[i].charged_until = now;
    }

    /// SMT/IRQ/frequency throughput factor for the compute running on
    /// `ci`. Frequency multiplies in here (and nowhere else), so both
    /// the rate and the water-fill demand paths see it consistently; a
    /// disabled DVFS axis contributes exactly nothing.
    fn compute_factor(&self, ci: usize, now: SimTime) -> f64 {
        let mut factor = 1.0;
        if let Some(sib) = self.machine.sibling_of(CpuId(ci as u32)) {
            if let Some(sib_cur) = self.cpus[sib.index()].current {
                if self.computes[sib_cur.index()].is_some() && !self.cpus[sib.index()].in_irq(now) {
                    factor = self.machine.perf.smt_factor;
                }
            }
        }
        if let Some(d) = self.dvfs.as_ref() {
            factor *= d.factor(ci);
        }
        if self.cpus[ci].in_irq(now) {
            factor = 0.0;
        }
        factor
    }

    // ------------------------------------------------------------------
    // DVFS
    // ------------------------------------------------------------------

    /// Governor/thermal evaluation for a busy CPU (dispatch pick, busy
    /// tick). A single `None` check when the axis is disabled.
    fn dvfs_eval(&mut self, ci: usize) {
        if self.dvfs.is_none() {
            return;
        }
        let now = self.now();
        let depth = (self.cpus[ci].rt.len() + self.cpus[ci].cfs.len()) as u32;
        // A throttle exit needs the window start before `eval` closes it.
        let d = self.dvfs.as_ref().unwrap();
        let window_start = d.is_throttled(ci).then(|| d.throttle_since(ci));
        let out = self.dvfs.as_mut().unwrap().eval(ci, now, depth);
        if let Some((heat_milli, entered)) = out.throttle {
            self.note_decision(
                ci,
                if entered {
                    DecisionPoint::ThrottleEnter
                } else {
                    DecisionPoint::ThrottleExit
                },
            );
            self.flush_obs_events();
            if let Some(obs) = self.observer.as_mut() {
                obs.sched(&SchedRecord::Throttle {
                    cpu: ci as u32,
                    time: now,
                    heat_milli,
                    entered,
                });
            }
            // A closed throttle window is an interference interval like
            // any other: report it to the osnoise tracer so the advisor
            // can blame "dvfs:throttle" per (source, CPU).
            if !entered {
                if let Some(start) = window_start {
                    if self.tracer.is_some() {
                        self.prof_enter(Phase::Tracer);
                        self.pending_trace_ns[ci] += self.config.trace_event_overhead.nanos();
                    }
                    if let Some(tr) = self.tracer.as_mut() {
                        tr.record(
                            CpuId(ci as u32),
                            NoiseClass::Thread,
                            "dvfs:throttle",
                            None,
                            start,
                            SimDuration(now.nanos() - start.nanos()),
                        );
                        self.prof_exit(Phase::Tracer);
                    }
                }
            }
        }
        if let Some((from_khz, to_khz, why)) = out.transition {
            self.note_decision(ci, why);
            self.flush_obs_events();
            if let Some(obs) = self.observer.as_mut() {
                obs.sched(&SchedRecord::FreqTransition {
                    cpu: ci as u32,
                    time: now,
                    from_khz,
                    to_khz,
                });
            }
        }
    }

    /// Idle-entry frequency drop (dispatch found nothing runnable).
    /// Redundant calls — an idle CPU's tick-driven dispatch attempts —
    /// are no-ops that touch no DVFS state, preserving eager/tickless
    /// equivalence.
    fn dvfs_idle(&mut self, ci: usize) {
        let now = self.now();
        let Some((from_khz, to_khz)) = self.dvfs.as_mut().and_then(|d| d.idle(ci, now)) else {
            return;
        };
        self.note_decision(ci, DecisionPoint::FreqIdle);
        self.flush_obs_events();
        if let Some(obs) = self.observer.as_mut() {
            obs.sched(&SchedRecord::FreqTransition {
                cpu: ci as u32,
                time: now,
                from_khz,
                to_khz,
            });
        }
    }

    /// End-of-run DVFS summary (cycle totals, transition and throttle
    /// counts), when the axis is enabled.
    pub fn dvfs_summary(&self) -> Option<crate::dvfs::DvfsSummary> {
        self.dvfs.as_ref().map(|d| d.summary(self.now()))
    }

    /// Current frequency of a CPU in kHz, when DVFS is enabled.
    pub fn cpu_khz(&self, cpu: CpuId) -> Option<u32> {
        self.dvfs.as_ref().map(|d| d.khz(cpu.index()))
    }

    /// Set `tid`'s rate and (re)schedule its completion. When the rate is
    /// unchanged and the completion event is still armed, the previously
    /// scheduled event time remains exact, so skip the heap churn — the
    /// dominant cost in steady state.
    fn apply_rate(&mut self, ti: usize, factor: f64, rate: f64, now: SimTime) {
        let c = self.computes[ti].as_mut().unwrap();
        let unchanged = (c.rate - rate).abs() <= 1e-12 * rate.max(1.0);
        c.rate = rate;
        if unchanged && self.threads[ti].compute_token != EventToken::NONE {
            return;
        }
        let c = self.computes[ti].as_ref().unwrap();
        let eta = if factor == 0.0 { None } else { c.eta_ns() };
        let tid = ThreadId(ti as u32);
        self.queue.cancel(self.threads[ti].compute_token);
        self.threads[ti].compute_token = match eta {
            Some(ns) => self
                .queue
                .schedule(now + SimDuration(ns.max(1)), KEvent::ComputeDone(tid)),
            None => EventToken::NONE,
        };
    }

    /// Does thread `i` hold a compute that demands memory bandwidth?
    #[inline]
    fn thread_demands_bw(&self, i: usize) -> bool {
        self.computes[i]
            .as_ref()
            .is_some_and(|c| c.solo.bw_demand > 0.0)
    }

    /// Clear thread `i`'s compute, keeping [`Self::bw_running`] and the
    /// running set in sync when the thread is some CPU's current
    /// occupant (paths that go through `off_cpu` first have already
    /// updated both there).
    fn clear_compute(&mut self, i: usize) {
        let was_bw = self.thread_demands_bw(i);
        let had = self.computes[i].take().is_some();
        if had {
            if let Some(c) = self.threads[i].cpu {
                if self.cpus[c.index()].current == Some(ThreadId(i as u32)) {
                    self.running.remove(c.index());
                    if was_bw {
                        self.bw_running -= 1;
                    }
                }
            }
        }
    }

    /// Does any running compute demand memory bandwidth? When none does,
    /// the water-fill couples nothing and rate changes stay local to a
    /// CPU and its SMT sibling. O(1) via the maintained counter; debug
    /// builds cross-check it against the definitional scan.
    fn bw_demand_active(&self) -> bool {
        debug_assert_eq!(
            self.bw_running > 0,
            self.cpus
                .iter()
                .any(|c| { c.current.is_some_and(|t| self.thread_demands_bw(t.index())) }),
            "bw_running counter drifted from the running set"
        );
        self.bw_running > 0
    }

    /// Recompute rates after a change confined to CPU `ci` (its current
    /// thread, compute, or IRQ window changed). When no running compute
    /// demands bandwidth, only `ci` and its SMT sibling can be affected,
    /// so the global pass — with its all-CPU scan and water-fill — is
    /// skipped. Falls back to [`Self::recompute_rates`] otherwise; both
    /// paths produce bit-identical rates.
    fn recompute_rates_for(&mut self, ci: usize) {
        if self.bw_demand_active() {
            // Bandwidth couples rates through the waterfill; but while
            // the fill is unsaturated every allocation is a bit-exact
            // copy of its demand, so the update stays local to `ci` and
            // its sibling (see recompute_rates_local). Outside that
            // regime — or before a full pass has primed the demand
            // cache — fall back to the global pass.
            if self.scratch.cache_valid && self.scratch.cache_unsaturated {
                self.recompute_rates_local(ci);
            } else {
                self.recompute_rates();
            }
            return;
        }
        // No demand cached below, so the next bandwidth-active
        // recompute must start with a full pass.
        self.scratch.cache_valid = false;
        let now = self.now();
        let sib = self.machine.sibling_of(CpuId(ci as u32)).map(|c| c.index());
        for cpu in [Some(ci), sib].into_iter().flatten() {
            let Some(tid) = self.cpus[cpu].current else {
                continue;
            };
            let ti = tid.index();
            if self.computes[ti].is_none() {
                continue;
            }
            self.computes[ti].as_mut().unwrap().advance_to(now);
            let factor = self.compute_factor(cpu, now);
            let rate = {
                let c = self.computes[ti].as_ref().unwrap();
                // No bandwidth demand anywhere, so the allocation is 0.
                self.machine.perf.rate(&c.solo, factor, 0.0)
            };
            self.apply_rate(ti, factor, rate, now);
        }
    }

    /// Waterfill demand of the compute currently on `cpu`, exactly as
    /// [`Self::recompute_rates`] would feed it to the fill: zero unless
    /// the compute can run (`factor > 0`) and wants bandwidth.
    fn waterfill_demand(&self, cpu: usize, now: SimTime) -> f64 {
        let Some(tid) = self.cpus[cpu].current else {
            return 0.0;
        };
        let Some(c) = self.computes[tid.index()].as_ref() else {
            return 0.0;
        };
        let factor = self.compute_factor(cpu, now);
        if factor > 0.0 && c.solo.bw_demand > 0.0 {
            let r_up = if c.solo.cpu_ns > 0.0 {
                (factor * c.solo.solo_ns / c.solo.cpu_ns).min(1.0)
            } else {
                1.0
            };
            c.solo.bw_demand * r_up
        } else {
            0.0
        }
    }

    /// Bandwidth-active local fast path for a change confined to CPU
    /// `ci`. Valid only while the waterfill is unsaturated before *and*
    /// after the change: then `alloc[k] == demands[k]` bit-for-bit
    /// (see `waterfill_into`), and since an unaffected CPU's factor
    /// inputs are unchanged between recomputes (any event that changes
    /// them recomputes that CPU), its demand, allocation and rate are
    /// bit-identical to what the full pass would produce — so only `ci`
    /// and its SMT sibling need their rate re-applied. Progress is
    /// still advanced on *every* running compute, in the same order as
    /// the full pass: interval splitting is not associative in f64, so
    /// skipping an advance would change rounding downstream.
    fn recompute_rates_local(&mut self, ci: usize) {
        let now = self.now();
        {
            let (running, computes) = (&self.running, &mut self.computes);
            running.for_each(|_, ti| computes[ti].as_mut().unwrap().advance_to(now));
        }
        let sib = self.machine.sibling_of(CpuId(ci as u32)).map(|c| c.index());
        for cpu in [Some(ci), sib].into_iter().flatten() {
            self.scratch.demand_by_cpu[cpu] = self.waterfill_demand(cpu, now);
        }
        // Saturation check with the same value sequence the full pass
        // would sum (running-set order is CPU-index order there too).
        let mut total = 0.0;
        {
            let (running, demand) = (&self.running, &self.scratch.demand_by_cpu);
            running.for_each(|cpu, _| total += demand[cpu]);
        }
        // Negated so a NaN total falls into the conservative branch.
        let unsaturated = total <= self.machine.perf.socket_bw;
        if !unsaturated {
            // Transitioned into saturation: allocations now couple
            // globally. The duplicate advances above are exact no-ops.
            self.recompute_rates();
            return;
        }
        for cpu in [Some(ci), sib].into_iter().flatten() {
            let Some(tid) = self.cpus[cpu].current else {
                continue;
            };
            let ti = tid.index();
            if self.computes[ti].is_none() {
                continue;
            }
            let factor = self.compute_factor(cpu, now);
            let alloc = self.scratch.demand_by_cpu[cpu];
            let rate = {
                let c = self.computes[ti].as_ref().unwrap();
                self.machine.perf.rate(&c.solo, factor, alloc)
            };
            self.apply_rate(ti, factor, rate, now);
        }
    }

    /// Recompute execution rates for every running compute and reschedule
    /// completion events. Called whenever the set of running threads, the
    /// IRQ state, or SMT occupancy changes in a way that is not confined
    /// to one CPU (see [`Self::recompute_rates_for`]).
    fn recompute_rates(&mut self) {
        let now = self.now();
        // Collect running (tid, cpu) pairs with active computes into the
        // reusable scratch (CPU-index order), driven by the incrementally
        // maintained running-set mask rather than a scan of every CPU.
        {
            let (running, scratch) = (&self.running, &mut self.scratch);
            scratch.running.clear();
            running.for_each(|ci, ti| scratch.running.push((ti, ci)));
        }
        #[cfg(debug_assertions)]
        {
            let mut scan = Vec::new();
            for (ci, cpu) in self.cpus.iter().enumerate() {
                if let Some(tid) = cpu.current {
                    if self.computes[tid.index()].is_some() {
                        scan.push((tid.index(), ci));
                    }
                }
            }
            debug_assert_eq!(
                self.scratch.running, scan,
                "running-set mask drifted from the definitional scan"
            );
        }
        let n = self.scratch.running.len();
        // First pass: advance progress at old rates.
        for k in 0..n {
            let (ti, _) = self.scratch.running[k];
            self.computes[ti].as_mut().unwrap().advance_to(now);
        }
        // Compute factors (SMT) and bandwidth demands.
        self.scratch.factors.clear();
        self.scratch.factors.resize(n, 0.0);
        self.scratch.demands.clear();
        self.scratch.demands.resize(n, 0.0);
        let mut any_demand = false;
        for k in 0..n {
            let (ti, ci) = self.scratch.running[k];
            let factor = self.compute_factor(ci, now);
            self.scratch.factors[k] = factor;
            let c = self.computes[ti].as_ref().unwrap();
            if factor > 0.0 && c.solo.bw_demand > 0.0 {
                // Upper-bound rate if bandwidth were free.
                let r_up = if c.solo.cpu_ns > 0.0 {
                    (factor * c.solo.solo_ns / c.solo.cpu_ns).min(1.0)
                } else {
                    1.0
                };
                self.scratch.demands[k] = c.solo.bw_demand * r_up;
                any_demand = true;
            }
        }
        // Water-fill only when some compute actually wants bandwidth;
        // with all-zero demands every allocation is zero anyway.
        let unsaturated = if any_demand {
            waterfill_into(
                &self.scratch.demands,
                self.machine.perf.socket_bw,
                &mut self.scratch.allocs,
                &mut self.scratch.order,
            )
        } else {
            self.scratch.allocs.clear();
            self.scratch.allocs.resize(n, 0.0);
            true
        };
        // Prime the per-CPU demand cache for the local fast path.
        let n_cpus = self.cpus.len();
        self.scratch.demand_by_cpu.clear();
        self.scratch.demand_by_cpu.resize(n_cpus, 0.0);
        for k in 0..n {
            let (_, ci) = self.scratch.running[k];
            self.scratch.demand_by_cpu[ci] = self.scratch.demands[k];
        }
        self.scratch.cache_unsaturated = unsaturated;
        self.scratch.cache_valid = true;
        // Second pass: set new rates and (re)schedule completions.
        for k in 0..n {
            let (ti, _) = self.scratch.running[k];
            let factor = self.scratch.factors[k];
            let alloc = self.scratch.allocs[k];
            let rate = {
                let c = self.computes[ti].as_ref().unwrap();
                self.machine.perf.rate(&c.solo, factor, alloc)
            };
            self.apply_rate(ti, factor, rate, now);
        }
    }
}
