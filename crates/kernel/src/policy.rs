//! Scheduling policies and classes.
//!
//! The simulated kernel implements the two Linux scheduling classes the
//! paper's injector relies on:
//!
//! * `SCHED_OTHER` — the default fair class (CFS-like, vruntime ordered,
//!   nice weights). Workload threads and `thread_noise` replay events run
//!   here.
//! * `SCHED_FIFO` — real-time, strictly preempts every `SCHED_OTHER` task
//!   and never time-slices among equal priorities. `irq_noise` and
//!   `softirq_noise` replay events run here, and (as in the paper) the RT
//!   throttling fail-safe is disabled so FIFO noise can occupy 100 % of a
//!   CPU.

use serde::{Deserialize, Serialize};

/// Scheduling policy of a thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Policy {
    /// `SCHED_OTHER` with a nice value in `-20..=19` (lower = heavier).
    Other { nice: i8 },
    /// `SCHED_FIFO` with a real-time priority in `1..=99` (higher wins).
    Fifo { prio: u8 },
}

impl Policy {
    /// Default-niceness fair policy.
    pub const NORMAL: Policy = Policy::Other { nice: 0 };

    #[inline]
    pub fn is_rt(self) -> bool {
        matches!(self, Policy::Fifo { .. })
    }

    /// CFS load weight. Mirrors Linux's `sched_prio_to_weight` shape:
    /// weight(nice) = 1024 * 1.25^(-nice), so each nice step is ~10 % of
    /// CPU when competing with a nice-0 task.
    pub fn weight(self) -> u64 {
        match self {
            Policy::Other { nice } => {
                let w = 1024.0 * 1.25_f64.powi(-(nice as i32));
                w.round().max(1.0) as u64
            }
            // RT tasks do not participate in CFS accounting.
            Policy::Fifo { .. } => 1024,
        }
    }

    /// RT priority for queue ordering (0 for fair tasks).
    #[inline]
    pub fn rt_prio(self) -> u8 {
        match self {
            Policy::Fifo { prio } => prio,
            Policy::Other { .. } => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_monotone_in_nice() {
        let w_m5 = Policy::Other { nice: -5 }.weight();
        let w_0 = Policy::Other { nice: 0 }.weight();
        let w_5 = Policy::Other { nice: 5 }.weight();
        assert!(w_m5 > w_0 && w_0 > w_5);
        assert_eq!(w_0, 1024);
    }

    #[test]
    fn nice_step_ratio_about_1_25() {
        let a = Policy::Other { nice: 0 }.weight() as f64;
        let b = Policy::Other { nice: 1 }.weight() as f64;
        assert!((a / b - 1.25).abs() < 0.01);
    }

    #[test]
    fn rt_classification() {
        assert!(Policy::Fifo { prio: 50 }.is_rt());
        assert!(!Policy::NORMAL.is_rt());
        assert_eq!(Policy::Fifo { prio: 50 }.rt_prio(), 50);
        assert_eq!(Policy::NORMAL.rt_prio(), 0);
    }
}
