//! Deterministic simulator-level fault injection.
//!
//! A [`FaultPlan`] describes misbehaviour to impose on a run: timer
//! interrupts that are lost or fire late, spurious device interrupts, a
//! CPU that stalls for a bounded window, and a workload thread that
//! aborts mid-region. All faults are driven by a dedicated RNG stream
//! seeded independently of the kernel's noise RNG, so installing a plan
//! with all probabilities at zero leaves a run bit-identical to one with
//! no plan at all — the property the resilience suite asserts.
//!
//! Faults flow through the same event-engine paths as ordinary events:
//! spurious IRQs and CPU stalls reuse [`crate::Kernel::inject_irq`],
//! lost/late ticks hook the tick service and arming paths, and aborts
//! are scheduled events that tear a thread down through the normal
//! descheduling machinery. The thread-abort *decision* (victim and
//! instant) is made by the harness, which knows which threads form the
//! workload team; the kernel only executes it via
//! [`crate::Kernel::schedule_abort`].

use noiselab_sim::{Rng, SimDuration};
use serde::{Deserialize, Serialize};

/// Spurious device interrupts: a Poisson arrival process over a time
/// window, landing on uniformly random CPUs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpuriousIrqSpec {
    /// Mean arrival rate (interrupts per simulated second).
    pub rate_per_sec: f64,
    /// Mean service time per interrupt (exponentially distributed).
    pub service_mean: SimDuration,
    /// Arrivals are generated over `[0, window)`.
    pub window: SimDuration,
}

/// A single CPU stalling for a bounded window (e.g. a firmware SMI or a
/// hung driver): modelled as one long interrupt-service window on a
/// uniformly chosen CPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuStallSpec {
    /// The stall begins uniformly within `[start.0, start.1)`.
    pub start: (SimDuration, SimDuration),
    /// Stall length, uniform within `[duration.0, duration.1)`.
    pub duration: (SimDuration, SimDuration),
}

/// A workload thread aborting mid-region. Interpreted by the harness
/// (which knows the team membership); with probability `prob` one
/// uniformly chosen worker is torn down at a uniform instant within
/// `window`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThreadAbortSpec {
    /// Per-run probability that some worker aborts.
    pub prob: f64,
    /// The abort instant is uniform within `[window.0, window.1)`.
    pub window: (SimDuration, SimDuration),
}

/// A deterministic, seeded fault schedule for one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Base seed of the fault RNG stream. The harness mixes the run seed
    /// in, so every run of a campaign sees an independent draw.
    #[serde(default)]
    pub seed: u64,
    /// Per-tick probability that the timer interrupt is lost (no IRQ
    /// service, no preemption check), as if the expiry never reached
    /// the CPU.
    #[serde(default)]
    pub lost_tick_prob: f64,
    /// Per-arming probability that a tick fires late, pushed off its
    /// grid slot by up to `late_tick_max`.
    #[serde(default)]
    pub late_tick_prob: f64,
    #[serde(default)]
    pub late_tick_max: SimDuration,
    #[serde(default)]
    pub spurious: Option<SpuriousIrqSpec>,
    #[serde(default)]
    pub stall: Option<CpuStallSpec>,
    #[serde(default)]
    pub abort: Option<ThreadAbortSpec>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            lost_tick_prob: 0.0,
            late_tick_prob: 0.0,
            late_tick_max: SimDuration::ZERO,
            spurious: None,
            stall: None,
            abort: None,
        }
    }
}

impl FaultPlan {
    /// A plan that only aborts a worker thread in roughly `prob` of the
    /// runs, within the first ~`window_ms` milliseconds — the crashy
    /// campaign of the resilience suite.
    pub fn crashy(seed: u64, prob: f64, window_ms: u64) -> FaultPlan {
        FaultPlan {
            seed,
            abort: Some(ThreadAbortSpec {
                prob,
                window: (SimDuration::ZERO, SimDuration(window_ms * 1_000_000)),
            }),
            ..FaultPlan::default()
        }
    }

    /// Check probabilities are valid; returns a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        let probs = [
            ("lost_tick_prob", self.lost_tick_prob),
            ("late_tick_prob", self.late_tick_prob),
            ("abort.prob", self.abort.as_ref().map_or(0.0, |a| a.prob)),
        ];
        for (name, p) in probs {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} = {p} is not a probability"));
            }
        }
        if self.late_tick_prob > 0.0 && self.late_tick_max == SimDuration::ZERO {
            return Err("late_tick_prob > 0 requires late_tick_max > 0".into());
        }
        if let Some(sp) = &self.spurious {
            if sp.rate_per_sec < 0.0 {
                return Err(format!("spurious.rate_per_sec = {}", sp.rate_per_sec));
            }
        }
        Ok(())
    }

    /// Whether the plan injects anything at all.
    pub fn is_noop(&self) -> bool {
        self.lost_tick_prob == 0.0
            && self.late_tick_prob == 0.0
            && self.spurious.is_none()
            && self.stall.is_none()
            && self.abort.is_none()
    }
}

/// Counters of faults actually delivered during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    pub lost_ticks: u64,
    pub late_ticks: u64,
    pub spurious_irqs: u64,
    pub stall_windows: u64,
    /// Threads torn down by [`crate::Kernel::schedule_abort`].
    pub aborted_threads: u64,
}

/// Live fault state inside a [`crate::Kernel`]. The RNG here is the
/// *fault stream*: it never touches the kernel's noise RNG, so the
/// no-fault event sequence is unchanged by merely installing a plan.
pub(crate) struct FaultState {
    pub(crate) rng: Rng,
    pub(crate) lost_tick_prob: f64,
    pub(crate) late_tick_prob: f64,
    pub(crate) late_tick_max_ns: u64,
    pub(crate) stats: FaultStats,
}

impl FaultState {
    pub(crate) fn new(plan: &FaultPlan, rng: Rng) -> FaultState {
        FaultState {
            rng,
            lost_tick_prob: plan.lost_tick_prob,
            late_tick_prob: plan.late_tick_prob,
            late_tick_max_ns: plan.late_tick_max.nanos(),
            stats: FaultStats::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_noop_and_valid() {
        let p = FaultPlan::default();
        assert!(p.is_noop());
        assert!(p.validate().is_ok());
    }

    #[test]
    fn crashy_plan_has_abort_only() {
        let p = FaultPlan::crashy(9, 0.05, 50);
        assert!(!p.is_noop());
        assert!(p.validate().is_ok());
        let a = p.abort.as_ref().unwrap();
        assert_eq!(a.prob, 0.05);
        assert_eq!(a.window.1, SimDuration(50_000_000));
        assert!(p.spurious.is_none() && p.stall.is_none());
    }

    #[test]
    fn validate_rejects_bad_probabilities() {
        let p = FaultPlan {
            lost_tick_prob: 1.5,
            ..FaultPlan::default()
        };
        assert!(p.validate().is_err());
        let p = FaultPlan {
            late_tick_prob: 0.1,
            ..FaultPlan::default()
        };
        assert!(p.validate().is_err(), "late prob without max must fail");
    }

    #[test]
    fn plan_json_roundtrip() {
        let p = FaultPlan {
            seed: 7,
            lost_tick_prob: 0.01,
            late_tick_prob: 0.02,
            late_tick_max: SimDuration(500_000),
            spurious: Some(SpuriousIrqSpec {
                rate_per_sec: 250.0,
                service_mean: SimDuration(20_000),
                window: SimDuration(100_000_000),
            }),
            stall: Some(CpuStallSpec {
                start: (SimDuration(1_000), SimDuration(2_000)),
                duration: (SimDuration(3_000), SimDuration(4_000)),
            }),
            abort: Some(ThreadAbortSpec {
                prob: 0.05,
                window: (SimDuration::ZERO, SimDuration(10_000_000)),
            }),
        };
        let s = serde_json::to_string(&p).unwrap();
        let back: FaultPlan = serde_json::from_str(&s).unwrap();
        assert_eq!(p, back);
    }
}
