//! Identifier newtypes for kernel objects.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a simulated thread (task) for its whole lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ThreadId(pub u32);

impl ThreadId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tid{}", self.0)
    }
}

/// Identifies a kernel barrier object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct BarrierId(pub u32);

/// Identifies a kernel wait queue (futex-like).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct WaitId(pub u32);
