//! # noiselab-kernel
//!
//! A deterministic simulated OS kernel. It provides exactly the
//! mechanisms the paper's noise-injection methodology exercises on real
//! Linux:
//!
//! * two scheduling classes — a CFS-like fair class (`SCHED_OTHER`, nice
//!   weights, vruntime preemption) and a FIFO real-time class
//!   (`SCHED_FIFO`, strict priority, no throttling);
//! * per-CPU runqueues with wake placement (idle-CPU preference — this is
//!   how housekeeping cores absorb unpinned noise), idle load balancing
//!   and migration costs;
//! * periodic timer interrupts with softirq follow-ons, the base layer of
//!   OS noise;
//! * SMT contention and max-min-fair memory-bandwidth sharing via the
//!   roofline model of `noiselab-machine`;
//! * barriers and wait queues with spin-then-block semantics, the
//!   building blocks of the OpenMP- and SYCL-style runtimes;
//! * trace hooks reporting every interference interval (IRQ, softirq,
//!   foreign thread) to an attached sink — the substrate for the
//!   `osnoise`-style tracer in `noiselab-noise`.
//!
//! Simulated programs are [`action::Behavior`] state machines; no host
//! threads are involved, so a run is a pure function of its seed.
//!
//! ```
//! use noiselab_kernel::{Action, Kernel, KernelConfig, ScriptBehavior, ThreadKind, ThreadSpec};
//! use noiselab_machine::{Machine, WorkUnit};
//! use noiselab_sim::SimTime;
//!
//! let mut kernel = Kernel::new(Machine::intel_9700kf(), KernelConfig::default(), 42);
//! let tid = kernel.spawn(
//!     ThreadSpec::new("worker", ThreadKind::Workload),
//!     Box::new(ScriptBehavior::new(vec![Action::Compute(WorkUnit::compute(3.0e7))])),
//! );
//! let end = kernel.run_until_exit(tid, SimTime::from_secs_f64(1.0)).unwrap();
//! // 30 Mflops at 30 flops/ns: about a millisecond, plus timer-IRQ noise.
//! assert!((0.0009..0.0012).contains(&end.as_secs_f64()));
//! ```

pub mod action;
pub mod config;
pub mod cpu;
pub mod dvfs;
pub mod fault;
pub mod ids;
pub mod kernel;
pub mod observe;
pub mod policy;
pub mod sanitize;
pub mod thread;
pub mod trace;
pub mod wire;

pub use action::{Action, Behavior, Ctx, FnBehavior, ScriptBehavior};
pub use config::KernelConfig;
pub use dvfs::{DvfsRuntime, DvfsSummary};
pub use fault::{CpuStallSpec, FaultPlan, FaultStats, SpuriousIrqSpec, ThreadAbortSpec};
pub use ids::{BarrierId, ThreadId, WaitId};
pub use kernel::{Kernel, KernelStorage, RunError, ThreadSpec};
pub use observe::{DecisionPoint, HostProfiler, KernelObserver, Phase, SchedRecord};
pub use policy::Policy;
pub use sanitize::{
    EventKind, EventRecord, EventSanitizer, HashCheckpoint, LoggedEvent, SanitizerConfig,
    SanitizerReport,
};
pub use thread::{ThreadKind, ThreadState};
pub use trace::{NoiseClass, RecordedEvent, TraceSink, VecSink};
pub use wire::{InternTable, WireRecord, WIRE_NO_THREAD, WIRE_RECORD_BYTES};
