//! Event-stream sanitizer: a running hash over every event the kernel
//! dispatches, with a configurable checkpoint cadence and an optional
//! per-event log window.
//!
//! Two runs of the same (platform, workload, config, seed) must produce
//! byte-for-byte the same event stream; the sanitizer turns that
//! contract into a single `u64` that the harness can record, the
//! campaign driver can checkpoint, and the dual-run bisector in
//! `noiselab-core` can compare checkpoint-by-checkpoint to localise the
//! first divergent event when the contract breaks.
//!
//! The hash is FNV-1a over a fixed-width digest of each event
//! (kind, cpu/thread, timestamp, payload extras): cheap enough to stay
//! on for every run, stable across hosts, and — critically — a pure
//! observer: attaching a sanitizer never changes the simulation
//! (unless the explicit [`SanitizerConfig::perturb_at`] chaos hook is
//! armed, which exists precisely to prove the divergence pipeline
//! works).

use noiselab_sim::SimTime;

/// FNV-1a offset basis / prime (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Fold `bytes` into an FNV-1a hash state.
#[inline]
pub fn fnv1a_extend(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Hash `bytes` from the standard offset basis.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_extend(FNV_OFFSET, bytes)
}

/// The kind of a dispatched kernel event, as seen by the sanitizer.
/// Mirrors the kernel's internal event enum without exposing payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    Start,
    WakeTimer,
    ComputeDone,
    SpinExpire,
    Tick,
    IrqDone,
    DeviceIrq,
    Abort,
}

impl EventKind {
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Start => "start",
            EventKind::WakeTimer => "wake-timer",
            EventKind::ComputeDone => "compute-done",
            EventKind::SpinExpire => "spin-expire",
            EventKind::Tick => "tick",
            EventKind::IrqDone => "irq-done",
            EventKind::DeviceIrq => "device-irq",
            EventKind::Abort => "abort",
        }
    }

    /// Stable wire/hash discriminant (also the `tag` byte of the
    /// batched-observer wire records).
    pub fn tag(self) -> u8 {
        match self {
            EventKind::Start => 1,
            EventKind::WakeTimer => 2,
            EventKind::ComputeDone => 3,
            EventKind::SpinExpire => 4,
            EventKind::Tick => 5,
            EventKind::IrqDone => 6,
            EventKind::DeviceIrq => 7,
            EventKind::Abort => 8,
        }
    }

    /// Inverse of [`EventKind::tag`].
    pub fn from_tag(tag: u8) -> Option<EventKind> {
        Some(match tag {
            1 => EventKind::Start,
            2 => EventKind::WakeTimer,
            3 => EventKind::ComputeDone,
            4 => EventKind::SpinExpire,
            5 => EventKind::Tick,
            6 => EventKind::IrqDone,
            7 => EventKind::DeviceIrq,
            8 => EventKind::Abort,
            _ => return None,
        })
    }
}

/// One dispatched event, flattened for hashing. Built by the kernel at
/// dispatch time; `source` is borrowed to keep the observer
/// allocation-free outside the log window.
#[derive(Debug, Clone, Copy)]
pub struct EventRecord<'a> {
    pub kind: EventKind,
    /// CPU index for CPU events (tick, IRQ), `None` for thread events.
    pub cpu: Option<u32>,
    /// Thread id for thread events, `None` for CPU events.
    pub thread: Option<u32>,
    /// Virtual dispatch time.
    pub time: SimTime,
    /// Service duration in ns for device IRQs, 0 otherwise.
    pub duration_ns: u64,
    /// Noise-source label for device IRQs.
    pub source: Option<&'a str>,
}

impl EventRecord<'_> {
    /// Fold this event into a running FNV state.
    fn fold(&self, mut h: u64) -> u64 {
        h = fnv1a_extend(h, &[self.kind.tag()]);
        h = fnv1a_extend(h, &self.cpu.unwrap_or(u32::MAX).to_le_bytes());
        h = fnv1a_extend(h, &self.thread.unwrap_or(u32::MAX).to_le_bytes());
        h = fnv1a_extend(h, &self.time.0.to_le_bytes());
        h = fnv1a_extend(h, &self.duration_ns.to_le_bytes());
        if let Some(s) = self.source {
            h = fnv1a_extend(h, s.as_bytes());
        }
        h
    }

    /// Human-readable event description for divergence reports.
    fn describe(&self) -> String {
        let mut s = self.kind.name().to_string();
        if let Some(src) = self.source {
            s.push_str(&format!("({src})"));
        }
        s
    }
}

/// Sanitizer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SanitizerConfig {
    /// Record a [`HashCheckpoint`] every `cadence` events; 0 disables
    /// checkpointing (running hash only — the always-on harness mode).
    pub cadence: u64,
    /// Log full per-event digests for event indices in `[start, end)`.
    /// Used by the bisector's localisation pass; expensive, off by
    /// default.
    pub window: Option<(u64, u64)>,
    /// Chaos hook: after observing the event with this index, make the
    /// kernel inject one synthetic device IRQ, deliberately forking the
    /// event stream. This is how the dual-run pipeline is tested end to
    /// end — and the only way a sanitizer is not a pure observer.
    pub perturb_at: Option<u64>,
}

impl SanitizerConfig {
    /// Running hash only: the always-on mode the harness attaches to
    /// every run.
    pub fn hash_only() -> Self {
        SanitizerConfig {
            cadence: 0,
            window: None,
            perturb_at: None,
        }
    }

    /// Checkpoints every `cadence` events, no window, no chaos.
    pub fn with_cadence(cadence: u64) -> Self {
        SanitizerConfig {
            cadence,
            window: None,
            perturb_at: None,
        }
    }
}

/// A periodic snapshot of the running hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashCheckpoint {
    /// Number of events folded when the snapshot was taken.
    pub index: u64,
    /// Virtual time of the last folded event.
    pub time: SimTime,
    pub hash: u64,
}

/// A fully described event from the log window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoggedEvent {
    /// 0-based dispatch index.
    pub index: u64,
    pub time: SimTime,
    /// `kind` or `kind(source)` for device IRQs.
    pub kind: String,
    pub cpu: Option<u32>,
    pub thread: Option<u32>,
}

impl LoggedEvent {
    /// One-line rendering: `#1234 t=5.2ms cpu3 tick`.
    pub fn render(&self) -> String {
        let loc = match (self.cpu, self.thread) {
            (Some(c), _) => format!("cpu{c}"),
            (None, Some(t)) => format!("thread{t}"),
            (None, None) => "-".into(),
        };
        format!(
            "#{} t={:.6}ms {} {}",
            self.index,
            self.time.0 as f64 / 1e6,
            loc,
            self.kind
        )
    }
}

/// What a finished sanitizer hands back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SanitizerReport {
    /// Total events folded.
    pub events: u64,
    /// Final running hash.
    pub hash: u64,
    pub checkpoints: Vec<HashCheckpoint>,
    /// Per-event digests for the configured window.
    pub log: Vec<LoggedEvent>,
}

/// The running sanitizer state owned by a kernel.
#[derive(Debug, Clone)]
pub struct EventSanitizer {
    config: SanitizerConfig,
    hash: u64,
    count: u64,
    checkpoints: Vec<HashCheckpoint>,
    log: Vec<LoggedEvent>,
}

impl EventSanitizer {
    pub fn new(config: SanitizerConfig) -> Self {
        EventSanitizer {
            config,
            hash: FNV_OFFSET,
            count: 0,
            checkpoints: Vec::new(),
            log: Vec::new(),
        }
    }

    /// Fold one dispatched event. Returns `true` when the chaos hook
    /// wants the kernel to inject its perturbation now.
    #[inline]
    pub fn observe(&mut self, rec: &EventRecord<'_>) -> bool {
        let index = self.count;
        self.hash = rec.fold(self.hash);
        self.count += 1;
        if self.config.cadence > 0 && self.count.is_multiple_of(self.config.cadence) {
            self.checkpoints.push(HashCheckpoint {
                index: self.count,
                time: rec.time,
                hash: self.hash,
            });
        }
        if let Some((lo, hi)) = self.config.window {
            if (lo..hi).contains(&index) {
                self.log.push(LoggedEvent {
                    index,
                    time: rec.time,
                    kind: rec.describe(),
                    cpu: rec.cpu,
                    thread: rec.thread,
                });
            }
        }
        self.config.perturb_at == Some(index)
    }

    /// Events folded so far.
    pub fn events(&self) -> u64 {
        self.count
    }

    /// Current running hash.
    pub fn hash(&self) -> u64 {
        self.hash
    }

    pub fn into_report(self) -> SanitizerReport {
        SanitizerReport {
            events: self.count,
            hash: self.hash,
            checkpoints: self.checkpoints,
            log: self.log,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(kind: EventKind, cpu: Option<u32>, t: u64) -> EventRecord<'static> {
        EventRecord {
            kind,
            cpu,
            thread: None,
            time: SimTime(t),
            duration_ns: 0,
            source: None,
        }
    }

    #[test]
    fn identical_streams_hash_identically() {
        let mut a = EventSanitizer::new(SanitizerConfig::hash_only());
        let mut b = EventSanitizer::new(SanitizerConfig::hash_only());
        for i in 0..1000u64 {
            let r = rec(EventKind::Tick, Some((i % 4) as u32), i * 100);
            a.observe(&r);
            b.observe(&r);
        }
        assert_eq!(a.hash(), b.hash());
        assert_eq!(a.events(), 1000);
    }

    #[test]
    fn any_field_difference_changes_the_hash() {
        let base = rec(EventKind::Tick, Some(0), 100);
        let variants = [
            rec(EventKind::IrqDone, Some(0), 100),
            rec(EventKind::Tick, Some(1), 100),
            rec(EventKind::Tick, Some(0), 101),
            EventRecord {
                duration_ns: 5,
                ..base
            },
            EventRecord {
                source: Some("nvme"),
                ..base
            },
        ];
        let href = {
            let mut s = EventSanitizer::new(SanitizerConfig::hash_only());
            s.observe(&base);
            s.hash()
        };
        for (i, v) in variants.iter().enumerate() {
            let mut s = EventSanitizer::new(SanitizerConfig::hash_only());
            s.observe(v);
            assert_ne!(s.hash(), href, "variant {i} collided");
        }
    }

    #[test]
    fn checkpoints_land_on_the_cadence_grid() {
        let mut s = EventSanitizer::new(SanitizerConfig::with_cadence(8));
        for i in 0..20u64 {
            s.observe(&rec(EventKind::Tick, Some(0), i));
        }
        let report = s.into_report();
        assert_eq!(report.events, 20);
        let idx: Vec<u64> = report.checkpoints.iter().map(|c| c.index).collect();
        assert_eq!(idx, vec![8, 16]);
    }

    #[test]
    fn window_logs_exactly_its_range() {
        let mut s = EventSanitizer::new(SanitizerConfig {
            cadence: 0,
            window: Some((5, 8)),
            perturb_at: None,
        });
        for i in 0..20u64 {
            s.observe(&rec(EventKind::Tick, Some(0), i));
        }
        let report = s.into_report();
        let idx: Vec<u64> = report.log.iter().map(|e| e.index).collect();
        assert_eq!(idx, vec![5, 6, 7]);
        assert!(report.log[0].render().contains("tick"));
    }

    #[test]
    fn perturb_fires_once_at_its_index() {
        let mut s = EventSanitizer::new(SanitizerConfig {
            cadence: 0,
            window: None,
            perturb_at: Some(3),
        });
        let fired: Vec<bool> = (0..6u64)
            .map(|i| s.observe(&rec(EventKind::Tick, Some(0), i)))
            .collect();
        assert_eq!(fired, vec![false, false, false, true, false, false]);
    }
}
