//! Thread behaviors: the coroutine-style interface between simulated
//! programs (workload runtimes, noise sources, injector processes) and
//! the kernel.
//!
//! A [`Behavior`] is a state machine. Whenever the thread's previous
//! action finishes (compute completed, sleep expired, barrier released,
//! ...), the kernel calls [`Behavior::next`] to obtain the next action.
//! This avoids host threads entirely: the whole machine — workload,
//! runtime, noise, injector — executes inside one deterministic
//! event loop.

use crate::ids::{BarrierId, ThreadId, WaitId};
use crate::policy::Policy;
use noiselab_machine::{CpuSet, WorkUnit};
use noiselab_sim::{Rng, SimDuration, SimTime};

/// What a thread asks the kernel to do next.
#[derive(Debug, Clone)]
pub enum Action {
    /// Execute a work unit (roofline-modelled compute + memory traffic).
    /// Completes when the work is done; may be preempted and migrated.
    Compute(WorkUnit),
    /// Occupy the CPU for a fixed amount of *CPU time* (not wall time):
    /// preemption stretches the wall-clock footprint, and SMT contention
    /// slows the work down. Natural noise bursts use this.
    Burn(SimDuration),
    /// Occupy the CPU for a fixed amount of *on-CPU wall time*: the
    /// countdown runs whenever the thread is on a CPU, unaffected by SMT
    /// contention, and pauses while preempted. This is the semantics of
    /// the injector's `Inject(duration)` (paper Listing 1): the recorded
    /// osnoise durations are occupancy intervals, and replaying them
    /// must reproduce the same occupancy.
    BurnWall(SimDuration),
    /// Sleep until an absolute virtual time (timer wake-up).
    SleepUntil(SimTime),
    /// Sleep for a relative duration.
    SleepFor(SimDuration),
    /// Enter barrier `id`. The thread spins on-CPU for up to `spin`
    /// before blocking; the last arrival releases everyone.
    Barrier { id: BarrierId, spin: SimDuration },
    /// Block on wait queue `wq` (FIFO wake order), spinning on-CPU for up
    /// to `spin` first in case a notify arrives quickly.
    WaitOn { wq: WaitId, spin: SimDuration },
    /// Wake up to `count` threads blocked on `wq`. Instantaneous; the
    /// kernel immediately asks for the next action.
    Notify { wq: WaitId, count: usize },
    /// Wake a specific blocked/sleeping thread. Instantaneous.
    Wake(ThreadId),
    /// Change own scheduling policy (`sched_setscheduler`). Instantaneous.
    SetPolicy(Policy),
    /// Change own affinity mask (`sched_setaffinity`). Instantaneous; if
    /// the current CPU is no longer allowed the thread migrates.
    SetAffinity(CpuSet),
    /// Give up the CPU, staying runnable.
    Yield,
    /// Terminate the thread.
    Exit,
}

/// Context handed to [`Behavior::next`].
pub struct Ctx<'a> {
    /// Current virtual time.
    pub now: SimTime,
    /// The thread being asked.
    pub tid: ThreadId,
    /// CPU the thread last ran on (None before first dispatch).
    pub cpu: Option<noiselab_machine::CpuId>,
    /// Deterministic per-kernel RNG (shared stream).
    pub rng: &'a mut Rng,
}

/// A thread's program.
pub trait Behavior {
    /// Produce the next action. Called at spawn (after the start delay)
    /// and after each action completes.
    fn next(&mut self, ctx: &mut Ctx<'_>) -> Action;

    /// Debug label used in panics and traces.
    fn label(&self) -> &str {
        "behavior"
    }
}

/// Convenience: a behavior from an `FnMut` closure.
pub struct FnBehavior<F: FnMut(&mut Ctx<'_>) -> Action> {
    f: F,
}

impl<F: FnMut(&mut Ctx<'_>) -> Action> FnBehavior<F> {
    pub fn new(f: F) -> Self {
        FnBehavior { f }
    }
}

impl<F: FnMut(&mut Ctx<'_>) -> Action> Behavior for FnBehavior<F> {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> Action {
        (self.f)(ctx)
    }
}

/// A behavior that runs a fixed script of actions, then exits. Useful in
/// tests and for simple noise processes.
pub struct ScriptBehavior {
    actions: std::vec::IntoIter<Action>,
}

impl ScriptBehavior {
    pub fn new(actions: Vec<Action>) -> Self {
        ScriptBehavior {
            actions: actions.into_iter(),
        }
    }
}

impl Behavior for ScriptBehavior {
    fn next(&mut self, _ctx: &mut Ctx<'_>) -> Action {
        self.actions.next().unwrap_or(Action::Exit)
    }

    fn label(&self) -> &str {
        "script"
    }
}
