//! Golden tests for the taint rules: every rule has a positive, a
//! negative, and an allowed section in its fixture, plus a
//! cross-function pair and the seeded laundered-wall-clock bug that
//! separates the taint analyzer from the token-level lexer.

use noiselab_audit::{analyze_sources, scan_source, RuleId, SourceSpec};
use proptest::prelude::*;

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Analyze a set of fixtures together with only the taint rules
/// enabled (the lexical rules have their own golden suite).
fn analyze_taint(names: &[&str]) -> noiselab_audit::AuditReport {
    let srcs: Vec<SourceSpec> = names
        .iter()
        .map(|n| SourceSpec {
            path: (*n).to_string(),
            src: fixture(n),
            rules: &RuleId::TAINT,
            host_thread_ok: true,
        })
        .collect();
    analyze_sources(&srcs)
}

/// Each single-file fixture must report exactly one finding — the one
/// from its `pos` function — under the expected rule, with a non-empty
/// source→sink path, and no stale allows (the `allowed` section uses
/// its annotation).
#[test]
fn taint_fixtures_trigger_exactly_their_rule() {
    let cases = [
        ("taint_wall_clock.rs", RuleId::TaintWallClock),
        ("taint_hash_order.rs", RuleId::TaintHashOrder),
        ("taint_addr.rs", RuleId::TaintAddr),
        ("taint_env.rs", RuleId::TaintEnv),
        ("taint_relaxed.rs", RuleId::TaintRelaxed),
        ("taint_float_order.rs", RuleId::TaintFloatOrder),
        ("taint_thread_id.rs", RuleId::TaintThreadId),
        // DVFS axis: float-derived frequency state must never reach a
        // checkpoint sink; the integer kHz/milli-heat path is clean.
        ("taint_freq_checkpoint.rs", RuleId::TaintFloatOrder),
    ];
    for (file, rule) in cases {
        let report = analyze_taint(&[file]);
        let rules: Vec<RuleId> = report.violations.iter().map(|v| v.rule).collect();
        assert_eq!(
            rules,
            vec![rule],
            "{file}: expected exactly one {} finding, got {:?}",
            rule.name(),
            report
                .violations
                .iter()
                .map(|v| format!("{}:{} {}", v.file, v.line, v.rule.name()))
                .collect::<Vec<_>>()
        );
        let v = &report.violations[0];
        assert!(
            !v.path.is_empty(),
            "{file}: taint finding must carry a source→sink path"
        );
        assert!(
            report.stale_allows.is_empty(),
            "{file}: allowed section should use its annotation, got stale {:?}",
            report.stale_allows
        );
    }
}

/// Taint born in one file reaches sinks defined in another: the
/// summary pass must carry `param_sinks` across the file boundary,
/// and the hop chain must name both files.
#[test]
fn cross_file_fixture_reports_both_flows() {
    let report = analyze_taint(&["taint_cross_fn_app.rs", "taint_cross_fn_lib.rs"]);
    let mut rules: Vec<RuleId> = report.violations.iter().map(|v| v.rule).collect();
    rules.sort();
    assert_eq!(
        rules,
        vec![RuleId::TaintWallClock, RuleId::TaintRelaxed],
        "expected one relaxed-atomic and one wall-clock cross-file flow, got {:?}",
        report
            .violations
            .iter()
            .map(|v| format!("{}:{} {}", v.file, v.line, v.rule.name()))
            .collect::<Vec<_>>()
    );
    for v in &report.violations {
        let files: std::collections::BTreeSet<&str> =
            v.path.iter().map(|h| h.file.as_str()).collect();
        assert!(
            files.contains("taint_cross_fn_app.rs") && files.contains("taint_cross_fn_lib.rs"),
            "hop chain should span both fixture files, got {:?}",
            v.path
        );
    }
}

/// The seeded bug from the issue: a wall-clock read laundered through
/// TWO intermediate function calls before reaching the stream-hash
/// fold. The PR-3 token-level lexer finds nothing (no banned
/// identifier appears); the taint analyzer reports the full path.
#[test]
fn lexer_misses_laundered_wall_clock_but_taint_catches_it() {
    let src = fixture("laundered_wall_clock.rs");

    // Token-level pass, all lexical rules enabled: provably blind.
    let lexical = scan_source("laundered_wall_clock.rs", &src, &RuleId::LEXICAL, true);
    assert!(
        lexical.is_empty(),
        "the lexer should see nothing in the laundered fixture, got {:?}",
        lexical
            .iter()
            .map(|v| format!("{}:{} {}", v.file, v.line, v.rule.name()))
            .collect::<Vec<_>>()
    );

    // Taint pass: one wall-clock → stream-hash finding, whose path
    // crosses both intermediate calls.
    let report = analyze_taint(&["laundered_wall_clock.rs"]);
    assert_eq!(report.violations.len(), 1, "{}", report.render_human());
    let v = &report.violations[0];
    assert_eq!(v.rule, RuleId::TaintWallClock);
    assert!(
        v.path.len() >= 4,
        "expected source + two intermediate returns + sink, got {:?}",
        v.path
    );
    let notes = v
        .path
        .iter()
        .map(|h| h.note.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(
        notes.contains("read_host_timer") && notes.contains("jitter_estimate"),
        "path should name both intermediates:\n{notes}"
    );
}

/// Every fixture that participates in the order-stability property.
const ORDER_FIXTURES: [&str; 10] = [
    "laundered_wall_clock.rs",
    "taint_wall_clock.rs",
    "taint_hash_order.rs",
    "taint_addr.rs",
    "taint_env.rs",
    "taint_relaxed.rs",
    "taint_float_order.rs",
    "taint_thread_id.rs",
    "taint_cross_fn_app.rs",
    "taint_cross_fn_lib.rs",
];

fn analyze_in_order(order: &[usize]) -> String {
    let srcs: Vec<SourceSpec> = order
        .iter()
        .map(|&i| SourceSpec {
            path: ORDER_FIXTURES[i].to_string(),
            src: fixture(ORDER_FIXTURES[i]),
            rules: &RuleId::ALL,
            host_thread_ok: true,
        })
        .collect();
    analyze_sources(&srcs).render_json()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The analyzer is byte-deterministic: JSON output over a set of
    /// files must not depend on the order the files are visited in.
    /// (The analyzer itself must pass its own audit, so it may not
    /// lean on hash-map iteration anywhere on this path.)
    #[test]
    fn audit_output_is_byte_stable_across_file_order(seed in 0u64..u64::MAX) {
        let baseline = analyze_in_order(&(0..ORDER_FIXTURES.len()).collect::<Vec<_>>());

        // Fisher-Yates driven by a splitmix64 stream off the seed.
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut order: Vec<usize> = (0..ORDER_FIXTURES.len()).collect();
        for i in (1..order.len()).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }

        let shuffled = analyze_in_order(&order);
        prop_assert!(
            baseline == shuffled,
            "visit order {:?} changed the report",
            order
        );
    }
}
