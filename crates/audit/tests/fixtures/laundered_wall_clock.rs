//! Seeded-bug fixture: a wall-clock value reaches the event-stream
//! hash fold through TWO intermediate function calls.
//!
//! There is no banned identifier anywhere in this file — `wall_clock`
//! is the workspace's approved host-timing wrapper, so the PR-3
//! token-level lexer reports nothing. The taint analyzer must report
//! one taint-wall-clock finding at the `fnv1a_extend` fold with the
//! full source→sink hop chain.

/// Models calling the approved host-timing wrapper
/// (`noiselab_bench::wall_clock`): lexically invisible.
fn read_host_timer() -> u64 {
    wall_clock()
}

/// First intermediate: arithmetic laundering.
fn jitter_estimate() -> u64 {
    read_host_timer().wrapping_mul(2654435761)
}

/// Second intermediate: the laundered value reaches the stream hash.
pub fn stamp_stream(acc: u64) -> u64 {
    let j = jitter_estimate();
    fnv1a_extend(acc, j)
}
