// Known-bad: std hash collections in a deterministic crate.
use std::collections::HashMap;

pub fn tally(xs: &[u32]) -> Vec<(u32, u32)> {
    let mut m: std::collections::HashSet<u32> = Default::default();
    for &x in xs {
        m.insert(x);
    }
    // Iteration order here is RandomState-seeded: nondeterministic.
    m.into_iter().map(|x| (x, 1)).collect()
}
