// Allowlisted variants: every violation carries a reasoned annotation,
// so this file sweeps clean.
pub fn wall_clock() -> std::time::Instant {
    std::time::Instant::now() // audit:allow(wall-clock): host-side bench banner only
}

// audit:allow(hash-iteration): keys are sorted before any iteration
use std::collections::HashMap;

pub fn load(path: &str) -> u64 {
    // audit:allow(panic-path): demo binary, failure is the right UX
    let text = std::fs::read_to_string(path).unwrap();
    text.len() as u64
}

pub fn make_map() {
    // audit:allow(hash-iteration): never iterated, lookup-only table
    let m: HashMap<u32, u32> = HashMap::new();
    let _ = m;
}
