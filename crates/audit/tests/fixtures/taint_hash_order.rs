//! Taint fixture: hash-container iteration order → stream hash.
//! Building or querying the map is fine; folding its iteration order
//! into the stream hash is not.

pub fn pos(acc: u64) -> u64 {
    let mut m = HashMap::new();
    m.insert(1u64, 2u64);
    let mut h = acc;
    for (k, v) in m.iter() {
        h = fnv1a_extend(h, k + v);
    }
    h
}

pub fn neg(acc: u64) -> u64 {
    // A carrier that is never iterated: size queries are order-free.
    let mut m = HashMap::new();
    m.insert(1u64, 2u64);
    fnv1a_extend(acc, m.len() as u64)
}

pub fn allowed(acc: u64) -> u64 {
    // audit:allow(taint-hash-order): fixture — order-independent XOR fold, reviewed
    let m = HashMap::new();
    let mut h = acc;
    for k in m.keys() {
        h = fnv1a_extend(h, k);
    }
    h
}
