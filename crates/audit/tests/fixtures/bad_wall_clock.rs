// Known-bad: wall-clock reads in a deterministic crate.
pub fn stamp() -> u64 {
    let t0 = std::time::Instant::now();
    let epoch = std::time::SystemTime::UNIX_EPOCH;
    let _ = epoch;
    t0.elapsed().as_nanos() as u64
}
