//! Taint fixture: environment read → campaign fingerprint.

pub fn pos() -> u64 {
    let v = std::env::var("NOISELAB_SEED").unwrap_or_default();
    let n = v.parse().unwrap_or(0u64);
    fingerprint(n)
}

pub fn neg(spec_seed: u64) -> u64 {
    fingerprint(spec_seed)
}

pub fn allowed() -> u64 {
    // audit:allow(taint-env): fixture — env value is itself recorded in the spec
    let v = std::env::var("NOISELAB_SEED").unwrap_or_default();
    let n = v.parse().unwrap_or(0u64);
    fingerprint(n)
}
