// Known-bad: host thread creation outside the approved harness module.
pub fn fan_out() {
    let h = std::thread::spawn(|| 1 + 1);
    std::thread::scope(|s| {
        let _ = s;
    });
    let _ = h.join();
}
