//! Taint fixture: address-as-value → EventQueue ordering key.
//! ASLR makes addresses run-unique; a dense id is the fix.

pub fn pos(q: &mut Queue, ev: &Event) {
    let key = ev as *const Event as usize;
    q.schedule(key as u64, 0);
}

pub fn neg(q: &mut Queue, dense_id: u64) {
    q.schedule(dense_id, 0);
}

pub fn allowed(q: &mut Queue, ev: &Event) {
    // audit:allow(taint-addr): fixture — single-process scratch queue, never serialized
    let key = ev as *const Event as usize;
    q.schedule(key as u64, 0);
}
