// Known-bad: shared mutable state with no ordering guarantee.
pub static mut RUN_COUNTER: u64 = 0;
