// Known-bad: entropy-seeded RNG construction.
pub fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    let seeded = SmallRng::from_entropy();
    let _ = seeded;
    rng.gen()
}
