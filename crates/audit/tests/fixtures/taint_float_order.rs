//! Taint fixture: unordered parallel float reduction → fingerprint.
//! Float addition is not associative; steal order changes the bits.

pub fn pos(data: &Vec<f64>) -> u64 {
    let s = data.par_iter().map(|x| x * 2.0).sum();
    fingerprint(s as u64)
}

pub fn neg(data: &Vec<f64>) -> u64 {
    let s = data.iter().map(|x| x * 2.0).sum();
    fingerprint(s as u64)
}

pub fn allowed(data: &Vec<f64>) -> u64 {
    // audit:allow(taint-float-order): fixture — values are integral powers of two, addition exact
    let s = data.par_iter().map(|x| x * 2.0).sum();
    fingerprint(s as u64)
}
