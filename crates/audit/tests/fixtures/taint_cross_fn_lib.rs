//! Cross-function taint fixture, "library" half: the sink is in here,
//! behind a helper — callers passing tainted values are the bug.

pub fn digest_cell(v: u64) -> u64 {
    fnv1a(&v.to_le_bytes())
}

pub fn checkpoint_cell(p: &Path, v: u64) {
    write_atomic(p, &v.to_le_bytes());
}
