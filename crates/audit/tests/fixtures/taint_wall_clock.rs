//! Taint fixture: wall-clock → stream hash.
//! Sections: positive, negative, allowed.

pub fn pos(acc: u64) -> u64 {
    let t = std::time::Instant::now();
    let stamp = t.elapsed().as_nanos() as u64;
    fnv1a_extend(acc, stamp)
}

pub fn neg(acc: u64, ticks: u64) -> u64 {
    let stamp = ticks.wrapping_mul(31);
    fnv1a_extend(acc, stamp)
}

pub fn allowed(acc: u64) -> u64 {
    // audit:allow(taint-wall-clock): fixture — reviewed flow, host timing only labels the report
    let stamp = std::time::Instant::now().elapsed().as_nanos() as u64;
    fnv1a_extend(acc, stamp)
}
