// Clean: the panic-path rule exempts test code by construction.
pub fn double(x: u64) -> u64 {
    x * 2
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwraps_are_fine_in_tests() {
        let text = std::fs::read_to_string("fixture.json").unwrap();
        let n: u64 = text.trim().parse().expect("test fixture");
        assert_eq!(super::double(n), n * 2);
    }
}
