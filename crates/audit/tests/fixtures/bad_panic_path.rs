// Known-bad: unwrap/expect on I/O and parse paths in non-test code.
pub fn load(path: &str) -> u64 {
    let text = std::fs::read_to_string(path).unwrap();
    let n: u64 = text.trim().parse().expect("malformed count file");
    n
}
