//! Cross-function taint fixture, "application" half: taints born here
//! flow into the library file's sinks (param_sinks summaries), and a
//! clean flow stays clean.

pub fn pos_digest() -> u64 {
    let t = std::time::SystemTime::now();
    let n = t.elapsed().as_nanos() as u64;
    digest_cell(n)
}

pub fn pos_checkpoint(p: &Path, c: &AtomicU64) {
    let n = c.load(Ordering::Relaxed);
    checkpoint_cell(p, n);
}

pub fn neg(seed: u64) -> u64 {
    digest_cell(seed.rotate_left(7))
}
