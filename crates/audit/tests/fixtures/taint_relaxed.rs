//! Taint fixture: `Ordering::Relaxed` atomic read → metrics merge.

pub fn pos(snap: &mut Snapshot, c: &AtomicU64) {
    let n = c.load(Ordering::Relaxed);
    snap.merge(n);
}

pub fn neg(snap: &mut Snapshot, c: &AtomicU64) {
    // SeqCst still races in wall time, but the merged value is read
    // after the barrier the harness establishes; only Relaxed is a
    // taint source here.
    let n = c.load(Ordering::SeqCst);
    snap.merge(n);
}

pub fn allowed(snap: &mut Snapshot, c: &AtomicU64) {
    // audit:allow(taint-relaxed): fixture — monotonic counter, merged as max
    let n = c.load(Ordering::Relaxed);
    snap.merge(n);
}
