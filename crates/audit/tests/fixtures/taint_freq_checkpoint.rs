//! Taint fixture: DVFS frequency state → checkpoint sink.
//!
//! The positive path folds per-CPU frequency factors with an unordered
//! parallel float reduction before checkpointing — steal order changes
//! the bits of the saved state. The negative path is the production
//! DVFS discipline: integer kHz and milli-heat accumulators, combined
//! in CPU order, are exact whatever the host threads do.

pub fn pos(freq_factor: &Vec<f64>) -> u64 {
    let avg: f64 = freq_factor.par_iter().map(|f| f / 8.0).sum();
    save_checkpoint((avg * 1000.0) as u64)
}

pub fn neg(khz: &Vec<u64>, heat_milli: &Vec<u64>) -> u64 {
    let cycles: u64 = khz.iter().sum();
    let heat: u64 = heat_milli.iter().sum();
    save_checkpoint(cycles ^ heat)
}

pub fn allowed(freq_factor: &Vec<f64>) -> u64 {
    // audit:allow(taint-float-order): fixture — factors are dyadic rationals, addition exact
    let avg: f64 = freq_factor.par_iter().map(|f| f / 8.0).sum();
    save_checkpoint((avg * 1000.0) as u64)
}
