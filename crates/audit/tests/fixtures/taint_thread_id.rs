//! Taint fixture: host thread identity → stream hash.

pub fn pos(acc: u64) -> u64 {
    let id = std::thread::current().id();
    fnv1a_extend(acc, id as u64)
}

pub fn neg(acc: u64, task_id: u64) -> u64 {
    fnv1a_extend(acc, task_id)
}

pub fn allowed(acc: u64) -> u64 {
    // audit:allow(taint-thread-id): fixture — debug-only stream, stripped in release
    let id = std::thread::current().id();
    fnv1a_extend(acc, id as u64)
}
