// Known-bad annotations: reasonless, unknown-rule, and stale allows.
pub fn reasonless() -> std::time::Instant {
    std::time::Instant::now() // audit:allow(wall-clock)
}

// audit:allow(no-such-rule): the rule name does not exist
pub fn unknown_rule() {}

// audit:allow(entropy): stale — nothing on this or the next line uses entropy
pub fn stale_allow() {}
