// Clean: lookalikes that must NOT trip the rules.
pub fn lookalikes(kernel: &mut Kernel, cpu: Option<CpuId>) {
    // Simulated spawn, not a host thread.
    let tid = kernel.spawn(spec(), behavior());
    // Invariant expect with no I/O in the statement: legal.
    let c = cpu.expect("running thread without cpu");
    // Instant as a type mention (no ::now call): legal.
    let keep: Option<std::time::Instant> = None;
    // Words inside strings and comments never count: HashMap,
    // Instant::now(), thread_rng, static mut.
    let s = "Instant::now() and HashMap live happily in a string";
    let r = r#"so does thread_rng in a raw string"#;
    let _ = (tid, c, keep, s, r);
}
