use noiselab_audit::SourceSpec;
use noiselab_audit::{analyze_sources, RuleId};

fn spec(path: &str, src: &str) -> SourceSpec<'static> {
    SourceSpec {
        path: path.to_string(),
        src: src.to_string(),
        rules: &RuleId::ALL,
        host_thread_ok: false,
    }
}

#[test]
fn method_arg_reaching_sink_in_callee_is_found() {
    // Callee is a method: self is param 0, v is param 1.
    let report = analyze_sources(&[
        spec(
            "a.rs",
            "impl Recorder { fn record(&self, v: u64) -> u64 { fnv1a(&v.to_le_bytes()) } }\n",
        ),
        spec(
            "b.rs",
            "fn leak(r: &Recorder) -> u64 { let t = std::time::Instant::now(); r.record(t.elapsed().as_nanos() as u64) }\n",
        ),
    ]);
    let taint: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule == RuleId::TaintWallClock)
        .collect();
    assert_eq!(
        taint.len(),
        1,
        "method arg flow missed: {:#?}",
        report.violations
    );
}

#[test]
fn receiver_reaching_sink_in_method_is_found() {
    // Tainted receiver; sink uses self inside the method.
    let report = analyze_sources(&[
        spec(
            "a.rs",
            "impl Acc { fn digest(&self) -> u64 { fnv1a(&self.x.to_le_bytes()) } }\n",
        ),
        spec(
            "b.rs",
            "fn leak() -> u64 { let mut a = Acc::new(); a.x = std::time::Instant::now().elapsed().as_nanos() as u64; a.digest() }\n",
        ),
    ]);
    let taint: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule == RuleId::TaintWallClock)
        .collect();
    assert_eq!(
        taint.len(),
        1,
        "receiver flow missed: {:#?}",
        report.violations
    );
}
