//! Golden-fixture suite for the determinism auditor: every known-bad
//! snippet under `tests/fixtures/` must trigger exactly its rule, and
//! the allowlisted variants must not. Plus the live gate: the actual
//! workspace must sweep clean.

use noiselab_audit::{audit_workspace, scan_source, RuleId};
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
}

fn scan_fixture(name: &str) -> Vec<(RuleId, u32)> {
    scan_source(name, &fixture(name), &RuleId::ALL, false)
        .into_iter()
        .map(|v| (v.rule, v.line))
        .collect()
}

/// Each bad fixture triggers exactly its own rule (possibly several
/// sites), and no other rule.
#[test]
fn bad_fixtures_trigger_exactly_their_rule() {
    let cases = [
        ("bad_hash_iteration.rs", RuleId::HashIteration, 2),
        ("bad_wall_clock.rs", RuleId::WallClock, 2),
        ("bad_entropy.rs", RuleId::Entropy, 2),
        ("bad_host_thread.rs", RuleId::HostThread, 2),
        ("bad_static_mut.rs", RuleId::StaticMut, 1),
        ("bad_panic_path.rs", RuleId::PanicPath, 2),
    ];
    for (file, rule, expected_sites) in cases {
        let hits = scan_fixture(file);
        assert_eq!(
            hits.len(),
            expected_sites,
            "{file}: expected {expected_sites} site(s), got {hits:?}"
        );
        for (r, line) in &hits {
            assert_eq!(
                *r,
                rule,
                "{file}:{line} fired {} not {}",
                r.name(),
                rule.name()
            );
        }
    }
}

/// The allowlisted variants of the same snippets are clean: a correct
/// `audit:allow(<rule>): <reason>` suppresses the violation.
#[test]
fn allowed_fixtures_are_clean() {
    for file in [
        "allowed_sites.rs",
        "clean_test_code.rs",
        "clean_lookalikes.rs",
    ] {
        let hits = scan_fixture(file);
        assert!(hits.is_empty(), "{file}: unexpected findings {hits:?}");
    }
}

/// Reasonless or unknown-rule annotations fail as bad-allow — the
/// acceptance bar is "every audit:allow carrying a reason".
#[test]
fn malformed_allows_are_bad_allow() {
    let hits = scan_fixture("bad_allow.rs");
    assert!(!hits.is_empty());
    for (r, line) in &hits {
        assert_eq!(*r, RuleId::BadAllow, "line {line}: {}", r.name());
    }
}

/// The live gate: the workspace this test runs in must sweep clean.
/// This is the same pass CI runs via `noiselab audit --static`.
#[test]
fn workspace_sweeps_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("audit crate lives two levels under the workspace root");
    let report = audit_workspace(root).expect("sweep must succeed");
    assert!(report.files_scanned > 30, "suspiciously small sweep");
    assert!(
        report.clean(),
        "workspace has unannotated determinism violations:\n{}",
        report.render_human()
    );
}
