//! Per-crate audit policy: which crates are under the determinism
//! contract, which of their directories are swept, which rules apply,
//! and which files are approved exceptions.
//!
//! The table is deliberately explicit — adding a crate to the workspace
//! does not silently put it under (or outside) the contract; someone
//! has to write the policy row and the reviewer sees it.

use crate::rules::RuleId;

/// Policy row for one crate.
#[derive(Debug, Clone)]
pub struct CratePolicy {
    /// Crate name as it appears in diagnostics.
    pub name: &'static str,
    /// Workspace-relative crate directory.
    pub root: &'static str,
    /// Crate-relative directories swept (recursively).
    pub dirs: &'static [&'static str],
    /// Rules enforced in this crate.
    pub rules: &'static [RuleId],
    /// Crate-relative files where host-thread creation is approved
    /// (the harness's host-thread module).
    pub host_thread_approved: &'static [&'static str],
}

/// Every rule, for the fully deterministic crates.
const ALL: &[RuleId] = &RuleId::ALL;

/// The bench crate runs on the host by design (criterion timing), so
/// wall-clock reads are routed through its single annotated
/// `wall_clock()` helper rather than banned outright; host threads and
/// panic paths in bench targets are out of scope. Likewise its whole
/// purpose is feeding wall-clock durations into reports, so the
/// wall-clock *taint* rule is off; the other taint flows stay banned.
const BENCH_RULES: &[RuleId] = &[
    RuleId::HashIteration,
    RuleId::WallClock,
    RuleId::Entropy,
    RuleId::StaticMut,
    RuleId::TaintHashOrder,
    RuleId::TaintAddr,
    RuleId::TaintEnv,
    RuleId::TaintRelaxed,
    RuleId::TaintFloatOrder,
    RuleId::TaintThreadId,
];

/// The determinism contract: the crates whose simulated results must be
/// a pure function of the seed, plus the bench crate's narrower sweep.
pub const POLICIES: &[CratePolicy] = &[
    CratePolicy {
        name: "noiselab-sim",
        root: "crates/sim",
        dirs: &["src"],
        rules: ALL,
        host_thread_approved: &[],
    },
    CratePolicy {
        name: "noiselab-machine",
        root: "crates/machine",
        dirs: &["src"],
        rules: ALL,
        host_thread_approved: &[],
    },
    CratePolicy {
        name: "noiselab-kernel",
        root: "crates/kernel",
        dirs: &["src"],
        rules: ALL,
        host_thread_approved: &[],
    },
    CratePolicy {
        name: "noiselab-noise",
        root: "crates/noise",
        dirs: &["src"],
        rules: ALL,
        host_thread_approved: &[],
    },
    CratePolicy {
        name: "noiselab-injector",
        root: "crates/injector",
        dirs: &["src"],
        rules: ALL,
        host_thread_approved: &[],
    },
    CratePolicy {
        name: "noiselab-runtime",
        root: "crates/runtime",
        dirs: &["src"],
        rules: ALL,
        host_thread_approved: &[],
    },
    CratePolicy {
        name: "noiselab-workloads",
        root: "crates/workloads",
        dirs: &["src"],
        rules: ALL,
        host_thread_approved: &[],
    },
    CratePolicy {
        name: "noiselab-stats",
        root: "crates/stats",
        dirs: &["src"],
        rules: ALL,
        host_thread_approved: &[],
    },
    CratePolicy {
        name: "noiselab-advise",
        root: "crates/advise",
        dirs: &["src"],
        // The advisor must be byte-stable across runs and file-visit
        // orders: seeded bootstrap, BTree maps, total-order sort keys.
        rules: ALL,
        host_thread_approved: &[],
    },
    CratePolicy {
        name: "noiselab-core",
        root: "crates/core",
        dirs: &["src"],
        rules: ALL,
        // run_many's fan-out over host threads lives here, and only
        // here: each simulated run stays a pure function of its seed.
        host_thread_approved: &["src/harness.rs"],
    },
    CratePolicy {
        name: "noiselab-telemetry",
        root: "crates/telemetry",
        dirs: &["src"],
        // Fully deterministic except the workspace's single annotated
        // wall-clock site (`profile::wall_clock`), which the host-time
        // profiler and bench banners route through.
        rules: ALL,
        host_thread_approved: &[],
    },
    CratePolicy {
        name: "noiselab-conform",
        root: "crates/conform",
        dirs: &["src"],
        // The conformance suite replays the kernel's own record stream;
        // a nondeterministic oracle would make shrunk repros worthless.
        rules: ALL,
        host_thread_approved: &[],
    },
    CratePolicy {
        name: "noiselab-testutil",
        root: "crates/testutil",
        dirs: &["src"],
        rules: ALL,
        host_thread_approved: &[],
    },
    CratePolicy {
        name: "noiselab-bench",
        root: "crates/bench",
        dirs: &["src", "benches"],
        rules: BENCH_RULES,
        host_thread_approved: &[],
    },
    CratePolicy {
        name: "noiselab-campaignd",
        root: "crates/campaignd",
        dirs: &["src"],
        // The campaign engine crosses process boundaries but the cells
        // it runs must stay pure functions of the seed: full rules,
        // with the supervisor's liveness clock as the one annotated
        // wall-clock site and its stdout-reader threads approved.
        rules: ALL,
        host_thread_approved: &["src/supervisor.rs"],
    },
    CratePolicy {
        name: "noiselab-audit",
        root: "crates/audit",
        dirs: &["src"],
        // The analyzer audits itself: its output must be a pure
        // function of the sources it reads, so it is under the same
        // contract it enforces (BTree containers, no wall-clock, no
        // hash-order dependence in its own fixpoint).
        rules: ALL,
        host_thread_approved: &[],
    },
];
