//! Call-graph summary fixpoint: taint across function boundaries.
//!
//! Each function gets a [`FnSummary`]: which taints (or caller
//! parameters) flow to its return value, and which parameters reach a
//! sink inside it (with the internal hop chain). The driver reruns
//! the intra-procedural analysis with the growing summary environment
//! until summaries stabilize, so a wall-clock value can be traced
//! through two (or more) intermediate calls into a stream-hash fold
//! in another crate.
//!
//! Summaries are keyed by the *last path segment* of the function
//! name — the parser does not resolve imports — so same-named
//! functions are unioned. That is conservative (may over-taint) and
//! is documented as a blind spot in ANALYSIS.md.

use std::collections::{BTreeMap, BTreeSet};

use crate::cfg::Cfg;
use crate::taint::{absorb, analyze_fn, SinkKind, TaintFinding, Witness};

/// Maximum whole-workspace fixpoint rounds. Chains deeper than this
/// many function hops are cut off (and capped anyway by `MAX_HOPS`).
const MAX_ROUNDS: usize = 10;

/// A parameter-to-sink flow recorded inside a callee.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SinkTrace {
    pub sink: SinkKind,
    pub callee: String,
    /// Hops from the parameter's use to the sink call site.
    pub hops: Vec<crate::taint::Hop>,
}

/// What a caller needs to know about a function.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FnSummary {
    /// Witnesses flowing to the return value. `Origin::Param(i)`
    /// entries mean "parameter i flows to the return".
    pub ret: BTreeSet<Witness>,
    /// Parameter index → sinks it reaches inside this function.
    pub param_sinks: BTreeMap<usize, BTreeSet<SinkTrace>>,
}

impl FnSummary {
    fn union(&mut self, other: &FnSummary) {
        for w in &other.ret {
            absorb(&mut self.ret, w.clone());
        }
        for (i, traces) in &other.param_sinks {
            let own = self.param_sinks.entry(*i).or_default();
            for t in traces {
                if own.len() < 8 {
                    own.insert(t.clone());
                }
            }
        }
    }
}

/// Run the summary fixpoint over every function in the workspace and
/// return the deduplicated, sorted findings.
///
/// `cfgs` pairs each function CFG with the (repo-relative) file it
/// came from. Test-region functions contribute nothing: their sinks
/// are not reported and their summaries are not trusted.
pub fn analyze_workspace(cfgs: &[(String, Cfg)]) -> Vec<TaintFinding> {
    let mut summaries: BTreeMap<String, FnSummary> = BTreeMap::new();
    let mut findings: BTreeMap<(String, u32, &'static str, String, u32), TaintFinding> =
        BTreeMap::new();

    for _round in 0..MAX_ROUNDS {
        let mut next: BTreeMap<String, FnSummary> = BTreeMap::new();
        findings.clear();
        for (file, cfg) in cfgs {
            if cfg.in_test {
                continue;
            }
            let analysis = analyze_fn(cfg, file, &summaries);
            for f in analysis.findings {
                let (sfile, sline) = {
                    let (sf, sl) = f.source();
                    (sf.to_string(), sl)
                };
                let key = (f.file.clone(), f.line, f.rule.name(), sfile, sline);
                match findings.get(&key) {
                    Some(old) if old.hops.len() <= f.hops.len() => {}
                    _ => {
                        findings.insert(key, f);
                    }
                }
            }
            next.entry(cfg.name.clone())
                .or_default()
                .union(&analysis.summary);
        }
        let stable = next == summaries;
        summaries = next;
        if stable {
            break;
        }
    }

    let mut out: Vec<TaintFinding> = findings.into_values().collect();
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::lower_fn;
    use crate::lexer::lex;
    use crate::parse::parse_file;
    use crate::taint::{SinkKind, TaintKind};

    fn analyze(files: &[(&str, &str)]) -> Vec<TaintFinding> {
        let mut cfgs = Vec::new();
        for (name, src) in files {
            for f in parse_file(&lex(src)) {
                cfgs.push((name.to_string(), lower_fn(&f)));
            }
        }
        analyze_workspace(&cfgs)
    }

    #[test]
    fn taint_crosses_two_intermediate_calls() {
        // now() -> stamp() -> widen() -> fold(): the source is two
        // function hops away from the sink, in "different files".
        let findings = analyze(&[
            (
                "a.rs",
                "fn stamp() -> u64 { std::time::Instant::now().elapsed().as_nanos() as u64 }\n\
                 fn widen(x: u64) -> u64 { x.wrapping_mul(3) }",
            ),
            (
                "b.rs",
                "fn fold(seed: u64) -> u64 { let s = stamp(); let w = widen(s); fnv1a_extend(seed, w) }",
            ),
        ]);
        assert_eq!(findings.len(), 1, "{findings:#?}");
        let f = &findings[0];
        assert_eq!(f.kind, TaintKind::WallClock);
        assert_eq!(f.sink, SinkKind::StreamHash);
        assert_eq!(f.file, "b.rs");
        assert_eq!(f.source().0, "a.rs");
        // source hop + returned-by + through + sink hop
        assert!(f.hops.len() >= 4, "{:#?}", f.hops);
    }

    #[test]
    fn param_sink_summaries_flow_upward() {
        // The sink is inside the callee; the source is in the caller.
        let findings = analyze(&[
            (
                "a.rs",
                "fn digest(v: u64) -> u64 { fnv1a(&v.to_le_bytes()) }",
            ),
            (
                "b.rs",
                "fn leak() -> u64 { let t = std::time::SystemTime::now(); digest(t.elapsed().as_nanos() as u64) }",
            ),
        ]);
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert_eq!(findings[0].file, "a.rs");
        assert_eq!(findings[0].source().0, "b.rs");
    }

    #[test]
    fn clean_cross_function_code_stays_clean() {
        let findings = analyze(&[(
            "a.rs",
            "fn mix(a: u64, b: u64) -> u64 { a ^ b.rotate_left(17) }\n\
                 fn digest(v: u64) -> u64 { fnv1a(&v.to_le_bytes()) }\n\
                 fn run(seed: u64) -> u64 { digest(mix(seed, 42)) }",
        )]);
        assert!(findings.is_empty(), "{findings:#?}");
    }

    #[test]
    fn output_is_stable_across_input_order() {
        let files = [
            (
                "a.rs",
                "fn stamp() -> u64 { std::time::Instant::now().elapsed().as_nanos() as u64 }",
            ),
            ("b.rs", "fn hashit() -> u64 { fnv1a(&stamp().to_le_bytes()) }"),
            (
                "c.rs",
                "fn keyed(q: &mut Q) { let h = HashSet::new(); for k in h.iter() { q.schedule(k, 0); } }",
            ),
        ];
        let fwd = analyze(&files);
        let mut rev = files;
        rev.reverse();
        let bwd = analyze(&rev);
        assert_eq!(fwd, bwd);
        assert_eq!(fwd.len(), 2, "{fwd:#?}");
    }
}
