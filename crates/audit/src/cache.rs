//! Incremental per-file artifact cache.
//!
//! A warm `noiselab audit --static` should not re-lex, re-parse and
//! re-lower 27k lines of workspace source: the sweep stores each
//! file's lexical violations, allow annotations, and lowered CFGs,
//! keyed by an FNV-1a hash of the file's bytes (plus the policy inputs
//! that shaped the scan). Only the taint fixpoint — which is global by
//! nature — reruns every time.
//!
//! The format is a line-oriented, tab-separated text file (the auditor
//! is dependency-free, so no serde). Any malformed line invalidates
//! the whole cache: correctness never depends on it, it is purely a
//! speedup, so the failure mode is "recompute".

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use crate::cfg::{BasicBlock, Cfg, Instr, Rv};
use crate::rules::{Allow, RuleId, Violation};

const MAGIC: &str = "noiselab-audit-cache v1";

/// FNV-1a over raw bytes — same constants as the kernel's stream hash,
/// reimplemented here so the auditor stays dependency-free.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Canonical cache key for a rule set.
pub fn rules_key(rules: &[RuleId]) -> String {
    let mut names: Vec<&str> = rules.iter().map(|r| r.name()).collect();
    names.sort_unstable();
    names.join(",")
}

/// Everything the sweep derives from one file.
#[derive(Debug, Default, Clone)]
pub struct FileArtifacts {
    pub violations: Vec<Violation>,
    pub allows: Vec<Allow>,
    pub cfgs: Vec<Cfg>,
}

#[derive(Debug, Clone)]
struct Entry {
    hash: u64,
    host_ok: bool,
    rules_key: String,
    art: FileArtifacts,
}

/// The on-disk cache: path → entry.
#[derive(Debug, Default)]
pub struct Cache {
    entries: BTreeMap<String, Entry>,
    pub hits: usize,
    pub misses: usize,
}

impl Cache {
    /// Load a cache file; a missing or corrupt file yields an empty
    /// cache (never an error — the cache is advisory).
    pub fn load(path: &Path) -> Cache {
        let Ok(text) = std::fs::read_to_string(path) else {
            return Cache::default();
        };
        parse_cache(&text).unwrap_or_default()
    }

    pub fn get(
        &mut self,
        file: &str,
        hash: u64,
        host_ok: bool,
        rules_key: &str,
    ) -> Option<FileArtifacts> {
        let hit = self.entries.get(file).and_then(|e| {
            if e.hash == hash && e.host_ok == host_ok && e.rules_key == rules_key {
                Some(e.art.clone())
            } else {
                None
            }
        });
        if hit.is_some() {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        hit
    }

    pub fn put(
        &mut self,
        file: &str,
        hash: u64,
        host_ok: bool,
        rules_key: String,
        art: FileArtifacts,
    ) {
        self.entries.insert(
            file.to_string(),
            Entry {
                hash,
                host_ok,
                rules_key,
                art,
            },
        );
    }

    /// Drop entries for files no longer in the sweep.
    pub fn retain_files(&mut self, live: &[String]) {
        let keep: std::collections::BTreeSet<&String> = live.iter().collect();
        self.entries.retain(|k, _| keep.contains(k));
    }

    pub fn save(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.render())
    }

    fn render(&self) -> String {
        let mut out = String::from(MAGIC);
        out.push('\n');
        for (file, e) in &self.entries {
            out.push_str(&format!(
                "file\t{}\t{:016x}\t{}\t{}\n",
                file,
                e.hash,
                u8::from(e.host_ok),
                e.rules_key
            ));
            for v in &e.art.violations {
                out.push_str(&format!(
                    "V\t{}\t{}\t{}\n",
                    v.rule.name(),
                    v.line,
                    clean_field(&v.message)
                ));
            }
            for a in &e.art.allows {
                out.push_str(&format!(
                    "A\t{}\t{}\t{}\t{}\n",
                    a.line,
                    u8::from(a.used),
                    clean_field(&a.raw_rule),
                    clean_field(&a.reason)
                ));
            }
            for c in &e.art.cfgs {
                out.push_str(&format!(
                    "F\t{}\t{}\t{}\t{}\t{}\n",
                    c.name,
                    if c.qual.is_empty() { "-" } else { &c.qual },
                    c.line,
                    u8::from(c.in_test),
                    csv(&c.params)
                ));
                for b in &c.blocks {
                    let succs: Vec<String> = b.succs.iter().map(|s| s.to_string()).collect();
                    out.push_str(&format!("B\t{}\n", opt_csv(&succs)));
                    for i in &b.instrs {
                        out.push_str(&render_instr(i));
                    }
                }
            }
        }
        out.push_str("end\n");
        out
    }
}

fn clean_field(s: &str) -> String {
    s.replace(['\t', '\n', '\r'], " ")
}

fn csv(items: &[String]) -> String {
    if items.is_empty() {
        "-".to_string()
    } else {
        items.join(",")
    }
}

fn opt_csv(items: &[String]) -> String {
    csv(items)
}

fn rv_enc(rv: &Rv) -> String {
    match rv {
        Rv::Var(n) => format!("v:{n}"),
        Rv::Tmp(n) => format!("t:{n}"),
        Rv::Const(p) => format!("c:{p}"),
    }
}

fn rv_dec(s: &str) -> Option<Rv> {
    let (tag, rest) = s.split_once(':')?;
    match tag {
        "v" => Some(Rv::Var(rest.to_string())),
        "t" => rest.parse().ok().map(Rv::Tmp),
        "c" => Some(Rv::Const(rest.to_string())),
        _ => None,
    }
}

fn render_instr(i: &Instr) -> String {
    match i {
        Instr::Copy { dst, srcs, line } => {
            let srcs: Vec<String> = srcs.iter().map(rv_enc).collect();
            format!("IC\t{}\t{}\t{}\n", line, rv_enc(dst), opt_csv(&srcs))
        }
        Instr::Call {
            dst,
            name,
            full,
            recv,
            args,
            line,
            is_method,
        } => {
            let args: Vec<String> = args.iter().map(rv_enc).collect();
            format!(
                "IL\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
                line,
                u8::from(*is_method),
                rv_enc(dst),
                clean_field(name),
                clean_field(full),
                recv.as_ref().map(rv_enc).unwrap_or_else(|| "-".into()),
                opt_csv(&args)
            )
        }
        Instr::Cast {
            dst,
            src,
            ty,
            addr_like,
            line,
        } => format!(
            "IX\t{}\t{}\t{}\t{}\t{}\n",
            line,
            u8::from(*addr_like),
            rv_enc(dst),
            clean_field(ty),
            rv_enc(src)
        ),
        Instr::Ret { src, line } => format!(
            "IR\t{}\t{}\n",
            line,
            src.as_ref().map(rv_enc).unwrap_or_else(|| "-".into())
        ),
    }
}

fn dec_csv_rvs(s: &str) -> Option<Vec<Rv>> {
    if s == "-" {
        return Some(Vec::new());
    }
    s.split(',').map(rv_dec).collect()
}

fn dec_bool(s: &str) -> Option<bool> {
    match s {
        "0" => Some(false),
        "1" => Some(true),
        _ => None,
    }
}

/// Parse the whole cache file; `None` on any malformed content.
fn parse_cache(text: &str) -> Option<Cache> {
    let mut lines = text.lines();
    if lines.next()? != MAGIC {
        return None;
    }
    let mut cache = Cache::default();
    let mut cur: Option<(String, Entry)> = None;

    let finish = |cur: &mut Option<(String, Entry)>, cache: &mut Cache| {
        if let Some((file, entry)) = cur.take() {
            cache.entries.insert(file, entry);
        }
    };

    for line in lines {
        let mut parts = line.split('\t');
        let tag = parts.next()?;
        match tag {
            "end" => {
                finish(&mut cur, &mut cache);
                return Some(cache);
            }
            "file" => {
                finish(&mut cur, &mut cache);
                let file = parts.next()?.to_string();
                let hash = u64::from_str_radix(parts.next()?, 16).ok()?;
                let host_ok = dec_bool(parts.next()?)?;
                let rules_key = parts.next()?.to_string();
                cur = Some((
                    file,
                    Entry {
                        hash,
                        host_ok,
                        rules_key,
                        art: FileArtifacts::default(),
                    },
                ));
            }
            "V" => {
                let (file, entry) = cur.as_mut()?;
                // bad-allow is outside from_name's allow namespace but
                // does appear in cached violations.
                let rule_name = parts.next()?;
                let rule = if rule_name == RuleId::BadAllow.name() {
                    RuleId::BadAllow
                } else {
                    RuleId::from_name(rule_name)?
                };
                let line_no: u32 = parts.next()?.parse().ok()?;
                let message = parts.next()?.to_string();
                entry
                    .art
                    .violations
                    .push(Violation::new(file, line_no, rule, message));
            }
            "A" => {
                let (_, entry) = cur.as_mut()?;
                let line_no: u32 = parts.next()?.parse().ok()?;
                let used = dec_bool(parts.next()?)?;
                let raw_rule = parts.next()?.to_string();
                let reason = parts.next().unwrap_or("").to_string();
                entry.art.allows.push(Allow {
                    line: line_no,
                    rule: RuleId::from_name(&raw_rule),
                    raw_rule,
                    reason,
                    used,
                });
            }
            "F" => {
                let (_, entry) = cur.as_mut()?;
                let name = parts.next()?.to_string();
                let qual = match parts.next()? {
                    "-" => String::new(),
                    q => q.to_string(),
                };
                let line_no: u32 = parts.next()?.parse().ok()?;
                let in_test = dec_bool(parts.next()?)?;
                let params = match parts.next()? {
                    "-" => Vec::new(),
                    p => p.split(',').map(str::to_string).collect(),
                };
                entry.art.cfgs.push(Cfg {
                    name,
                    qual,
                    params,
                    blocks: Vec::new(),
                    line: line_no,
                    in_test,
                });
            }
            "B" => {
                let (_, entry) = cur.as_mut()?;
                let cfg = entry.art.cfgs.last_mut()?;
                let succs = match parts.next()? {
                    "-" => Vec::new(),
                    s => s
                        .split(',')
                        .map(|x| x.parse::<usize>().ok())
                        .collect::<Option<Vec<usize>>>()?,
                };
                cfg.blocks.push(BasicBlock {
                    instrs: Vec::new(),
                    succs,
                });
            }
            "IC" | "IL" | "IX" | "IR" => {
                let (_, entry) = cur.as_mut()?;
                let block = entry.art.cfgs.last_mut()?.blocks.last_mut()?;
                let line_no: u32 = parts.next()?.parse().ok()?;
                let instr = match tag {
                    "IC" => Instr::Copy {
                        dst: rv_dec(parts.next()?)?,
                        srcs: dec_csv_rvs(parts.next()?)?,
                        line: line_no,
                    },
                    "IL" => {
                        let is_method = dec_bool(parts.next()?)?;
                        let dst = rv_dec(parts.next()?)?;
                        let name = parts.next()?.to_string();
                        let full = parts.next()?.to_string();
                        let recv = match parts.next()? {
                            "-" => None,
                            r => Some(rv_dec(r)?),
                        };
                        let args = dec_csv_rvs(parts.next()?)?;
                        Instr::Call {
                            dst,
                            name,
                            full,
                            recv,
                            args,
                            line: line_no,
                            is_method,
                        }
                    }
                    "IX" => {
                        let addr_like = dec_bool(parts.next()?)?;
                        let dst = rv_dec(parts.next()?)?;
                        let ty = parts.next()?.to_string();
                        let src = rv_dec(parts.next()?)?;
                        Instr::Cast {
                            dst,
                            src,
                            ty,
                            addr_like,
                            line: line_no,
                        }
                    }
                    _ => Instr::Ret {
                        src: match parts.next()? {
                            "-" => None,
                            s => Some(rv_dec(s)?),
                        },
                        line: line_no,
                    },
                };
                block.instrs.push(instr);
            }
            _ => return None,
        }
    }
    // No `end` marker: truncated write — discard.
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::lower_fn;
    use crate::lexer::lex;
    use crate::parse::parse_file;
    use crate::rules::scan_file;

    fn artifacts(file: &str, src: &str) -> FileArtifacts {
        let scan = scan_file(file, src, &RuleId::ALL, false);
        let cfgs = parse_file(&lex(src)).iter().map(lower_fn).collect();
        FileArtifacts {
            violations: scan.violations,
            allows: scan.allows,
            cfgs,
        }
    }

    #[test]
    fn round_trips_through_text() {
        let src = "// audit:allow(wall-clock): banner\n\
                   fn f(x: u64) -> u64 { let h = g(x); if h > 0 { h } else { fnv1a(&x.to_le_bytes()) } }\n";
        let art = artifacts("a.rs", src);
        let mut cache = Cache::default();
        cache.put(
            "a.rs",
            fnv1a64(src.as_bytes()),
            false,
            rules_key(&RuleId::ALL),
            art.clone(),
        );
        let text = cache.render();
        let parsed = parse_cache(&text).expect("cache parses");
        let mut parsed = parsed;
        let got = parsed
            .get(
                "a.rs",
                fnv1a64(src.as_bytes()),
                false,
                &rules_key(&RuleId::ALL),
            )
            .expect("hit");
        assert_eq!(got.allows.len(), art.allows.len());
        assert_eq!(got.cfgs.len(), art.cfgs.len());
        assert_eq!(got.cfgs[0].params, art.cfgs[0].params);
        let count = |a: &FileArtifacts| -> usize {
            a.cfgs
                .iter()
                .flat_map(|c| c.blocks.iter())
                .map(|b| b.instrs.len())
                .sum()
        };
        assert_eq!(count(&got), count(&art));
    }

    #[test]
    fn stale_hash_misses() {
        let art = artifacts("a.rs", "fn f() {}\n");
        let mut cache = Cache::default();
        cache.put("a.rs", 1, false, rules_key(&RuleId::ALL), art);
        assert!(cache
            .get("a.rs", 2, false, &rules_key(&RuleId::ALL))
            .is_none());
        assert!(cache
            .get("a.rs", 1, true, &rules_key(&RuleId::ALL))
            .is_none());
        assert!(cache
            .get("a.rs", 1, false, &rules_key(&RuleId::ALL))
            .is_some());
    }

    #[test]
    fn corrupt_cache_is_discarded() {
        assert!(parse_cache("not-a-cache\n").is_none());
        assert!(parse_cache(MAGIC).is_none(), "missing end marker");
        let truncated = format!("{MAGIC}\nfile\ta.rs\t00\t0\tk\nV\tbroken\n");
        assert!(parse_cache(&truncated).is_none());
    }
}
