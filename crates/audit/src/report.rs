//! Human and machine-readable rendering of an audit run.

use crate::rules::Violation;

/// Result of sweeping the workspace (or one source string).
#[derive(Debug, Default)]
pub struct AuditReport {
    /// Files swept, in sweep order.
    pub files_scanned: usize,
    /// Crates swept.
    pub crates_scanned: usize,
    /// Unsuppressed violations, ordered by (file, line).
    pub violations: Vec<Violation>,
}

impl AuditReport {
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// `file:line: rule: message` diagnostics plus a one-line summary.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n    suggestion: {}\n",
                v.file,
                v.line,
                v.rule.name(),
                v.message,
                v.rule.suggestion()
            ));
        }
        out.push_str(&format!(
            "audit: {} crate(s), {} file(s) swept, {} violation(s)\n",
            self.crates_scanned,
            self.files_scanned,
            self.violations.len()
        ));
        out
    }

    /// Machine-readable JSON (hand-rolled: the auditor is
    /// dependency-free and its output schema is flat).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"crates_scanned\": {},\n  \"files_scanned\": {},\n  \"clean\": {},\n",
            self.crates_scanned,
            self.files_scanned,
            self.clean()
        ));
        out.push_str("  \"violations\": [\n");
        for (i, v) in self.violations.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}, \
                 \"suggestion\": {}}}{}\n",
                json_str(&v.file),
                v.line,
                json_str(v.rule.name()),
                json_str(&v.message),
                json_str(v.rule.suggestion()),
                if i + 1 == self.violations.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleId;

    #[test]
    fn json_escapes_and_renders() {
        let report = AuditReport {
            files_scanned: 1,
            crates_scanned: 1,
            violations: vec![Violation {
                file: "a \"b\".rs".into(),
                line: 3,
                rule: RuleId::WallClock,
                message: "x\ny".into(),
            }],
        };
        let json = report.render_json();
        assert!(json.contains("\\\"b\\\""));
        assert!(json.contains("\\n"));
        assert!(json.contains("\"clean\": false"));
        let human = report.render_human();
        assert!(human.contains("a \"b\".rs:3: [wall-clock]"));
    }

    #[test]
    fn clean_report_renders_empty_array() {
        let report = AuditReport::default();
        assert!(report.clean());
        assert!(report.render_json().contains("\"violations\": [\n  ]"));
    }
}
