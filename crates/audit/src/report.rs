//! Human, JSON, and SARIF rendering of an audit run.
//!
//! All three renderers are hand-rolled (the auditor is
//! dependency-free) and byte-deterministic: findings and stale allows
//! arrive pre-sorted from the sweep, and nothing here consults a map
//! with nondeterministic iteration order.

use crate::rules::{RuleId, Violation};

/// An `audit:allow` annotation that suppressed nothing — neither a
/// lexical finding nor a taint path. Stale allows silently mask future
/// violations, so they are reported (and can fail CI via
/// `--fail-on-stale-allow`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct StaleAllow {
    pub file: String,
    pub line: u32,
    /// The rule name as written in the annotation.
    pub rule: String,
}

/// Result of sweeping the workspace (or a set of source strings).
#[derive(Debug, Default)]
pub struct AuditReport {
    /// Files swept, in sweep order.
    pub files_scanned: usize,
    /// Crates swept.
    pub crates_scanned: usize,
    /// Unsuppressed violations, ordered by (file, line, rule).
    pub violations: Vec<Violation>,
    /// Allows that matched nothing, ordered by (file, line).
    pub stale_allows: Vec<StaleAllow>,
}

impl AuditReport {
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// `file:line: rule: message` diagnostics (taint findings get their
    /// hop chain indented underneath) plus a one-line summary.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n",
                v.file,
                v.line,
                v.rule.name(),
                v.message,
            ));
            for (i, h) in v.path.iter().enumerate() {
                let arrow = if i == 0 { "source" } else { "  then" };
                out.push_str(&format!("    {arrow}  {}:{}  {}\n", h.file, h.line, h.note));
            }
            out.push_str(&format!("    suggestion: {}\n", v.rule.suggestion()));
        }
        for s in &self.stale_allows {
            out.push_str(&format!(
                "{}:{}: stale audit:allow({}) — matched no finding\n",
                s.file, s.line, s.rule
            ));
        }
        out.push_str(&format!(
            "audit: {} crate(s), {} file(s) swept, {} violation(s), {} stale allow(s)\n",
            self.crates_scanned,
            self.files_scanned,
            self.violations.len(),
            self.stale_allows.len()
        ));
        out
    }

    /// Machine-readable JSON. Taint findings carry a `"path"` array of
    /// `{file, line, note}` hops (source first, sink last); stale
    /// allows are a separate top-level array with rule name and line.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"crates_scanned\": {},\n  \"files_scanned\": {},\n  \"clean\": {},\n",
            self.crates_scanned,
            self.files_scanned,
            self.clean()
        ));
        out.push_str("  \"violations\": [\n");
        for (i, v) in self.violations.iter().enumerate() {
            let mut path = String::from("[");
            for (j, h) in v.path.iter().enumerate() {
                if j > 0 {
                    path.push_str(", ");
                }
                path.push_str(&format!(
                    "{{\"file\": {}, \"line\": {}, \"note\": {}}}",
                    json_str(&h.file),
                    h.line,
                    json_str(&h.note)
                ));
            }
            path.push(']');
            out.push_str(&format!(
                "    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}, \
                 \"path\": {}, \"suggestion\": {}}}{}\n",
                json_str(&v.file),
                v.line,
                json_str(v.rule.name()),
                json_str(&v.message),
                path,
                json_str(v.rule.suggestion()),
                if i + 1 == self.violations.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"stale_allows\": [\n");
        for (i, s) in self.stale_allows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"file\": {}, \"line\": {}, \"rule\": {}}}{}\n",
                json_str(&s.file),
                s.line,
                json_str(&s.rule),
                if i + 1 == self.stale_allows.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// SARIF 2.1.0, for CI artifact upload and code-scanning UIs.
    /// Taint findings render their source→sink path as a
    /// `codeFlows[].threadFlows[].locations` chain.
    pub fn render_sarif(&self) -> String {
        let mut out = String::from(
            "{\n  \"version\": \"2.1.0\",\n  \"$schema\": \
             \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \"runs\": [\n    {\n",
        );
        out.push_str("      \"tool\": {\n        \"driver\": {\n");
        out.push_str(
            "          \"name\": \"noiselab-audit\",\n          \
             \"informationUri\": \"EXPERIMENTS.md\",\n          \"rules\": [\n",
        );
        let mut rule_ids: Vec<&'static str> = RuleId::ALL.iter().map(|r| r.name()).collect();
        rule_ids.push(RuleId::BadAllow.name());
        for (i, (name, help)) in RuleId::ALL
            .iter()
            .map(|r| (r.name(), r.suggestion()))
            .chain(std::iter::once((
                RuleId::BadAllow.name(),
                RuleId::BadAllow.suggestion(),
            )))
            .enumerate()
        {
            out.push_str(&format!(
                "            {{\"id\": {}, \"shortDescription\": {{\"text\": {}}}}}{}\n",
                json_str(name),
                json_str(help),
                if i + 1 == rule_ids.len() { "" } else { "," }
            ));
        }
        out.push_str("          ]\n        }\n      },\n");
        out.push_str("      \"results\": [\n");
        for (i, v) in self.violations.iter().enumerate() {
            out.push_str("        {\n");
            out.push_str(&format!(
                "          \"ruleId\": {},\n          \"level\": \"error\",\n          \
                 \"message\": {{\"text\": {}}},\n",
                json_str(v.rule.name()),
                json_str(&v.message)
            ));
            out.push_str(&format!(
                "          \"locations\": [{}]{}\n",
                sarif_location(&v.file, v.line, None),
                if v.path.is_empty() { "" } else { "," }
            ));
            if !v.path.is_empty() {
                out.push_str("          \"codeFlows\": [{\"threadFlows\": [{\"locations\": [\n");
                for (j, h) in v.path.iter().enumerate() {
                    out.push_str(&format!(
                        "            {{\"location\": {}}}{}\n",
                        sarif_location(&h.file, h.line, Some(&h.note)),
                        if j + 1 == v.path.len() { "" } else { "," }
                    ));
                }
                out.push_str("          ]}]}]\n");
            }
            out.push_str(&format!(
                "        }}{}\n",
                if i + 1 == self.violations.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        out.push_str("      ]\n    }\n  ]\n}\n");
        out
    }
}

fn sarif_location(file: &str, line: u32, note: Option<&str>) -> String {
    let msg = note
        .map(|n| format!("\"message\": {{\"text\": {}}}, ", json_str(n)))
        .unwrap_or_default();
    format!(
        "{{{}\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": {}}}, \
         \"region\": {{\"startLine\": {}}}}}}}",
        msg,
        json_str(file),
        line.max(1)
    )
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleId;
    use crate::taint::Hop;

    fn sample() -> AuditReport {
        AuditReport {
            files_scanned: 1,
            crates_scanned: 1,
            violations: vec![Violation {
                file: "a \"b\".rs".into(),
                line: 3,
                rule: RuleId::WallClock,
                message: "x\ny".into(),
                path: Vec::new(),
            }],
            stale_allows: vec![StaleAllow {
                file: "c.rs".into(),
                line: 9,
                rule: "wall-clock".into(),
            }],
        }
    }

    #[test]
    fn json_escapes_and_renders() {
        let report = sample();
        let json = report.render_json();
        assert!(json.contains("\\\"b\\\""));
        assert!(json.contains("\\n"));
        assert!(json.contains("\"clean\": false"));
        let human = report.render_human();
        assert!(human.contains("a \"b\".rs:3: [wall-clock]"));
    }

    #[test]
    fn stale_allows_carry_rule_and_line_in_json() {
        let json = sample().render_json();
        assert!(json.contains("\"stale_allows\": ["));
        assert!(
            json.contains("{\"file\": \"c.rs\", \"line\": 9, \"rule\": \"wall-clock\"}"),
            "{json}"
        );
    }

    #[test]
    fn taint_paths_render_in_all_formats() {
        let mut report = sample();
        report.stale_allows.clear();
        report.violations = vec![Violation {
            file: "b.rs".into(),
            line: 7,
            rule: RuleId::TaintWallClock,
            message: "wall-clock value reaches stream-hash sink `fnv1a`".into(),
            path: vec![
                Hop {
                    file: "a.rs".into(),
                    line: 2,
                    note: "wall-clock read `Instant::now()`".into(),
                },
                Hop {
                    file: "b.rs".into(),
                    line: 7,
                    note: "passed to `fnv1a` (stream-hash sink)".into(),
                },
            ],
        }];
        let human = report.render_human();
        assert!(human.contains("source  a.rs:2"), "{human}");
        assert!(human.contains("then  b.rs:7"), "{human}");
        let json = report.render_json();
        assert!(json.contains("\"path\": [{\"file\": \"a.rs\""), "{json}");
        let sarif = report.render_sarif();
        assert!(sarif.contains("\"codeFlows\""), "{sarif}");
        assert!(sarif.contains("\"startLine\": 2"), "{sarif}");
        assert!(sarif.contains("taint-wall-clock"), "{sarif}");
    }

    #[test]
    fn clean_report_renders_empty_array() {
        let report = AuditReport::default();
        assert!(report.clean());
        assert!(report.render_json().contains("\"violations\": [\n  ]"));
        assert!(report.render_sarif().contains("\"results\": [\n      ]"));
    }
}
