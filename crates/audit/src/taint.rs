//! Intra-procedural taint dataflow over the CFGs built by
//! [`crate::cfg`].
//!
//! Values carry *witnesses*: where a nondeterministic quantity was
//! born (a wall-clock read, a hash-iteration, an address cast, …) and
//! the hop chain it travelled. A finding is produced when a witnessed
//! value reaches a *sink* — a call whose result feeds the determinism
//! contract (stream hash, fingerprint, checkpoint, metrics merge,
//! event-queue ordering key).
//!
//! Cross-function flow is handled by [`crate::summary`]: parameters
//! are seeded with `Origin::Param(i)` markers, and the per-function
//! summary records which parameters reach sinks and which taints (or
//! parameters) flow to the return value.
//!
//! The analysis itself must satisfy the contract it polices: every
//! container here is a `BTreeMap`/`BTreeSet`, witness sets are
//! hop-normalized (one witness per origin, shortest chain wins) so the
//! fixpoint is deterministic and terminating.

use std::collections::{BTreeMap, BTreeSet};

use crate::cfg::{Cfg, Instr, Rv};
use crate::rules::RuleId;
use crate::summary::{FnSummary, SinkTrace};

/// How many hops a witness chain may record before it stops growing.
pub const MAX_HOPS: usize = 12;
/// How many distinct witnesses a single value may carry.
pub const MAX_WITNESSES: usize = 8;
/// Hard cap on intra-function fixpoint passes.
const MAX_PASSES: usize = 24;

/// The seven nondeterminism source families the analyzer tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TaintKind {
    WallClock,
    HashOrder,
    Addr,
    Env,
    Relaxed,
    FloatOrder,
    ThreadId,
}

impl TaintKind {
    pub const ALL: [TaintKind; 7] = [
        TaintKind::WallClock,
        TaintKind::HashOrder,
        TaintKind::Addr,
        TaintKind::Env,
        TaintKind::Relaxed,
        TaintKind::FloatOrder,
        TaintKind::ThreadId,
    ];

    pub fn rule(self) -> RuleId {
        match self {
            TaintKind::WallClock => RuleId::TaintWallClock,
            TaintKind::HashOrder => RuleId::TaintHashOrder,
            TaintKind::Addr => RuleId::TaintAddr,
            TaintKind::Env => RuleId::TaintEnv,
            TaintKind::Relaxed => RuleId::TaintRelaxed,
            TaintKind::FloatOrder => RuleId::TaintFloatOrder,
            TaintKind::ThreadId => RuleId::TaintThreadId,
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            TaintKind::WallClock => "wall-clock",
            TaintKind::HashOrder => "hash-iteration-order",
            TaintKind::Addr => "address-as-value",
            TaintKind::Env => "environment",
            TaintKind::Relaxed => "relaxed-atomic",
            TaintKind::FloatOrder => "float-reduction-order",
            TaintKind::ThreadId => "thread-id",
        }
    }

    /// The PR-3 lexical rule whose `audit:allow` at the *source* site
    /// also covers this taint kind, so existing annotations (e.g. the
    /// approved `Instant::now` in the bench harness) keep working.
    pub fn base_rule(self) -> Option<RuleId> {
        match self {
            TaintKind::WallClock => Some(RuleId::WallClock),
            TaintKind::HashOrder => Some(RuleId::HashIteration),
            _ => None,
        }
    }
}

/// The determinism-contract surfaces taint must not reach.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SinkKind {
    StreamHash,
    Fingerprint,
    Checkpoint,
    MetricsMerge,
    EventKey,
}

impl SinkKind {
    pub const ALL: [SinkKind; 5] = [
        SinkKind::StreamHash,
        SinkKind::Fingerprint,
        SinkKind::Checkpoint,
        SinkKind::MetricsMerge,
        SinkKind::EventKey,
    ];

    pub fn name(self) -> &'static str {
        match self {
            SinkKind::StreamHash => "stream-hash",
            SinkKind::Fingerprint => "fingerprint",
            SinkKind::Checkpoint => "checkpoint",
            SinkKind::MetricsMerge => "metrics-merge",
            SinkKind::EventKey => "event-key",
        }
    }
}

/// One step of a source→sink path.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Hop {
    pub file: String,
    pub line: u32,
    pub note: String,
}

/// Where a witness was born: a concrete source, or "whatever the
/// caller passes for parameter `i`" (resolved by the summary pass).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Origin {
    Source(TaintKind),
    Param(usize),
}

/// A tracked taint on a value. `carrier` marks latent hash-order
/// taint: a `HashMap` value itself is fine to store or query; only
/// observing its iteration order converts the carrier into a
/// reportable witness.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Witness {
    pub origin: Origin,
    pub carrier: bool,
    pub hops: Vec<Hop>,
}

/// A confirmed source→sink flow.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct TaintFinding {
    pub rule: RuleId,
    pub kind: TaintKind,
    pub sink: SinkKind,
    /// Sink location (where the report points).
    pub file: String,
    pub line: u32,
    pub message: String,
    /// Full path; `hops[0]` is the source site.
    pub hops: Vec<Hop>,
}

impl TaintFinding {
    /// The source site (first hop), used for allow-matching.
    pub fn source(&self) -> (&str, u32) {
        self.hops
            .first()
            .map(|h| (h.file.as_str(), h.line))
            .unwrap_or((self.file.as_str(), self.line))
    }
}

/// Result of analyzing one function body.
pub struct FnAnalysis {
    pub findings: Vec<TaintFinding>,
    pub summary: FnSummary,
}

fn push_hop(hops: &[Hop], hop: Hop) -> Vec<Hop> {
    let mut out = hops.to_vec();
    if out.len() < MAX_HOPS {
        out.push(hop);
    }
    out
}

/// Insert a witness, keeping at most one per `(origin, carrier)` key
/// (shortest hop chain wins) and at most [`MAX_WITNESSES`] total.
/// Returns whether the set changed.
pub fn absorb(set: &mut BTreeSet<Witness>, w: Witness) -> bool {
    if let Some(existing) = set
        .iter()
        .find(|e| e.origin == w.origin && e.carrier == w.carrier)
        .cloned()
    {
        if existing.hops.len() <= w.hops.len() {
            return false;
        }
        set.remove(&existing);
    }
    set.insert(w);
    while set.len() > MAX_WITNESSES {
        let last = set.iter().next_back().cloned();
        if let Some(last) = last {
            set.remove(&last);
        }
    }
    true
}

/// Methods that observe a hash container's iteration order.
const ITER_METHODS: &[&str] = &[
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "iter",
    "iter_mut",
    "keys",
    "retain",
    "values",
    "values_mut",
];

/// Calls whose result is known not to carry its inputs' taint.
const PROPAGATION_STOPS: &[&str] = &["capacity", "is_empty", "len"];

/// Atomic read-modify-write / load names that take an `Ordering`.
const ATOMIC_OPS: &[&str] = &[
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_and",
    "fetch_max",
    "fetch_min",
    "fetch_or",
    "fetch_sub",
    "fetch_update",
    "fetch_xor",
    "load",
    "swap",
];

const INT_CAST_TYPES: &[&str] = &["i64", "isize", "u128", "u64", "usize"];

fn is_relaxed_const(rv: &Rv) -> bool {
    match rv {
        Rv::Const(p) => p.ends_with("::Relaxed"),
        Rv::Var(n) => n == "Relaxed",
        Rv::Tmp(_) => false,
    }
}

/// Is this call itself a taint source? Returns kind, a human note for
/// the first hop, and whether the taint starts latent (carrier).
fn source_of(name: &str, full: &str, args: &[Rv]) -> Option<(TaintKind, String, bool)> {
    if name == "now" && (full.contains("Instant") || full.contains("SystemTime")) {
        return Some((
            TaintKind::WallClock,
            format!("wall-clock read `{full}()`"),
            false,
        ));
    }
    if name == "elapsed" || name == "duration_since" || name == "wall_clock" {
        return Some((
            TaintKind::WallClock,
            format!("wall-clock read `{name}()`"),
            false,
        ));
    }
    if name == "current" && full.contains("thread") {
        return Some((
            TaintKind::ThreadId,
            format!("thread identity read `{full}()`"),
            false,
        ));
    }
    if matches!(name, "var" | "var_os" | "vars" | "vars_os") && full.contains("env::") {
        return Some((
            TaintKind::Env,
            format!("environment read `{full}()`"),
            false,
        ));
    }
    for carrier in ["HashMap::", "HashSet::", "RandomState::"] {
        if full.contains(carrier) {
            return Some((
                TaintKind::HashOrder,
                format!(
                    "`{}` built here (iteration order is seeded per-process)",
                    carrier.trim_end_matches("::")
                ),
                true,
            ));
        }
    }
    if matches!(
        name,
        "par_iter" | "into_par_iter" | "par_bridge" | "par_chunks"
    ) {
        return Some((
            TaintKind::FloatOrder,
            format!("unordered parallel reduction source `{name}()`"),
            false,
        ));
    }
    if ATOMIC_OPS.contains(&name) && args.iter().any(is_relaxed_const) {
        return Some((
            TaintKind::Relaxed,
            format!("`Ordering::Relaxed` atomic `{name}`"),
            false,
        ));
    }
    None
}

fn sink_of(name: &str) -> Option<SinkKind> {
    match name {
        "fnv1a" | "fnv1a_extend" => Some(SinkKind::StreamHash),
        "fingerprint" | "fingerprint_v2" => Some(SinkKind::Fingerprint),
        "write_atomic" | "save" | "save_checkpoint" => Some(SinkKind::Checkpoint),
        "merge" => Some(SinkKind::MetricsMerge),
        "schedule" | "reschedule" => Some(SinkKind::EventKey),
        _ => None,
    }
}

/// Dedup key for findings: one report per (rule, sink site, source
/// site); shortest hop chain wins.
type FindingKey = (&'static str, String, u32, String, u32);

struct Analyzer<'a> {
    file: &'a str,
    summaries: &'a BTreeMap<String, FnSummary>,
    state: BTreeMap<Rv, BTreeSet<Witness>>,
    findings: BTreeMap<FindingKey, TaintFinding>,
    summary: FnSummary,
    report_sinks: bool,
    changed: bool,
}

impl<'a> Analyzer<'a> {
    fn taints(&self, rv: &Rv) -> BTreeSet<Witness> {
        self.state.get(rv).cloned().unwrap_or_default()
    }

    fn add(&mut self, rv: &Rv, w: Witness) {
        if matches!(rv, Rv::Const(_)) {
            return;
        }
        let set = self.state.entry(rv.clone()).or_default();
        if absorb(set, w) {
            self.changed = true;
        }
    }

    fn record_finding(&mut self, kind: TaintKind, sink: SinkKind, callee: &str, hops: Vec<Hop>) {
        let (sfile, sline) = hops
            .first()
            .map(|h| (h.file.clone(), h.line))
            .unwrap_or_else(|| (self.file.to_string(), 0));
        let (file, line) = hops
            .last()
            .map(|h| (h.file.clone(), h.line))
            .unwrap_or_else(|| (self.file.to_string(), 0));
        let key: FindingKey = (kind.rule().name(), file.clone(), line, sfile, sline);
        let message = format!(
            "{} value reaches {} sink `{}`",
            kind.label(),
            sink.name(),
            callee
        );
        let finding = TaintFinding {
            rule: kind.rule(),
            kind,
            sink,
            file,
            line,
            message,
            hops,
        };
        match self.findings.get(&key) {
            Some(old) if old.hops.len() <= finding.hops.len() => {}
            _ => {
                self.findings.insert(key, finding);
            }
        }
    }

    /// A witnessed value hit a sink call in this function.
    fn hit_sink(&mut self, sink: SinkKind, callee: &str, line: u32, w: &Witness) {
        if w.carrier {
            return;
        }
        let hops = push_hop(
            &w.hops,
            Hop {
                file: self.file.to_string(),
                line,
                note: format!("passed to `{callee}` ({} sink)", sink.name()),
            },
        );
        match w.origin {
            Origin::Source(kind) => {
                if self.report_sinks {
                    self.record_finding(kind, sink, callee, hops);
                }
            }
            Origin::Param(i) => {
                let traces = self.summary.param_sinks.entry(i).or_default();
                let trace = SinkTrace {
                    sink,
                    callee: callee.to_string(),
                    hops,
                };
                if traces.len() < MAX_WITNESSES && traces.insert(trace) {
                    self.changed = true;
                }
            }
        }
    }

    fn step(&mut self, instr: &Instr) {
        match instr {
            Instr::Copy { dst, srcs, .. } => {
                let mut gathered: Vec<Witness> = Vec::new();
                for s in srcs {
                    gathered.extend(self.taints(s));
                }
                for w in gathered {
                    self.add(dst, w);
                }
            }
            Instr::Cast {
                dst,
                src,
                ty,
                addr_like,
                line,
            } => {
                for w in self.taints(src) {
                    self.add(dst, w);
                }
                if *addr_like && INT_CAST_TYPES.contains(&ty.as_str()) {
                    let w = Witness {
                        origin: Origin::Source(TaintKind::Addr),
                        carrier: false,
                        hops: vec![Hop {
                            file: self.file.to_string(),
                            line: *line,
                            note: format!("address observed as integer (`as {ty}`)"),
                        }],
                    };
                    self.add(dst, w);
                }
            }
            Instr::Ret { src, .. } => {
                if let Some(src) = src {
                    for w in self.taints(src) {
                        if absorb(&mut self.summary.ret, w) {
                            self.changed = true;
                        }
                    }
                }
            }
            Instr::Call {
                dst,
                name,
                full,
                recv,
                args,
                line,
                is_method,
            } => self.call(dst, name, full, recv.as_ref(), args, *line, *is_method),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn call(
        &mut self,
        dst: &Rv,
        name: &str,
        full: &str,
        recv: Option<&Rv>,
        args: &[Rv],
        line: u32,
        is_method: bool,
    ) {
        // 1. Is the call itself a source?
        if let Some((kind, note, carrier)) = source_of(name, full, args) {
            let w = Witness {
                origin: Origin::Source(kind),
                carrier,
                hops: vec![Hop {
                    file: self.file.to_string(),
                    line,
                    note,
                }],
            };
            self.add(dst, w);
        }

        // 2. Iterating a hash carrier makes its order observable.
        if is_method && ITER_METHODS.contains(&name) {
            if let Some(recv) = recv {
                let carriers: Vec<Witness> = self
                    .taints(recv)
                    .into_iter()
                    .filter(|w| w.carrier)
                    .collect();
                for w in carriers {
                    let hops = push_hop(
                        &w.hops,
                        Hop {
                            file: self.file.to_string(),
                            line,
                            note: format!("iteration order observed via `.{name}()`"),
                        },
                    );
                    self.add(
                        dst,
                        Witness {
                            origin: w.origin,
                            carrier: false,
                            hops,
                        },
                    );
                }
            }
        }

        // 3. Sink check on receiver and every argument.
        if let Some(sink) = sink_of(name) {
            let mut inputs: Vec<Rv> = Vec::new();
            if let Some(recv) = recv {
                inputs.push(recv.clone());
            }
            inputs.extend(args.iter().cloned());
            for rv in &inputs {
                for w in self.taints(rv) {
                    self.hit_sink(sink, name, line, &w);
                }
            }
        }

        // 4. Apply the callee's summary if we have one.
        let summary = self.summaries.get(name).cloned();
        if let Some(s) = &summary {
            for w in &s.ret {
                match w.origin {
                    Origin::Source(_) => {
                        let hops = push_hop(
                            &w.hops,
                            Hop {
                                file: self.file.to_string(),
                                line,
                                note: format!("returned by `{name}`"),
                            },
                        );
                        self.add(
                            dst,
                            Witness {
                                origin: w.origin.clone(),
                                carrier: w.carrier,
                                hops,
                            },
                        );
                    }
                    Origin::Param(i) => {
                        if let Some(arg) = args.get(i) {
                            for aw in self.taints(arg) {
                                let hops = push_hop(
                                    &aw.hops,
                                    Hop {
                                        file: self.file.to_string(),
                                        line,
                                        note: format!("through `{name}`"),
                                    },
                                );
                                self.add(
                                    dst,
                                    Witness {
                                        origin: aw.origin,
                                        carrier: aw.carrier || w.carrier,
                                        hops,
                                    },
                                );
                            }
                        }
                    }
                }
            }
            for (i, traces) in &s.param_sinks {
                let Some(arg) = args.get(*i) else { continue };
                for aw in self.taints(arg) {
                    if aw.carrier {
                        continue;
                    }
                    for trace in traces {
                        let mut hops = push_hop(
                            &aw.hops,
                            Hop {
                                file: self.file.to_string(),
                                line,
                                note: format!("passed to `{name}`"),
                            },
                        );
                        for h in &trace.hops {
                            if hops.len() < MAX_HOPS {
                                hops.push(h.clone());
                            }
                        }
                        match aw.origin {
                            Origin::Source(kind) => {
                                if self.report_sinks {
                                    self.record_finding(kind, trace.sink, &trace.callee, hops);
                                }
                            }
                            Origin::Param(j) => {
                                let own = self.summary.param_sinks.entry(j).or_default();
                                let t = SinkTrace {
                                    sink: trace.sink,
                                    callee: trace.callee.clone(),
                                    hops,
                                };
                                if own.len() < MAX_WITNESSES && own.insert(t) {
                                    self.changed = true;
                                }
                            }
                        }
                    }
                }
            }
        }

        // 5. Default propagation through unknown callees: the result
        //    is assumed to derive from receiver and arguments.
        if summary.is_none() && !PROPAGATION_STOPS.contains(&name) {
            let mut inputs: Vec<Rv> = Vec::new();
            if let Some(recv) = recv {
                inputs.push(recv.clone());
            }
            inputs.extend(args.iter().cloned());
            let keep_carrier = matches!(name, "clone" | "to_owned");
            let mut gathered: Vec<Witness> = Vec::new();
            for rv in &inputs {
                for w in self.taints(rv) {
                    if w.carrier && !keep_carrier {
                        continue;
                    }
                    gathered.push(w);
                }
            }
            for w in gathered {
                self.add(dst, w);
            }
        }
    }
}

/// Analyze one function against the current summary environment.
pub fn analyze_fn(cfg: &Cfg, file: &str, summaries: &BTreeMap<String, FnSummary>) -> FnAnalysis {
    let mut a = Analyzer {
        file,
        summaries,
        state: BTreeMap::new(),
        findings: BTreeMap::new(),
        summary: FnSummary::default(),
        report_sinks: !cfg.in_test,
        changed: false,
    };
    for (i, p) in cfg.params.iter().enumerate() {
        a.state
            .entry(Rv::Var(p.clone()))
            .or_default()
            .insert(Witness {
                origin: Origin::Param(i),
                carrier: false,
                hops: Vec::new(),
            });
    }
    for _pass in 0..MAX_PASSES {
        a.changed = false;
        for block in &cfg.blocks {
            for instr in &block.instrs {
                a.step(instr);
            }
        }
        if !a.changed {
            break;
        }
    }
    FnAnalysis {
        findings: a.findings.into_values().collect(),
        summary: a.summary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::lower_fn;
    use crate::lexer::lex;
    use crate::parse::parse_file;

    fn analyze(src: &str) -> FnAnalysis {
        let fns = parse_file(&lex(src));
        assert_eq!(fns.len(), 1, "{fns:#?}");
        let cfg = lower_fn(&fns[0]);
        analyze_fn(&cfg, "t.rs", &BTreeMap::new())
    }

    #[test]
    fn wall_clock_to_stream_hash_is_found() {
        let a = analyze(
            "fn f() -> u64 { let t = std::time::Instant::now(); let n = t.as_nanos() as u64; fnv1a(&n.to_le_bytes()) }",
        );
        assert_eq!(a.findings.len(), 1, "{:#?}", a.findings);
        let f = &a.findings[0];
        assert_eq!(f.kind, TaintKind::WallClock);
        assert_eq!(f.sink, SinkKind::StreamHash);
        assert!(f.hops.len() >= 2);
    }

    #[test]
    fn hash_carrier_only_fires_on_iteration() {
        let quiet = analyze(
            "fn f(m: u64) -> u64 { let h = HashMap::new(); h.insert(m, m); fnv1a(&m.to_le_bytes()) }",
        );
        assert!(quiet.findings.is_empty(), "{:#?}", quiet.findings);
        let loud = analyze(
            "fn f() -> u64 { let h = HashMap::new(); let mut acc = 0u64; for k in h.keys() { acc = fnv1a_extend(acc, k); } acc }",
        );
        assert_eq!(loud.findings.len(), 1, "{:#?}", loud.findings);
        assert_eq!(loud.findings[0].kind, TaintKind::HashOrder);
    }

    #[test]
    fn param_taint_lands_in_summary_not_findings() {
        let a = analyze("fn f(x: u64) -> u64 { fnv1a(&x.to_le_bytes()) }");
        assert!(a.findings.is_empty());
        assert!(a.summary.param_sinks.contains_key(&0), "{:#?}", a.summary);
    }

    #[test]
    fn addr_cast_to_event_key_is_found() {
        let a = analyze(
            "fn f(q: &mut Q, e: &E) { let key = e as *const E as usize; q.schedule(key as u64, 0); }",
        );
        assert_eq!(a.findings.len(), 1, "{:#?}", a.findings);
        assert_eq!(a.findings[0].kind, TaintKind::Addr);
        assert_eq!(a.findings[0].sink, SinkKind::EventKey);
    }

    #[test]
    fn relaxed_load_to_fingerprint_is_found() {
        let a = analyze(
            "fn f(c: &AtomicU64) -> u64 { let v = c.load(Ordering::Relaxed); fingerprint(v) }",
        );
        assert_eq!(a.findings.len(), 1, "{:#?}", a.findings);
        assert_eq!(a.findings[0].kind, TaintKind::Relaxed);
    }

    #[test]
    fn env_read_to_checkpoint_is_found() {
        let a = analyze(
            "fn f(p: &Path) { let v = std::env::var(\"SEED\").unwrap_or_default(); write_atomic(p, v.as_bytes()); }",
        );
        assert!(
            a.findings
                .iter()
                .any(|f| f.kind == TaintKind::Env && f.sink == SinkKind::Checkpoint),
            "{:#?}",
            a.findings
        );
    }

    #[test]
    fn test_functions_do_not_report() {
        let fns = parse_file(&lex(
            "#[cfg(test)] mod tests { fn f() -> u64 { let t = Instant::now(); fnv1a(&(t.elapsed().as_nanos() as u64).to_le_bytes()) } }",
        ));
        assert_eq!(fns.len(), 1);
        assert!(fns[0].in_test);
        let cfg = lower_fn(&fns[0]);
        let a = analyze_fn(&cfg, "t.rs", &BTreeMap::new());
        assert!(a.findings.is_empty(), "{:#?}", a.findings);
    }

    #[test]
    fn len_stops_propagation() {
        let a = analyze(
            "fn f() -> u64 { let h = HashMap::new(); let n = h.len() as u64; fnv1a(&n.to_le_bytes()) }",
        );
        assert!(a.findings.is_empty(), "{:#?}", a.findings);
    }
}
