//! A lightweight Rust tokenizer: just enough lexical structure for the
//! determinism ruleset — identifiers, punctuation, literals — with
//! string, comment and attribute awareness so rules never fire inside
//! a string literal or a doc comment, and so `#[cfg(test)]` / `#[test]`
//! regions can be located without pulling in `syn` (the workspace
//! builds offline from vendored stand-ins; the auditor stays
//! dependency-free).

/// Kinds of tokens the ruleset cares about. Literals keep no text —
/// their only job is to *not* be identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Single punctuation character (`::` arrives as two `:` tokens).
    Punct(char),
    /// String, raw-string, byte-string or char literal.
    Literal,
    /// Numeric literal.
    Number,
    /// Lifetime (`'a`).
    Lifetime,
}

/// One token with enough position info for diagnostics.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    /// Identifier text; empty for non-identifiers.
    pub text: String,
    /// 1-based source line.
    pub line: u32,
}

impl Token {
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// A `//` or `/* */` comment, carried separately from the token stream
/// so the `audit:allow` grammar can be parsed out of it.
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
}

/// The lexed file: code tokens plus the comment side-channel.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Tokenize `src`. Unterminated literals or comments are tolerated
/// (the rest of the file is swallowed into the literal): the auditor
/// must never panic on weird-but-compiling source, and rustc rejects
/// genuinely unterminated ones before we ever see them.
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    macro_rules! bump_lines {
        ($range:expr) => {
            line += bytes[$range].iter().filter(|&&b| b == b'\n').count() as u32
        };
    }

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    text: src[start..i].to_string(),
                    line,
                });
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                let start = i;
                let start_line = line;
                let mut depth = 1u32;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        if bytes[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                out.comments.push(Comment {
                    text: src[start..i.min(src.len())].to_string(),
                    line: start_line,
                });
            }
            b'"' => {
                let end = skip_string(bytes, i);
                // Capture the line *before* bumping past the literal's
                // newlines: a multi-line string tokenizes at its start
                // line, not its end line (the raw-string arm below
                // already did this; this arm used to report the end).
                let tok_line = line;
                bump_lines!(i..end);
                out.tokens.push(Token {
                    kind: TokKind::Literal,
                    text: String::new(),
                    line: tok_line,
                });
                i = end;
            }
            b'r' | b'b' if is_raw_or_byte_string(bytes, i) => {
                let end = skip_raw_or_byte_string(bytes, i);
                let tok_line = line;
                bump_lines!(i..end);
                out.tokens.push(Token {
                    kind: TokKind::Literal,
                    text: String::new(),
                    line: tok_line,
                });
                i = end;
            }
            b'\'' => {
                // Lifetime vs char literal: `'ident` not followed by a
                // closing quote is a lifetime.
                let (end, is_lifetime) = skip_char_or_lifetime(bytes, i);
                out.tokens.push(Token {
                    kind: if is_lifetime {
                        TokKind::Lifetime
                    } else {
                        TokKind::Literal
                    },
                    text: String::new(),
                    line,
                });
                bump_lines!(i..end);
                i = end;
            }
            b'0'..=b'9' => {
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'.')
                {
                    // Stop a number at `..` (range) or `.method()`.
                    if bytes[i] == b'.' && (i + 1 >= bytes.len() || !bytes[i + 1].is_ascii_digit())
                    {
                        break;
                    }
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokKind::Number,
                    text: String::new(),
                    line,
                });
            }
            b if b.is_ascii_alphabetic() || b == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokKind::Ident,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            _ => {
                out.tokens.push(Token {
                    kind: TokKind::Punct(b as char),
                    text: String::new(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Skip a `"..."` string starting at `i` (which points at the quote);
/// returns the index just past the closing quote.
fn skip_string(bytes: &[u8], i: usize) -> usize {
    let mut j = i + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    bytes.len()
}

/// Is `r"`, `r#`, `b"`, `br"`, `br#` at position `i` the start of a
/// raw/byte string (as opposed to an identifier starting with r/b)?
fn is_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if j < bytes.len() && bytes[j] == b'r' {
        j += 1;
        while j < bytes.len() && bytes[j] == b'#' {
            j += 1;
        }
    }
    j > i && j < bytes.len() && bytes[j] == b'"'
}

fn skip_raw_or_byte_string(bytes: &[u8], i: usize) -> usize {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    let mut hashes = 0usize;
    if j < bytes.len() && bytes[j] == b'r' {
        j += 1;
        while j < bytes.len() && bytes[j] == b'#' {
            hashes += 1;
            j += 1;
        }
    }
    if j >= bytes.len() || bytes[j] != b'"' {
        return j; // plain byte string `b"` handled below
    }
    j += 1;
    if hashes == 0 && bytes[i] == b'b' && bytes[i + 1] == b'"' {
        // b"..." behaves like a normal string (escapes allowed).
        return skip_string(bytes, i + 1);
    }
    while j < bytes.len() {
        if bytes[j] == b'"' {
            let mut k = 0usize;
            while k < hashes && j + 1 + k < bytes.len() && bytes[j + 1 + k] == b'#' {
                k += 1;
            }
            if k == hashes {
                return j + 1 + hashes;
            }
        }
        j += 1;
    }
    bytes.len()
}

/// Distinguish `'a'` / `'\n'` (char literal) from `'a` (lifetime).
/// Returns (index past the token, is_lifetime).
fn skip_char_or_lifetime(bytes: &[u8], i: usize) -> (usize, bool) {
    let mut j = i + 1;
    if j >= bytes.len() {
        return (j, false);
    }
    if bytes[j] == b'\\' {
        // Escaped char literal.
        j += 2;
        while j < bytes.len() && bytes[j] != b'\'' {
            j += 1;
        }
        return ((j + 1).min(bytes.len()), false);
    }
    if bytes[j].is_ascii_alphabetic() || bytes[j] == b'_' {
        // Could be 'x' (char) or 'xyz (lifetime): a lifetime has no
        // closing quote right after its (possibly multi-char) ident.
        let mut k = j;
        while k < bytes.len() && (bytes[k].is_ascii_alphanumeric() || bytes[k] == b'_') {
            k += 1;
        }
        if k < bytes.len() && bytes[k] == b'\'' && k == j + 1 {
            return (k + 1, false); // 'x'
        }
        return (k, true); // 'lifetime
    }
    // Punctuation char literal like '(' or ' '.
    while j < bytes.len() && bytes[j] != b'\'' {
        j += 1;
    }
    ((j + 1).min(bytes.len()), false)
}

/// Byte-offset-free test-region finder: returns, per token index,
/// whether the token sits inside a `#[cfg(test)] mod`, `#[test] fn` or
/// `#[bench] fn` body. Works on the token stream alone: an attribute
/// sets a pending flag that sticks to the next `{ ... }` body at the
/// depth where the attribute appeared.
pub fn test_regions(tokens: &[Token]) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let mut depth: i32 = 0;
    // Open test regions: region is active while depth > entry depth.
    let mut region_stack: Vec<i32> = Vec::new();
    let mut pending_attr = false;
    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        // Attribute recognition: `#` `[` ...
        if t.is_punct('#') && i + 1 < tokens.len() && tokens[i + 1].is_punct('[') {
            // Scan the attribute's bracket group.
            let mut j = i + 2;
            let mut bdepth = 1i32;
            let mut is_test_attr = false;
            let mut first = true;
            let mut attr_name = String::new();
            while j < tokens.len() && bdepth > 0 {
                match tokens[j].kind {
                    TokKind::Punct('[') => bdepth += 1,
                    TokKind::Punct(']') => bdepth -= 1,
                    TokKind::Ident => {
                        if first {
                            attr_name = tokens[j].text.clone();
                            first = false;
                        } else if attr_name == "cfg" && tokens[j].text == "test" {
                            is_test_attr = true;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            if attr_name == "test" || attr_name == "bench" {
                is_test_attr = true;
            }
            if is_test_attr {
                pending_attr = true;
            }
            // Attribute tokens inherit the current region state.
            in_test[i..j].fill(!region_stack.is_empty());
            i = j;
            continue;
        }
        match t.kind {
            TokKind::Punct('{') => {
                if pending_attr {
                    region_stack.push(depth);
                    pending_attr = false;
                }
                depth += 1;
            }
            TokKind::Punct('}') => {
                depth -= 1;
                if let Some(&entry) = region_stack.last() {
                    if depth <= entry {
                        region_stack.pop();
                    }
                }
            }
            TokKind::Punct(';') => {
                // `#[cfg(test)] mod foo;` — body lives elsewhere.
                pending_attr = false;
            }
            _ => {}
        }
        in_test[i] = !region_stack.is_empty() || (pending_attr && t.is_punct('{'));
        i += 1;
    }
    in_test
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let src = r##"
            // HashMap in a comment
            /* SystemTime in a block /* nested */ comment */
            let s = "Instant::now() in a string";
            let r = r#"thread_rng in a raw string"#;
            let c = 'x';
            let real = HashMap::new();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"SystemTime".to_string()));
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(!ids.contains(&"thread_rng".to_string()));

        // Byte-raw strings with more than one hash must not resume
        // tokenization mid-literal: the `"#` inside the literal is not
        // its terminator (that needs `"##`).
        let multi_hash = "let b = br##\"OsRng \"# still inside\"##; let real = SystemTime::now();";
        let ids = idents(multi_hash);
        assert!(!ids.contains(&"OsRng".to_string()), "{ids:?}");
        assert!(ids.contains(&"SystemTime".to_string()), "{ids:?}");

        // An unterminated raw string at EOF swallows the rest of the
        // file rather than tokenizing its tail as code.
        let unterminated = "let ok = thread_rng; let r = r#\"HashMap never closes";
        let ids = idents(unterminated);
        assert!(ids.contains(&"thread_rng".to_string()), "{ids:?}");
        assert!(!ids.contains(&"HashMap".to_string()), "{ids:?}");
    }

    #[test]
    fn multi_line_string_token_reports_start_line() {
        let src = "let a = \"line one\nline two\nline three\";\nlet t = SystemTime::now();\n";
        let lexed = lex(src);
        let lit = lexed
            .tokens
            .iter()
            .find(|t| t.kind == TokKind::Literal)
            .expect("string literal token");
        assert_eq!(lit.line, 1, "multi-line string starts on line 1");
        let st = lexed
            .tokens
            .iter()
            .find(|t| t.is_ident("SystemTime"))
            .expect("SystemTime token");
        assert_eq!(st.line, 4, "code after the string keeps true lines");
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        let ids = idents(src);
        // Lifetime idents are Lifetime tokens, not Ident tokens.
        assert_eq!(
            ids,
            vec!["fn", "f", "x", "str", "str", "x"]
                .into_iter()
                .map(String::from)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn comments_carry_lines() {
        let lexed = lex("let a = 1;\n// audit:allow(wall-clock): because\nlet b = 2;\n");
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].line, 2);
        assert!(lexed.comments[0].text.contains("audit:allow"));
    }

    #[test]
    fn cfg_test_region_is_detected() {
        let src = r#"
            fn prod() { io().unwrap(); }
            #[cfg(test)]
            mod tests {
                fn t() { io().unwrap(); }
            }
            fn prod2() {}
        "#;
        let lexed = lex(src);
        let regions = test_regions(&lexed.tokens);
        let mut in_test_idents = Vec::new();
        let mut out_test_idents = Vec::new();
        for (t, &r) in lexed.tokens.iter().zip(&regions) {
            if t.kind == TokKind::Ident {
                if r {
                    in_test_idents.push(t.text.clone());
                } else {
                    out_test_idents.push(t.text.clone());
                }
            }
        }
        assert!(in_test_idents.contains(&"t".to_string()));
        assert!(out_test_idents.contains(&"prod".to_string()));
        assert!(out_test_idents.contains(&"prod2".to_string()));
    }

    #[test]
    fn test_fn_region_is_detected() {
        let src = r#"
            #[test]
            fn covered() { parse().unwrap(); }
            fn uncovered() { parse().unwrap(); }
        "#;
        let lexed = lex(src);
        let regions = test_regions(&lexed.tokens);
        let pairs: Vec<(String, bool)> = lexed
            .tokens
            .iter()
            .zip(&regions)
            .filter(|(t, _)| t.is_ident("unwrap"))
            .map(|(t, &r)| (t.text.clone(), r))
            .collect();
        assert_eq!(pairs.len(), 2);
        assert!(
            pairs[0].1,
            "unwrap inside #[test] fn must be in a test region"
        );
        assert!(!pairs[1].1, "unwrap outside must not");
    }
}
