//! The determinism ruleset and the token-level checkers behind it.
//!
//! Every rule is a pure function over the lexed token stream of one
//! file. Rules never fire inside string literals or comments (the
//! lexer already stripped those), and the panic-path rule additionally
//! skips `#[cfg(test)]` / `#[test]` regions — test code is allowed to
//! unwrap.

use crate::lexer::{test_regions, Comment, Lexed, TokKind, Token};

/// Stable identifiers for the rules; these names are what the
/// `// audit:allow(<rule>): <reason>` grammar refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleId {
    /// `HashMap` / `HashSet`: std hash iteration order is seeded per
    /// process (`RandomState`), so any iteration over them is a
    /// nondeterminism hazard.
    HashIteration,
    /// `Instant::now` / `SystemTime`: wall-clock reads leak host time
    /// into simulated results.
    WallClock,
    /// `thread_rng` / `from_entropy` / `OsRng` / `RandomState` /
    /// `getrandom`: entropy-seeded RNG construction.
    Entropy,
    /// `thread::spawn` / `thread::scope` / `available_parallelism`
    /// outside the harness's approved host-thread module.
    HostThread,
    /// `static mut`: shared mutable state with no ordering guarantee.
    StaticMut,
    /// `.unwrap()` / `.expect()` on an I/O or parse path in non-test
    /// code: crashes where a typed error belongs.
    PanicPath,
    /// A malformed `audit:allow` annotation (unknown rule, missing
    /// reason). Not suppressible.
    BadAllow,
}

impl RuleId {
    pub const ALL: [RuleId; 6] = [
        RuleId::HashIteration,
        RuleId::WallClock,
        RuleId::Entropy,
        RuleId::HostThread,
        RuleId::StaticMut,
        RuleId::PanicPath,
    ];

    pub fn name(self) -> &'static str {
        match self {
            RuleId::HashIteration => "hash-iteration",
            RuleId::WallClock => "wall-clock",
            RuleId::Entropy => "entropy",
            RuleId::HostThread => "host-thread",
            RuleId::StaticMut => "static-mut",
            RuleId::PanicPath => "panic-path",
            RuleId::BadAllow => "bad-allow",
        }
    }

    pub fn from_name(s: &str) -> Option<RuleId> {
        RuleId::ALL.iter().copied().find(|r| r.name() == s)
    }

    pub fn suggestion(self) -> &'static str {
        match self {
            RuleId::HashIteration => {
                "use BTreeMap/BTreeSet (ordered) or a Vec keyed by dense ids; \
                 std hash iteration order is RandomState-seeded per process"
            }
            RuleId::WallClock => {
                "route through noiselab_sim::SimTime (virtual time) or the bench \
                 crate's wall_clock() helper if this is host-side timing"
            }
            RuleId::Entropy => {
                "seed a noiselab_sim::Rng from the run seed (Rng::new / Rng::fork); \
                 entropy-seeded streams are unreproducible"
            }
            RuleId::HostThread => {
                "host threads belong to the harness's approved module \
                 (crates/core/src/harness.rs); simulated work uses Kernel::spawn"
            }
            RuleId::StaticMut => {
                "replace with a const, a thread_local, or state owned by the \
                 Kernel/harness; static mut has no deterministic ordering"
            }
            RuleId::PanicPath => {
                "return a typed error (io::Error / serde error / RunFailure) \
                 instead of unwrapping an I/O or parse result"
            }
            RuleId::BadAllow => {
                "write `// audit:allow(<rule>): <reason>` with a known rule \
                 name and a non-empty reason"
            }
        }
    }
}

/// One diagnostic: file, line, rule, message, suggestion.
#[derive(Debug, Clone)]
pub struct Violation {
    pub file: String,
    pub line: u32,
    pub rule: RuleId,
    pub message: String,
}

/// A parsed `audit:allow` annotation.
#[derive(Debug, Clone)]
struct Allow {
    line: u32,
    rule: Option<RuleId>,
    raw_rule: String,
    reason: String,
    used: bool,
}

/// Markers that put a statement on an "I/O or parse path" for the
/// panic-path rule: an `.unwrap()`/`.expect()` in the same statement as
/// one of these (called or path-qualified) is a violation.
const IO_PARSE_MARKERS: &[&str] = &[
    "read_to_string",
    "read",
    "read_dir",
    "write",
    "write_all",
    "create_dir_all",
    "remove_file",
    "remove_dir_all",
    "rename",
    "copy",
    "canonicalize",
    "metadata",
    "open",
    "from_str",
    "from_json",
    "to_json",
    "from_reader",
    "from_slice",
    "to_string_pretty",
    "to_writer",
    "parse",
    "var",
    "stdin",
    "stdout",
    "File",
    "fs",
    "env",
    "serde_json",
];

/// Parse every `audit:allow(<rule>): <reason>` annotation out of the
/// comment stream. Malformed annotations surface as [`RuleId::BadAllow`]
/// violations immediately.
fn parse_allows(comments: &[Comment], file: &str, bad: &mut Vec<Violation>) -> Vec<Allow> {
    let mut allows = Vec::new();
    for c in comments {
        let Some(pos) = c.text.find("audit:allow") else {
            continue;
        };
        let rest = &c.text[pos + "audit:allow".len()..];
        let Some(open) = rest.find('(') else {
            bad.push(Violation {
                file: file.to_string(),
                line: c.line,
                rule: RuleId::BadAllow,
                message: "audit:allow without a (rule) argument".into(),
            });
            continue;
        };
        let Some(close) = rest[open..].find(')') else {
            bad.push(Violation {
                file: file.to_string(),
                line: c.line,
                rule: RuleId::BadAllow,
                message: "audit:allow with an unclosed (rule) argument".into(),
            });
            continue;
        };
        let raw_rule = rest[open + 1..open + close].trim().to_string();
        let after = &rest[open + close + 1..];
        let reason = after
            .trim_start()
            .strip_prefix(':')
            .map(|r| r.trim().trim_end_matches("*/").trim().to_string())
            .unwrap_or_default();
        let rule = RuleId::from_name(&raw_rule);
        if rule.is_none() {
            bad.push(Violation {
                file: file.to_string(),
                line: c.line,
                rule: RuleId::BadAllow,
                message: format!("audit:allow names unknown rule '{raw_rule}'"),
            });
        }
        if reason.is_empty() {
            bad.push(Violation {
                file: file.to_string(),
                line: c.line,
                rule: RuleId::BadAllow,
                message: format!(
                    "audit:allow({raw_rule}) carries no reason; write \
                     `audit:allow({raw_rule}): <why this is safe>`"
                ),
            });
        }
        allows.push(Allow {
            line: c.line,
            rule,
            raw_rule,
            reason,
            used: false,
        });
    }
    allows
}

/// Scan one file's source under the given rule set. `host_thread_ok`
/// marks the file as an approved host-thread module (the harness).
pub fn scan_source(
    file: &str,
    src: &str,
    rules: &[RuleId],
    host_thread_ok: bool,
) -> Vec<Violation> {
    let lexed: Lexed = crate::lexer::lex(src);
    let in_test = test_regions(&lexed.tokens);
    let mut out = Vec::new();
    let mut allows = parse_allows(&lexed.comments, file, &mut out);

    let toks = &lexed.tokens;
    let mut raw: Vec<Violation> = Vec::new();

    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            // static-mut is the only two-keyword rule; both tokens are
            // idents, so the ident-only loop covers everything.
            continue;
        }
        let enabled = |r: RuleId| rules.contains(&r);
        match t.text.as_str() {
            "HashMap" | "HashSet" if enabled(RuleId::HashIteration) => {
                raw.push(Violation {
                    file: file.into(),
                    line: t.line,
                    rule: RuleId::HashIteration,
                    message: format!("use of {} in a deterministic crate", t.text),
                });
            }
            "Instant" if enabled(RuleId::WallClock) && matches_path_call(toks, i, "now") => {
                raw.push(Violation {
                    file: file.into(),
                    line: t.line,
                    rule: RuleId::WallClock,
                    message: "wall-clock read via Instant::now()".into(),
                });
            }
            "SystemTime" if enabled(RuleId::WallClock) => {
                raw.push(Violation {
                    file: file.into(),
                    line: t.line,
                    rule: RuleId::WallClock,
                    message: "wall-clock read via SystemTime".into(),
                });
            }
            "thread_rng" | "from_entropy" | "OsRng" | "RandomState" | "getrandom"
                if enabled(RuleId::Entropy) =>
            {
                raw.push(Violation {
                    file: file.into(),
                    line: t.line,
                    rule: RuleId::Entropy,
                    message: format!("entropy-seeded RNG construction via {}", t.text),
                });
            }
            "thread"
                if enabled(RuleId::HostThread)
                    && !host_thread_ok
                    && (matches_path_call(toks, i, "spawn")
                        || matches_path_call(toks, i, "scope")) =>
            {
                raw.push(Violation {
                    file: file.into(),
                    line: t.line,
                    rule: RuleId::HostThread,
                    message: "host thread creation outside the approved harness module".into(),
                });
            }
            "available_parallelism" if enabled(RuleId::HostThread) && !host_thread_ok => {
                raw.push(Violation {
                    file: file.into(),
                    line: t.line,
                    rule: RuleId::HostThread,
                    message: "host-parallelism probe outside the approved harness module".into(),
                });
            }
            "static"
                if enabled(RuleId::StaticMut)
                    && toks.get(i + 1).is_some_and(|n| n.is_ident("mut")) =>
            {
                raw.push(Violation {
                    file: file.into(),
                    line: t.line,
                    rule: RuleId::StaticMut,
                    message: "static mut item".into(),
                });
            }
            "unwrap" | "expect"
                if enabled(RuleId::PanicPath)
                    && !in_test.get(i).copied().unwrap_or(false)
                    && is_method_call(toks, i)
                    && statement_has_io_marker(toks, i) =>
            {
                raw.push(Violation {
                    file: file.into(),
                    line: t.line,
                    rule: RuleId::PanicPath,
                    message: format!(".{}() on an I/O or parse path", t.text),
                });
            }
            _ => {}
        }
    }

    // Apply allow annotations: same line or the line directly above.
    for v in raw {
        let allowed = allows
            .iter_mut()
            .find(|a| a.rule == Some(v.rule) && (a.line == v.line || a.line + 1 == v.line));
        match allowed {
            Some(a) if !a.reason.is_empty() => a.used = true,
            Some(a) => {
                // Reasonless allow: the BadAllow diagnostic already
                // queued covers it; still suppress the duplicate.
                a.used = true;
            }
            None => out.push(v),
        }
    }

    // An allow that matched nothing is itself suspicious: it will
    // silently mask a future violation on that line.
    for a in &allows {
        if !a.used && a.rule.is_some() {
            out.push(Violation {
                file: file.into(),
                line: a.line,
                rule: RuleId::BadAllow,
                message: format!(
                    "unused audit:allow({}) — no matching violation on this or the next line",
                    a.raw_rule
                ),
            });
        }
    }

    out.sort_by(|a, b| (a.line, a.rule.name()).cmp(&(b.line, b.rule.name())));
    out
}

/// `ident :: name` (possibly `ident::name(`): the path-call shape for
/// `Instant::now` and `thread::spawn`.
fn matches_path_call(toks: &[Token], i: usize, name: &str) -> bool {
    toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 3).is_some_and(|t| t.is_ident(name))
}

/// `.unwrap(` / `.expect(`: a method call, not a stray identifier.
fn is_method_call(toks: &[Token], i: usize) -> bool {
    i > 0 && toks[i - 1].is_punct('.') && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
}

/// Does the statement containing token `i` mention an I/O or parse
/// marker? The statement start is the nearest `;`, `{` or `}` looking
/// backwards — a deliberately local heuristic: `fs::read(..).unwrap()`
/// is flagged, `cpu.expect("running thread without cpu")` is not.
fn statement_has_io_marker(toks: &[Token], i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        j -= 1;
        match toks[j].kind {
            TokKind::Punct(';') | TokKind::Punct('{') | TokKind::Punct('}') => break,
            TokKind::Ident => {
                let name = toks[j].text.as_str();
                if IO_PARSE_MARKERS.contains(&name) {
                    // Require a call or path use so that a local named
                    // `parse` in an unrelated expression does not trip.
                    let next = toks.get(j + 1);
                    let is_use = next.is_some_and(|t| t.is_punct('(') || t.is_punct(':'));
                    if is_use {
                        return true;
                    }
                }
            }
            _ => {}
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> Vec<Violation> {
        scan_source("t.rs", src, &RuleId::ALL, false)
    }

    #[test]
    fn hashmap_is_flagged() {
        let v = scan("use std::collections::HashMap;\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, RuleId::HashIteration);
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn instant_type_mention_is_fine_but_now_is_not() {
        assert!(scan("fn f(t: std::time::Instant) {}\n").is_empty());
        let v = scan("let t = std::time::Instant::now();\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, RuleId::WallClock);
    }

    #[test]
    fn kernel_spawn_is_not_host_thread() {
        assert!(scan("let id = kernel.spawn(spec, behavior);\n").is_empty());
        let v = scan("std::thread::spawn(|| {});\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, RuleId::HostThread);
    }

    #[test]
    fn approved_module_may_spawn() {
        let v = scan_source(
            "harness.rs",
            "std::thread::scope(|s| { s.spawn(|| {}); });\n",
            &RuleId::ALL,
            true,
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn panic_path_needs_io_marker_and_non_test_code() {
        let v = scan("let x = std::fs::read_to_string(p).unwrap();\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, RuleId::PanicPath);
        // No marker in statement: invariant unwraps stay legal.
        assert!(scan("let c = cpu.expect(\"running thread without cpu\");\n").is_empty());
        // Same unwrap inside a test region: exempt.
        let test_src = "#[cfg(test)]\nmod tests {\n fn t() { std::fs::read(p).unwrap(); }\n}\n";
        assert!(scan(test_src).is_empty());
    }

    #[test]
    fn allow_with_reason_suppresses() {
        let src = "let t = std::time::Instant::now(); // audit:allow(wall-clock): bench banner\n";
        assert!(scan(src).is_empty());
        let above =
            "// audit:allow(wall-clock): bench banner\nlet t = std::time::Instant::now();\n";
        assert!(scan(above).is_empty());
    }

    #[test]
    fn allow_without_reason_is_bad_allow() {
        let src = "let t = std::time::Instant::now(); // audit:allow(wall-clock)\n";
        let v = scan(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, RuleId::BadAllow);
    }

    #[test]
    fn unknown_rule_in_allow_is_bad_allow() {
        let v = scan("// audit:allow(no-such-rule): whatever\n");
        assert!(v.iter().any(|v| v.rule == RuleId::BadAllow), "{v:?}");
    }

    #[test]
    fn unused_allow_is_flagged() {
        let v = scan("// audit:allow(wall-clock): stale annotation\nlet x = 1;\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, RuleId::BadAllow);
        assert!(v[0].message.contains("unused"));
    }

    #[test]
    fn static_mut_is_flagged() {
        let v = scan("static mut COUNTER: u64 = 0;\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, RuleId::StaticMut);
    }
}
