//! The determinism ruleset: token-level (lexical) checkers plus the
//! rule identities shared with the taint analyzer.
//!
//! Every lexical rule is a pure function over the lexed token stream
//! of one file. Rules never fire inside string literals or comments
//! (the lexer already stripped those), and the panic-path rule
//! additionally skips `#[cfg(test)]` / `#[test]` regions — test code
//! is allowed to unwrap.
//!
//! The seven `Taint*` rules are produced by [`crate::taint`] /
//! [`crate::summary`] rather than here, but they share the same
//! [`RuleId`] namespace so `// audit:allow(<rule>)` annotations,
//! stale-allow detection, and per-crate policy tables treat both
//! generations of rules uniformly. The six PR-3 lexical rules are, in
//! taint terms, degenerate: source and sink at the same token.

use crate::lexer::{test_regions, Comment, Lexed, TokKind, Token};
use crate::taint::Hop;

/// Stable identifiers for the rules; these names are what the
/// `// audit:allow(<rule>): <reason>` grammar refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// `HashMap` / `HashSet`: std hash iteration order is seeded per
    /// process (`RandomState`), so any iteration over them is a
    /// nondeterminism hazard.
    HashIteration,
    /// `Instant::now` / `SystemTime`: wall-clock reads leak host time
    /// into simulated results.
    WallClock,
    /// `thread_rng` / `from_entropy` / `OsRng` / `RandomState` /
    /// `getrandom`: entropy-seeded RNG construction.
    Entropy,
    /// `thread::spawn` / `thread::scope` / `available_parallelism`
    /// outside the harness's approved host-thread module.
    HostThread,
    /// `static mut`: shared mutable state with no ordering guarantee.
    StaticMut,
    /// `.unwrap()` / `.expect()` on an I/O or parse path in non-test
    /// code: crashes where a typed error belongs.
    PanicPath,
    /// A malformed `audit:allow` annotation (unknown rule, missing
    /// reason). Not suppressible.
    BadAllow,
    /// Taint: a wall-clock value (including one laundered through
    /// variables and function calls) reaches a determinism sink.
    TaintWallClock,
    /// Taint: a hash-container iteration-order-dependent value reaches
    /// a determinism sink.
    TaintHashOrder,
    /// Taint: an address observed as an integer (`&x as *const _ as
    /// usize`) reaches a determinism sink — ASLR makes it run-unique.
    TaintAddr,
    /// Taint: an environment-variable read reaches a determinism sink.
    TaintEnv,
    /// Taint: a `Ordering::Relaxed` atomic read reaches a determinism
    /// sink — unsynchronized interleavings make the value racy.
    TaintRelaxed,
    /// Taint: an unordered (parallel) float reduction reaches a
    /// determinism sink — float addition is not associative.
    TaintFloatOrder,
    /// Taint: a thread-identity value reaches a determinism sink.
    TaintThreadId,
}

impl RuleId {
    /// Every rule, lexical and taint.
    pub const ALL: [RuleId; 13] = [
        RuleId::HashIteration,
        RuleId::WallClock,
        RuleId::Entropy,
        RuleId::HostThread,
        RuleId::StaticMut,
        RuleId::PanicPath,
        RuleId::TaintWallClock,
        RuleId::TaintHashOrder,
        RuleId::TaintAddr,
        RuleId::TaintEnv,
        RuleId::TaintRelaxed,
        RuleId::TaintFloatOrder,
        RuleId::TaintThreadId,
    ];

    /// The PR-3 token-level rules only.
    pub const LEXICAL: [RuleId; 6] = [
        RuleId::HashIteration,
        RuleId::WallClock,
        RuleId::Entropy,
        RuleId::HostThread,
        RuleId::StaticMut,
        RuleId::PanicPath,
    ];

    /// The dataflow rules produced by the taint engine.
    pub const TAINT: [RuleId; 7] = [
        RuleId::TaintWallClock,
        RuleId::TaintHashOrder,
        RuleId::TaintAddr,
        RuleId::TaintEnv,
        RuleId::TaintRelaxed,
        RuleId::TaintFloatOrder,
        RuleId::TaintThreadId,
    ];

    pub fn is_taint(self) -> bool {
        RuleId::TAINT.contains(&self)
    }

    pub fn name(self) -> &'static str {
        match self {
            RuleId::HashIteration => "hash-iteration",
            RuleId::WallClock => "wall-clock",
            RuleId::Entropy => "entropy",
            RuleId::HostThread => "host-thread",
            RuleId::StaticMut => "static-mut",
            RuleId::PanicPath => "panic-path",
            RuleId::BadAllow => "bad-allow",
            RuleId::TaintWallClock => "taint-wall-clock",
            RuleId::TaintHashOrder => "taint-hash-order",
            RuleId::TaintAddr => "taint-addr",
            RuleId::TaintEnv => "taint-env",
            RuleId::TaintRelaxed => "taint-relaxed",
            RuleId::TaintFloatOrder => "taint-float-order",
            RuleId::TaintThreadId => "taint-thread-id",
        }
    }

    pub fn from_name(s: &str) -> Option<RuleId> {
        RuleId::ALL.iter().copied().find(|r| r.name() == s)
    }

    pub fn suggestion(self) -> &'static str {
        match self {
            RuleId::HashIteration => {
                "use BTreeMap/BTreeSet (ordered) or a Vec keyed by dense ids; \
                 std hash iteration order is RandomState-seeded per process"
            }
            RuleId::WallClock => {
                "route through noiselab_sim::SimTime (virtual time) or the bench \
                 crate's wall_clock() helper if this is host-side timing"
            }
            RuleId::Entropy => {
                "seed a noiselab_sim::Rng from the run seed (Rng::new / Rng::fork); \
                 entropy-seeded streams are unreproducible"
            }
            RuleId::HostThread => {
                "host threads belong to the harness's approved module \
                 (crates/core/src/harness.rs); simulated work uses Kernel::spawn"
            }
            RuleId::StaticMut => {
                "replace with a const, a thread_local, or state owned by the \
                 Kernel/harness; static mut has no deterministic ordering"
            }
            RuleId::PanicPath => {
                "return a typed error (io::Error / serde error / RunFailure) \
                 instead of unwrapping an I/O or parse result"
            }
            RuleId::BadAllow => {
                "write `// audit:allow(<rule>): <reason>` with a known rule \
                 name and a non-empty reason"
            }
            RuleId::TaintWallClock => {
                "cut the flow: derive the sunk value from SimTime or the run \
                 seed, or annotate the source/sink with a reasoned allow"
            }
            RuleId::TaintHashOrder => {
                "sort before folding, or switch the container to \
                 BTreeMap/BTreeSet so iteration order is canonical"
            }
            RuleId::TaintAddr => {
                "replace the address with a dense id assigned at creation; \
                 ASLR makes addresses differ across runs"
            }
            RuleId::TaintEnv => {
                "thread configuration through the typed spec/config structs \
                 instead of reading the environment near a determinism sink"
            }
            RuleId::TaintRelaxed => {
                "use a deterministic accumulator owned by one thread, or \
                 upgrade the ordering and prove the schedule is fixed"
            }
            RuleId::TaintFloatOrder => {
                "reduce floats in a canonical order (sorted keys, tree \
                 reduction with fixed shape) before hashing or merging"
            }
            RuleId::TaintThreadId => {
                "key on the simulated task id (dense, seed-stable), never \
                 the host thread identity"
            }
        }
    }
}

/// One diagnostic. Lexical findings have an empty `path`; taint
/// findings carry the full source→sink hop chain (`path[0]` is the
/// source site, the last hop the sink call).
#[derive(Debug, Clone)]
pub struct Violation {
    pub file: String,
    pub line: u32,
    pub rule: RuleId,
    pub message: String,
    pub path: Vec<Hop>,
}

impl Violation {
    pub fn new(file: &str, line: u32, rule: RuleId, message: String) -> Violation {
        Violation {
            file: file.to_string(),
            line,
            rule,
            message,
            path: Vec::new(),
        }
    }
}

/// A parsed `audit:allow` annotation. `used` is set once any finding
/// (lexical or taint) is suppressed by it; allows still unused at the
/// end of a sweep are reported as stale.
#[derive(Debug, Clone)]
pub struct Allow {
    pub line: u32,
    pub rule: Option<RuleId>,
    pub raw_rule: String,
    pub reason: String,
    pub used: bool,
}

impl Allow {
    /// Does this allow cover a finding of `rule` at `line` (same line
    /// or the line directly above)?
    pub fn covers(&self, rule: RuleId, line: u32) -> bool {
        self.rule == Some(rule) && (self.line == line || self.line + 1 == line)
    }
}

/// One file's lexical scan: suppressed violations plus every allow
/// annotation found (with `used` flags from lexical matching — the
/// taint pass may mark more of them used before staleness is judged).
#[derive(Debug, Default)]
pub struct FileScan {
    pub violations: Vec<Violation>,
    pub allows: Vec<Allow>,
}

/// Markers that put a statement on an "I/O or parse path" for the
/// panic-path rule: an `.unwrap()`/`.expect()` in the same statement as
/// one of these (called or path-qualified) is a violation.
const IO_PARSE_MARKERS: &[&str] = &[
    "read_to_string",
    "read",
    "read_dir",
    "write",
    "write_all",
    "create_dir_all",
    "remove_file",
    "remove_dir_all",
    "rename",
    "copy",
    "canonicalize",
    "metadata",
    "open",
    "from_str",
    "from_json",
    "to_json",
    "from_reader",
    "from_slice",
    "to_string_pretty",
    "to_writer",
    "parse",
    "var",
    "stdin",
    "stdout",
    "File",
    "fs",
    "env",
    "serde_json",
];

/// Parse every `audit:allow(<rule>): <reason>` annotation out of the
/// comment stream. Malformed annotations surface as [`RuleId::BadAllow`]
/// violations immediately.
fn parse_allows(comments: &[Comment], file: &str, bad: &mut Vec<Violation>) -> Vec<Allow> {
    let mut allows = Vec::new();
    for c in comments {
        // The annotation must be the comment's content, not a prose
        // mention: strip the comment markers and require the text to
        // *start* with `audit:allow` (docs that merely talk about the
        // grammar, like this crate's own, are not annotations).
        let body = c.text.trim_start_matches(['/', '*', '!']).trim_start();
        if !body.starts_with("audit:allow") {
            continue;
        }
        let rest = &body["audit:allow".len()..];
        let Some(open) = rest.find('(') else {
            bad.push(Violation::new(
                file,
                c.line,
                RuleId::BadAllow,
                "audit:allow without a (rule) argument".into(),
            ));
            continue;
        };
        let Some(close) = rest[open..].find(')') else {
            bad.push(Violation::new(
                file,
                c.line,
                RuleId::BadAllow,
                "audit:allow with an unclosed (rule) argument".into(),
            ));
            continue;
        };
        let raw_rule = rest[open + 1..open + close].trim().to_string();
        let after = &rest[open + close + 1..];
        let reason = after
            .trim_start()
            .strip_prefix(':')
            .map(|r| r.trim().trim_end_matches("*/").trim().to_string())
            .unwrap_or_default();
        let rule = RuleId::from_name(&raw_rule);
        if rule.is_none() {
            bad.push(Violation::new(
                file,
                c.line,
                RuleId::BadAllow,
                format!("audit:allow names unknown rule '{raw_rule}'"),
            ));
        }
        if reason.is_empty() {
            bad.push(Violation::new(
                file,
                c.line,
                RuleId::BadAllow,
                format!(
                    "audit:allow({raw_rule}) carries no reason; write \
                     `audit:allow({raw_rule}): <why this is safe>`"
                ),
            ));
        }
        allows.push(Allow {
            line: c.line,
            rule,
            raw_rule,
            reason,
            used: false,
        });
    }
    allows
}

/// Lexically scan one file under the given rule set, returning both
/// the surviving violations and the allow annotations (for the taint
/// pass and stale-allow detection). `host_thread_ok` marks the file as
/// an approved host-thread module (the harness).
pub fn scan_file(file: &str, src: &str, rules: &[RuleId], host_thread_ok: bool) -> FileScan {
    let lexed: Lexed = crate::lexer::lex(src);
    let in_test = test_regions(&lexed.tokens);
    let mut out = Vec::new();
    let mut allows = parse_allows(&lexed.comments, file, &mut out);

    let toks = &lexed.tokens;
    let mut raw: Vec<Violation> = Vec::new();

    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            // static-mut is the only two-keyword rule; both tokens are
            // idents, so the ident-only loop covers everything.
            continue;
        }
        let enabled = |r: RuleId| rules.contains(&r);
        match t.text.as_str() {
            "HashMap" | "HashSet" if enabled(RuleId::HashIteration) => {
                raw.push(Violation::new(
                    file,
                    t.line,
                    RuleId::HashIteration,
                    format!("use of {} in a deterministic crate", t.text),
                ));
            }
            "Instant" if enabled(RuleId::WallClock) && matches_path_call(toks, i, "now") => {
                raw.push(Violation::new(
                    file,
                    t.line,
                    RuleId::WallClock,
                    "wall-clock read via Instant::now()".into(),
                ));
            }
            "SystemTime" if enabled(RuleId::WallClock) => {
                raw.push(Violation::new(
                    file,
                    t.line,
                    RuleId::WallClock,
                    "wall-clock read via SystemTime".into(),
                ));
            }
            "thread_rng" | "from_entropy" | "OsRng" | "RandomState" | "getrandom"
                if enabled(RuleId::Entropy) =>
            {
                raw.push(Violation::new(
                    file,
                    t.line,
                    RuleId::Entropy,
                    format!("entropy-seeded RNG construction via {}", t.text),
                ));
            }
            "thread"
                if enabled(RuleId::HostThread)
                    && !host_thread_ok
                    && (matches_path_call(toks, i, "spawn")
                        || matches_path_call(toks, i, "scope")) =>
            {
                raw.push(Violation::new(
                    file,
                    t.line,
                    RuleId::HostThread,
                    "host thread creation outside the approved harness module".into(),
                ));
            }
            "available_parallelism" if enabled(RuleId::HostThread) && !host_thread_ok => {
                raw.push(Violation::new(
                    file,
                    t.line,
                    RuleId::HostThread,
                    "host-parallelism probe outside the approved harness module".into(),
                ));
            }
            "static"
                if enabled(RuleId::StaticMut)
                    && toks.get(i + 1).is_some_and(|n| n.is_ident("mut")) =>
            {
                raw.push(Violation::new(
                    file,
                    t.line,
                    RuleId::StaticMut,
                    "static mut item".into(),
                ));
            }
            "unwrap" | "expect"
                if enabled(RuleId::PanicPath)
                    && !in_test.get(i).copied().unwrap_or(false)
                    && is_method_call(toks, i)
                    && statement_has_io_marker(toks, i) =>
            {
                raw.push(Violation::new(
                    file,
                    t.line,
                    RuleId::PanicPath,
                    format!(".{}() on an I/O or parse path", t.text),
                ));
            }
            _ => {}
        }
    }

    // Apply allow annotations: same line or the line directly above.
    for v in raw {
        let allowed = allows.iter_mut().find(|a| a.covers(v.rule, v.line));
        match allowed {
            Some(a) if !a.reason.is_empty() => a.used = true,
            Some(a) => {
                // Reasonless allow: the BadAllow diagnostic already
                // queued covers it; still suppress the duplicate.
                a.used = true;
            }
            None => out.push(v),
        }
    }

    out.sort_by(|a, b| (a.line, a.rule.name()).cmp(&(b.line, b.rule.name())));
    FileScan {
        violations: out,
        allows,
    }
}

/// Legacy single-file entry point: lexical scan with unused allows
/// folded back in as [`RuleId::BadAllow`] violations. The workspace
/// sweep uses [`scan_file`] instead so that taint findings get a
/// chance to use an allow before it is judged stale.
pub fn scan_source(
    file: &str,
    src: &str,
    rules: &[RuleId],
    host_thread_ok: bool,
) -> Vec<Violation> {
    let scan = scan_file(file, src, rules, host_thread_ok);
    let mut out = scan.violations;
    for a in &scan.allows {
        if !a.used && a.rule.is_some() {
            out.push(Violation::new(
                file,
                a.line,
                RuleId::BadAllow,
                format!(
                    "unused audit:allow({}) — no matching violation on this or the next line",
                    a.raw_rule
                ),
            ));
        }
    }
    out.sort_by(|a, b| (a.line, a.rule.name()).cmp(&(b.line, b.rule.name())));
    out
}

/// `ident :: name` (possibly `ident::name(`): the path-call shape for
/// `Instant::now` and `thread::spawn`.
fn matches_path_call(toks: &[Token], i: usize, name: &str) -> bool {
    toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 3).is_some_and(|t| t.is_ident(name))
}

/// `.unwrap(` / `.expect(`: a method call, not a stray identifier.
fn is_method_call(toks: &[Token], i: usize) -> bool {
    i > 0 && toks[i - 1].is_punct('.') && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
}

/// Does the statement containing token `i` mention an I/O or parse
/// marker? The statement start is the nearest `;`, `{` or `}` looking
/// backwards — a deliberately local heuristic: `fs::read(..).unwrap()`
/// is flagged, `cpu.expect("running thread without cpu")` is not.
fn statement_has_io_marker(toks: &[Token], i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        j -= 1;
        match toks[j].kind {
            TokKind::Punct(';') | TokKind::Punct('{') | TokKind::Punct('}') => break,
            TokKind::Ident => {
                let name = toks[j].text.as_str();
                if IO_PARSE_MARKERS.contains(&name) {
                    // Require a call or path use so that a local named
                    // `parse` in an unrelated expression does not trip.
                    let next = toks.get(j + 1);
                    let is_use = next.is_some_and(|t| t.is_punct('(') || t.is_punct(':'));
                    if is_use {
                        return true;
                    }
                }
            }
            _ => {}
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> Vec<Violation> {
        scan_source("t.rs", src, &RuleId::ALL, false)
    }

    #[test]
    fn hashmap_is_flagged() {
        let v = scan("use std::collections::HashMap;\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, RuleId::HashIteration);
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn instant_type_mention_is_fine_but_now_is_not() {
        assert!(scan("fn f(t: std::time::Instant) {}\n").is_empty());
        let v = scan("let t = std::time::Instant::now();\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, RuleId::WallClock);
    }

    #[test]
    fn kernel_spawn_is_not_host_thread() {
        assert!(scan("let id = kernel.spawn(spec, behavior);\n").is_empty());
        let v = scan("std::thread::spawn(|| {});\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, RuleId::HostThread);
    }

    #[test]
    fn approved_module_may_spawn() {
        let v = scan_source(
            "harness.rs",
            "std::thread::scope(|s| { s.spawn(|| {}); });\n",
            &RuleId::ALL,
            true,
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn panic_path_needs_io_marker_and_non_test_code() {
        let v = scan("let x = std::fs::read_to_string(p).unwrap();\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, RuleId::PanicPath);
        // No marker in statement: invariant unwraps stay legal.
        assert!(scan("let c = cpu.expect(\"running thread without cpu\");\n").is_empty());
        // Same unwrap inside a test region: exempt.
        let test_src = "#[cfg(test)]\nmod tests {\n fn t() { std::fs::read(p).unwrap(); }\n}\n";
        assert!(scan(test_src).is_empty());
    }

    #[test]
    fn allow_with_reason_suppresses() {
        let src = "let t = std::time::Instant::now(); // audit:allow(wall-clock): bench banner\n";
        assert!(scan(src).is_empty());
        let above =
            "// audit:allow(wall-clock): bench banner\nlet t = std::time::Instant::now();\n";
        assert!(scan(above).is_empty());
    }

    #[test]
    fn allow_without_reason_is_bad_allow() {
        let src = "let t = std::time::Instant::now(); // audit:allow(wall-clock)\n";
        let v = scan(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, RuleId::BadAllow);
    }

    #[test]
    fn unknown_rule_in_allow_is_bad_allow() {
        let v = scan("// audit:allow(no-such-rule): whatever\n");
        assert!(v.iter().any(|v| v.rule == RuleId::BadAllow), "{v:?}");
    }

    #[test]
    fn unused_allow_is_flagged() {
        let v = scan("// audit:allow(wall-clock): stale annotation\nlet x = 1;\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, RuleId::BadAllow);
        assert!(v[0].message.contains("unused"));
    }

    #[test]
    fn scan_file_defers_staleness_and_exposes_allows() {
        let scan = scan_file(
            "t.rs",
            "// audit:allow(taint-wall-clock): covered by the dataflow pass\nlet x = 1;\n",
            &RuleId::ALL,
            false,
        );
        // No BadAllow here: the taint pass gets a chance to use it.
        assert!(scan.violations.is_empty(), "{:?}", scan.violations);
        assert_eq!(scan.allows.len(), 1);
        assert_eq!(scan.allows[0].rule, Some(RuleId::TaintWallClock));
        assert!(!scan.allows[0].used);
    }

    #[test]
    fn taint_rule_names_round_trip() {
        for r in RuleId::TAINT {
            assert_eq!(RuleId::from_name(r.name()), Some(r));
            assert!(r.is_taint());
        }
        for r in RuleId::LEXICAL {
            assert!(!r.is_taint());
        }
    }

    #[test]
    fn static_mut_is_flagged() {
        let v = scan("static mut COUNTER: u64 = 0;\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, RuleId::StaticMut);
    }
}
