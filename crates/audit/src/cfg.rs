//! Lowering parsed function bodies to small control-flow graphs of
//! flat, register-like instructions.
//!
//! Every nested expression is flattened onto a fresh temporary so the
//! taint dataflow in [`crate::taint`] only ever reasons about four
//! instruction shapes: `Copy` (value built from other values), `Call`
//! (named call with receiver/args), `Cast` (with an address-of marker
//! for `&x as *const _ as usize` laundering), and `Ret`. Control flow
//! becomes ordinary block successors: `if`/`match` fork and join,
//! loops carry a back edge so taint circulates to fixpoint.

use crate::parse::{Arm, Block, Expr, FnDef, Stmt};

/// A value slot the dataflow tracks.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rv {
    /// Named local / parameter.
    Var(String),
    /// Compiler temporary.
    Tmp(u32),
    /// Multi-segment constant path (`Ordering::Relaxed`): never
    /// tainted, but inspected by source rules.
    Const(String),
}

#[derive(Debug, Clone)]
pub enum Instr {
    /// `dst` receives the union of `srcs` (binops, tuples, fields,
    /// struct literals, pattern destructuring).
    Copy { dst: Rv, srcs: Vec<Rv>, line: u32 },
    /// A named call. `name` is the last path segment (`now`), `full`
    /// the joined path (`Instant::now`) or the method name again.
    Call {
        dst: Rv,
        name: String,
        full: String,
        recv: Option<Rv>,
        args: Vec<Rv>,
        line: u32,
        is_method: bool,
    },
    /// `dst = src as ty`; `addr_like` records that the source was
    /// syntactically an address (`&e`, a prior pointer cast, or an
    /// `as_ptr()` result).
    Cast {
        dst: Rv,
        src: Rv,
        ty: String,
        addr_like: bool,
        line: u32,
    },
    /// Function return (explicit or tail).
    Ret { src: Option<Rv>, line: u32 },
}

#[derive(Debug, Clone, Default)]
pub struct BasicBlock {
    pub instrs: Vec<Instr>,
    pub succs: Vec<usize>,
}

/// One function's CFG.
#[derive(Debug, Clone)]
pub struct Cfg {
    pub name: String,
    pub qual: String,
    pub params: Vec<String>,
    pub blocks: Vec<BasicBlock>,
    pub line: u32,
    pub in_test: bool,
}

impl Cfg {
    pub const ENTRY: usize = 0;
}

/// Lower one parsed function.
pub fn lower_fn(f: &FnDef) -> Cfg {
    let mut b = Builder {
        blocks: vec![BasicBlock::default()],
        cur: 0,
        next_tmp: 0,
    };
    let ret = b.lower_block(&f.body);
    let line = f.line;
    b.push(Instr::Ret { src: ret, line });
    Cfg {
        name: f.name.clone(),
        qual: f.qual.clone(),
        params: f.params.clone(),
        blocks: b.blocks,
        line,
        in_test: f.in_test,
    }
}

struct Builder {
    blocks: Vec<BasicBlock>,
    cur: usize,
    next_tmp: u32,
}

impl Builder {
    fn push(&mut self, i: Instr) {
        self.blocks[self.cur].instrs.push(i);
    }

    fn tmp(&mut self) -> Rv {
        self.next_tmp += 1;
        Rv::Tmp(self.next_tmp)
    }

    fn new_block(&mut self) -> usize {
        self.blocks.push(BasicBlock::default());
        self.blocks.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize) {
        if !self.blocks[from].succs.contains(&to) {
            self.blocks[from].succs.push(to);
        }
    }

    /// Lower a block's statements in the current basic block (which
    /// may change across control flow); returns the tail value.
    fn lower_block(&mut self, blk: &Block) -> Option<Rv> {
        for stmt in &blk.stmts {
            match stmt {
                Stmt::Let { names, init, line } => {
                    let src = init.as_ref().map(|e| self.lower_expr(e));
                    if let Some(src) = src {
                        for n in names {
                            self.push(Instr::Copy {
                                dst: Rv::Var(n.clone()),
                                srcs: vec![src.clone()],
                                line: *line,
                            });
                        }
                    }
                }
                Stmt::Assign {
                    target,
                    value,
                    line,
                } => {
                    let src = self.lower_expr(value);
                    let dst = self.assign_target(target);
                    self.push(Instr::Copy {
                        dst,
                        srcs: vec![src],
                        line: *line,
                    });
                }
                Stmt::Expr(e) => {
                    let _ = self.lower_expr(e);
                }
                Stmt::Return(e, line) => {
                    let src = e.as_ref().map(|e| self.lower_expr(e));
                    self.push(Instr::Ret { src, line: *line });
                }
            }
        }
        blk.tail.as_ref().map(|e| self.lower_expr(e))
    }

    /// The variable an assignment writes through: `x`, `x.field`,
    /// `x[i]`, `*x` all resolve to the base variable `x` so taint
    /// written into a field taints the whole value (field-insensitive,
    /// conservative).
    fn assign_target(&mut self, e: &Expr) -> Rv {
        match e {
            Expr::Path { segs, .. } if segs.len() == 1 => Rv::Var(segs[0].clone()),
            Expr::Field { base, .. } => self.assign_target(base),
            Expr::Index { base, .. } => self.assign_target(base),
            Expr::Ref { inner } => self.assign_target(inner),
            Expr::Opaque(children) if children.len() == 1 => self.assign_target(&children[0]),
            _ => self.tmp(),
        }
    }

    /// Is this expression syntactically an address-of / pointer value?
    /// Drives the `addr_like` flag on casts.
    fn is_addrish(e: &Expr) -> bool {
        match e {
            Expr::Ref { .. } => true,
            Expr::Cast { inner, ty, .. } => {
                // `x as *const T as usize`: the inner cast to a pointer
                // type (`*T`, or `_` inferred in pointer position)
                // makes the outer cast address-like.
                ty == "_" || ty.starts_with('*') || Self::is_addrish(inner)
            }
            Expr::Method { name, .. } => {
                matches!(name.as_str(), "as_ptr" | "as_mut_ptr")
            }
            Expr::Call { path, .. } => {
                let last = path.last().map(String::as_str).unwrap_or("");
                matches!(last, "addr_of" | "addr_of_mut" | "from_ref" | "from_mut")
            }
            Expr::Opaque(children) if children.len() == 1 => Self::is_addrish(&children[0]),
            _ => false,
        }
    }

    fn lower_expr(&mut self, e: &Expr) -> Rv {
        match e {
            Expr::Path { segs, .. } => {
                if segs.len() == 1 {
                    Rv::Var(segs[0].clone())
                } else {
                    Rv::Const(segs.join("::"))
                }
            }
            Expr::Lit => {
                let t = self.tmp();
                // No Copy needed: an unseen Rv is untainted by default.
                t
            }
            Expr::Ref { inner } => self.lower_expr(inner),
            Expr::Bin { parts } | Expr::Tuple(parts) | Expr::Opaque(parts) => {
                let srcs: Vec<Rv> = parts.iter().map(|p| self.lower_expr(p)).collect();
                let dst = self.tmp();
                let line = first_line(e);
                self.push(Instr::Copy {
                    dst: dst.clone(),
                    srcs,
                    line,
                });
                dst
            }
            Expr::Field { base, line, .. } => {
                let src = self.lower_expr(base);
                let dst = self.tmp();
                self.push(Instr::Copy {
                    dst: dst.clone(),
                    srcs: vec![src],
                    line: *line,
                });
                dst
            }
            Expr::Index { base, idx } => {
                let b = self.lower_expr(base);
                let i = self.lower_expr(idx);
                let dst = self.tmp();
                self.push(Instr::Copy {
                    dst: dst.clone(),
                    srcs: vec![b, i],
                    line: 0,
                });
                dst
            }
            Expr::StructLit { fields, line, .. } => {
                let srcs: Vec<Rv> = fields.iter().map(|f| self.lower_expr(f)).collect();
                let dst = self.tmp();
                self.push(Instr::Copy {
                    dst: dst.clone(),
                    srcs,
                    line: *line,
                });
                dst
            }
            Expr::Cast { inner, ty, line } => {
                let addr_like = Self::is_addrish(inner);
                let src = self.lower_expr(inner);
                let dst = self.tmp();
                self.push(Instr::Cast {
                    dst: dst.clone(),
                    src,
                    ty: ty.clone(),
                    addr_like,
                    line: *line,
                });
                dst
            }
            Expr::Call { path, args, line } => {
                let arg_rvs = self.lower_args(None, args);
                let dst = self.tmp();
                let name = path.last().cloned().unwrap_or_default();
                self.push(Instr::Call {
                    dst: dst.clone(),
                    name,
                    full: path.join("::"),
                    recv: None,
                    args: arg_rvs,
                    line: *line,
                    is_method: false,
                });
                dst
            }
            Expr::Method {
                recv,
                name,
                args,
                line,
            } => {
                let recv_rv = self.lower_expr(recv);
                let arg_rvs = self.lower_args(Some(&recv_rv), args);
                let dst = self.tmp();
                self.push(Instr::Call {
                    dst: dst.clone(),
                    name: name.clone(),
                    full: name.clone(),
                    recv: Some(recv_rv),
                    args: arg_rvs,
                    line: *line,
                    is_method: true,
                });
                dst
            }
            Expr::BlockExpr(b) => {
                let v = self.lower_block(b);
                v.unwrap_or_else(|| self.tmp())
            }
            Expr::If { cond, then, els } => {
                let _c = self.lower_expr(cond);
                let before = self.cur;
                let result = self.tmp();

                let then_start = self.new_block();
                self.edge(before, then_start);
                self.cur = then_start;
                let tv = self.lower_block(then);
                if let Some(tv) = tv {
                    self.push(Instr::Copy {
                        dst: result.clone(),
                        srcs: vec![tv],
                        line: 0,
                    });
                }
                let then_end = self.cur;

                let join = self.new_block();
                self.edge(then_end, join);

                if let Some(els) = els {
                    let else_start = self.new_block();
                    self.edge(before, else_start);
                    self.cur = else_start;
                    let ev = self.lower_expr(els);
                    self.push(Instr::Copy {
                        dst: result.clone(),
                        srcs: vec![ev],
                        line: 0,
                    });
                    let else_end = self.cur;
                    self.edge(else_end, join);
                } else {
                    self.edge(before, join);
                }
                self.cur = join;
                result
            }
            Expr::Match { scrut, arms } => {
                let s = self.lower_expr(scrut);
                let before = self.cur;
                let result = self.tmp();
                let join = self.new_block();
                if arms.is_empty() {
                    self.edge(before, join);
                }
                for Arm { binds, body } in arms {
                    let arm_start = self.new_block();
                    self.edge(before, arm_start);
                    self.cur = arm_start;
                    for b in binds {
                        self.push(Instr::Copy {
                            dst: Rv::Var(b.clone()),
                            srcs: vec![s.clone()],
                            line: first_line(body),
                        });
                    }
                    let av = self.lower_expr(body);
                    self.push(Instr::Copy {
                        dst: result.clone(),
                        srcs: vec![av],
                        line: 0,
                    });
                    let arm_end = self.cur;
                    self.edge(arm_end, join);
                }
                self.cur = join;
                result
            }
            Expr::Loop { binds, iter, body } => {
                let iter_rv = iter.as_ref().map(|i| self.lower_expr(i));
                let before = self.cur;
                let head = self.new_block();
                self.edge(before, head);
                self.cur = head;
                if let Some(iter_rv) = &iter_rv {
                    for b in binds {
                        self.push(Instr::Copy {
                            dst: Rv::Var(b.clone()),
                            srcs: vec![iter_rv.clone()],
                            line: 0,
                        });
                    }
                }
                let body_start = self.new_block();
                self.edge(head, body_start);
                self.cur = body_start;
                let _ = self.lower_block(body);
                let body_end = self.cur;
                // Back edge: taint written in the body flows around.
                self.edge(body_end, head);
                let exit = self.new_block();
                self.edge(head, exit);
                self.cur = exit;
                self.tmp()
            }
            Expr::Closure { params, body } => {
                // Lowered inline: the closure reads outer locals
                // directly; parameters become ordinary variables that
                // the *call site* may seed (see `lower_args`).
                let _ = params;
                let v = self.lower_expr(body);
                let dst = self.tmp();
                self.push(Instr::Copy {
                    dst: dst.clone(),
                    srcs: vec![v],
                    line: first_line(body),
                });
                dst
            }
            Expr::Ret { value, line } => {
                let src = value.as_ref().map(|v| self.lower_expr(v));
                self.push(Instr::Ret { src, line: *line });
                self.tmp()
            }
        }
    }

    /// Lower call arguments. Closure arguments to a *method* call get
    /// their parameters seeded from the receiver first, approximating
    /// `v.iter().map(|x| ...)`: whatever taints `v` taints `x`.
    fn lower_args(&mut self, recv: Option<&Rv>, args: &[Expr]) -> Vec<Rv> {
        let mut out = Vec::with_capacity(args.len());
        for a in args {
            if let Expr::Closure { params, body } = a {
                if let Some(recv) = recv {
                    for p in params {
                        self.push(Instr::Copy {
                            dst: Rv::Var(p.clone()),
                            srcs: vec![recv.clone()],
                            line: first_line(body),
                        });
                    }
                }
                let v = self.lower_expr(body);
                out.push(v);
            } else {
                out.push(self.lower_expr(a));
            }
        }
        out
    }
}

/// Best-effort source line of an expression, for hop reporting.
pub fn first_line(e: &Expr) -> u32 {
    match e {
        Expr::Path { line, .. }
        | Expr::Call { line, .. }
        | Expr::Method { line, .. }
        | Expr::Cast { line, .. }
        | Expr::Field { line, .. }
        | Expr::StructLit { line, .. }
        | Expr::Ret { line, .. } => *line,
        Expr::Ref { inner } => first_line(inner),
        Expr::Bin { parts } | Expr::Tuple(parts) | Expr::Opaque(parts) => {
            parts.first().map_or(0, first_line)
        }
        Expr::Index { base, .. } => first_line(base),
        Expr::If { cond, .. } => first_line(cond),
        Expr::Match { scrut, .. } => first_line(scrut),
        Expr::Loop { iter, body, .. } => iter
            .as_ref()
            .map(|i| first_line(i))
            .or_else(|| body.tail.as_ref().map(first_line))
            .unwrap_or(0),
        Expr::Closure { body, .. } => first_line(body),
        Expr::BlockExpr(b) => b.tail.as_ref().map_or(0, first_line),
        Expr::Lit => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse_file;

    fn cfg_of(src: &str) -> Cfg {
        let fns = parse_file(&lex(src));
        assert_eq!(fns.len(), 1, "{fns:#?}");
        lower_fn(&fns[0])
    }

    fn all_instrs(c: &Cfg) -> Vec<&Instr> {
        c.blocks.iter().flat_map(|b| b.instrs.iter()).collect()
    }

    #[test]
    fn straight_line_lowering_produces_calls_and_copies() {
        let c = cfg_of("fn f() -> u64 { let t = clock(); let u = t.as_nanos(); u }");
        let instrs = all_instrs(&c);
        let calls: Vec<_> = instrs
            .iter()
            .filter_map(|i| match i {
                Instr::Call { name, .. } => Some(name.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(calls, vec!["clock", "as_nanos"]);
        assert!(instrs
            .iter()
            .any(|i| matches!(i, Instr::Ret { src: Some(_), .. })));
    }

    #[test]
    fn if_else_forks_and_joins() {
        let c = cfg_of("fn f(a: bool) -> u64 { if a { 1 } else { 2 } }");
        // entry + then + join + else = 4 blocks, entry has 2 succs.
        assert!(c.blocks.len() >= 4, "{c:#?}");
        assert_eq!(c.blocks[Cfg::ENTRY].succs.len(), 2);
    }

    #[test]
    fn loops_have_back_edges() {
        let c = cfg_of("fn f(v: Vec<u64>) { for x in v { g(x); } }");
        let has_back_edge = c
            .blocks
            .iter()
            .enumerate()
            .any(|(i, b)| b.succs.iter().any(|&s| s <= i));
        assert!(has_back_edge, "{c:#?}");
    }

    #[test]
    fn addr_cast_is_marked() {
        let c = cfg_of("fn f(x: &u64) -> usize { &x as *const _ as usize }");
        let addr = all_instrs(&c)
            .into_iter()
            .any(|i| matches!(i, Instr::Cast { addr_like: true, ty, .. } if ty == "usize"));
        assert!(addr, "{c:#?}");
    }

    #[test]
    fn closure_params_seed_from_receiver() {
        let c = cfg_of("fn f(v: Vec<u64>) -> u64 { v.iter().map(|x| x + 1).sum() }");
        // The copy `x <- (iter result)` must exist.
        let seeded = all_instrs(&c)
            .into_iter()
            .any(|i| matches!(i, Instr::Copy { dst: Rv::Var(n), .. } if n == "x"));
        assert!(seeded, "{c:#?}");
    }
}
