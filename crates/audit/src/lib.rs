//! # noiselab-audit
//!
//! The determinism auditor: a dependency-free static analyzer that
//! walks the workspace's deterministic crates and enforces the
//! determinism contract.
//!
//! Two generations of rules share one pipeline:
//!
//! * **Lexical** (PR 3): token-level bans — no std hash containers, no
//!   wall-clock reads, no entropy-seeded RNGs, no host threads outside
//!   the harness, no `static mut`, no `.unwrap()` on I/O paths.
//! * **Taint** (this PR): a recursive-descent parser ([`parse`])
//!   lowers every function to a CFG ([`cfg`]); an intra-procedural
//!   dataflow ([`taint`]) plus a call-graph summary fixpoint
//!   ([`summary`]) track nondeterministic *values* — a wall-clock read
//!   laundered through two helper functions, a hash-iteration fold, an
//!   address cast — until they reach a determinism sink (stream hash,
//!   fingerprint, checkpoint, metrics merge, event-queue key).
//!
//! Findings carry a source→sink hop chain in human, JSON, and SARIF
//! output. Escape hatches are explicit and reviewed:
//! `// audit:allow(<rule>): <reason>` on (or directly above) the
//! source or sink line; allows that match nothing are reported stale.
//!
//! The runtime counterpart — the event-stream sanitizer and the
//! dual-run divergence bisector — lives in `noiselab-kernel` and
//! `noiselab-core`; both are driven by `noiselab audit`.
//!
//! ```
//! use noiselab_audit::{scan_source, RuleId};
//! let v = scan_source("demo.rs", "let t = std::time::Instant::now();", &RuleId::ALL, false);
//! assert_eq!(v[0].rule, RuleId::WallClock);
//! ```

pub mod cache;
pub mod cfg;
pub mod lexer;
pub mod parse;
pub mod policy;
pub mod report;
pub mod rules;
pub mod summary;
pub mod taint;

pub use policy::{CratePolicy, POLICIES};
pub use report::{AuditReport, StaleAllow};
pub use rules::{scan_file, scan_source, Allow, FileScan, RuleId, Violation};
pub use taint::{TaintFinding, TaintKind};

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

use cache::{fnv1a64, rules_key, Cache, FileArtifacts};

/// One source file handed to the pure analysis entry point.
pub struct SourceSpec<'a> {
    /// Diagnostic path (repo-relative in the workspace sweep).
    pub path: String,
    pub src: String,
    /// Rules enforced for findings whose *sink* is in this file.
    pub rules: &'a [RuleId],
    pub host_thread_ok: bool,
}

/// Options for the workspace sweep.
#[derive(Debug, Default)]
pub struct AuditOptions {
    /// Where to read/write the incremental per-file cache; `None`
    /// disables caching.
    pub cache_path: Option<PathBuf>,
}

impl AuditOptions {
    /// The conventional cache location under a workspace root.
    pub fn default_cache_path(root: &Path) -> PathBuf {
        root.join("target").join("audit-cache.txt")
    }
}

fn compute_artifacts(spec: &SourceSpec) -> FileArtifacts {
    let lexed = lexer::lex(&spec.src);
    let scan = rules::scan_file(&spec.path, &spec.src, spec.rules, spec.host_thread_ok);
    let cfgs = parse::parse_file(&lexed)
        .iter()
        .map(cfg::lower_fn)
        .collect();
    FileArtifacts {
        violations: scan.violations,
        allows: scan.allows,
        cfgs,
    }
}

/// Run the full analysis (lexical + taint + stale-allow detection)
/// over in-memory sources. This is the byte-deterministic core: the
/// output depends only on the *set* of inputs, not their order.
pub fn analyze_sources(files: &[SourceSpec]) -> AuditReport {
    let units: Vec<(usize, FileArtifacts)> = files
        .iter()
        .enumerate()
        .map(|(i, spec)| (i, compute_artifacts(spec)))
        .collect();
    finish(files, units)
}

/// Combine per-file artifacts into the final report: run the taint
/// fixpoint, apply allows to taint findings, judge stale allows, sort.
fn finish(files: &[SourceSpec], units: Vec<(usize, FileArtifacts)>) -> AuditReport {
    let mut report = AuditReport {
        files_scanned: files.len(),
        ..AuditReport::default()
    };

    // Assemble the global CFG list in path order so the fixpoint sees
    // a canonical input regardless of sweep order.
    let mut order: Vec<usize> = (0..units.len()).collect();
    order.sort_by(|&a, &b| files[units[a].0].path.cmp(&files[units[b].0].path));

    let mut cfgs: Vec<(String, cfg::Cfg)> = Vec::new();
    let mut allows: BTreeMap<String, Vec<Allow>> = BTreeMap::new();
    let mut rules_for: BTreeMap<String, &[RuleId]> = BTreeMap::new();
    for &u in &order {
        let (idx, art) = &units[u];
        let spec = &files[*idx];
        report.violations.extend(art.violations.iter().cloned());
        allows.insert(spec.path.clone(), art.allows.clone());
        rules_for.insert(spec.path.clone(), spec.rules);
        for c in &art.cfgs {
            cfgs.push((spec.path.clone(), c.clone()));
        }
    }

    let findings = summary::analyze_workspace(&cfgs);
    for f in findings {
        // Policy: the rule must be enabled where the sink lives.
        let enabled = rules_for
            .get(&f.file)
            .is_some_and(|rules| rules.contains(&f.rule));
        if !enabled {
            continue;
        }
        let (sfile, sline) = {
            let (sf, sl) = f.source();
            (sf.to_string(), sl)
        };
        // An allow suppresses at the sink line, at the source line, or
        // (for kinds with a lexical ancestor, e.g. wall-clock) via the
        // base rule's allow at the source — so the bench harness's
        // existing `audit:allow(wall-clock)` keeps covering flows born
        // at that site.
        let mut suppressed = false;
        if let Some(list) = allows.get_mut(&f.file) {
            if let Some(a) = list.iter_mut().find(|a| a.covers(f.rule, f.line)) {
                a.used = true;
                suppressed = true;
            }
        }
        if let Some(list) = allows.get_mut(&sfile) {
            if let Some(a) = list.iter_mut().find(|a| a.covers(f.rule, sline)) {
                a.used = true;
                suppressed = true;
            }
            if let Some(base) = f.kind.base_rule() {
                if let Some(a) = list.iter_mut().find(|a| a.covers(base, sline)) {
                    a.used = true;
                    suppressed = true;
                }
            }
        }
        if suppressed {
            continue;
        }
        report.violations.push(Violation {
            file: f.file.clone(),
            line: f.line,
            rule: f.rule,
            message: f.message.clone(),
            path: f.hops.clone(),
        });
    }

    for (file, list) in &allows {
        for a in list {
            if !a.used && a.rule.is_some() {
                report.stale_allows.push(StaleAllow {
                    file: file.clone(),
                    line: a.line,
                    rule: a.raw_rule.clone(),
                });
            }
        }
    }
    report.stale_allows.sort();

    report.violations.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule.name(), a.message.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.rule.name(),
            b.message.as_str(),
        ))
    });
    report
}

/// Sweep the whole workspace rooted at `root` under [`POLICIES`] with
/// default options (no cache).
pub fn audit_workspace(root: &Path) -> io::Result<AuditReport> {
    audit_workspace_with(root, &AuditOptions::default())
}

/// Sweep the whole workspace rooted at `root` under [`POLICIES`].
/// Missing crates are an error (the policy table and the workspace must
/// agree), missing optional dirs (a crate without `benches/`) are not.
pub fn audit_workspace_with(root: &Path, opts: &AuditOptions) -> io::Result<AuditReport> {
    let mut cache = match &opts.cache_path {
        Some(p) => Cache::load(p),
        None => Cache::default(),
    };
    let mut specs: Vec<SourceSpec> = Vec::new();
    let mut crates_scanned = 0usize;

    for policy in POLICIES {
        let crate_dir = root.join(policy.root);
        if !crate_dir.is_dir() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!(
                    "policy names crate {} at {} but the directory is missing",
                    policy.name,
                    crate_dir.display()
                ),
            ));
        }
        crates_scanned += 1;
        for dir in policy.dirs {
            let d = crate_dir.join(dir);
            if !d.is_dir() {
                continue;
            }
            let mut files = Vec::new();
            collect_rs_files(&d, &mut files)?;
            // Deterministic sweep order, like everything else here.
            files.sort();
            for f in files {
                let src = std::fs::read_to_string(&f)?;
                let rel = f
                    .strip_prefix(root)
                    .unwrap_or(&f)
                    .to_string_lossy()
                    .replace('\\', "/");
                let crate_rel = f
                    .strip_prefix(&crate_dir)
                    .unwrap_or(&f)
                    .to_string_lossy()
                    .replace('\\', "/");
                let host_ok = policy.host_thread_approved.contains(&crate_rel.as_str());
                specs.push(SourceSpec {
                    path: rel,
                    src,
                    rules: policy.rules,
                    host_thread_ok: host_ok,
                });
            }
        }
    }

    let key_of = |spec: &SourceSpec| rules_key(spec.rules);
    let mut units: Vec<(usize, FileArtifacts)> = Vec::with_capacity(specs.len());
    for (i, spec) in specs.iter().enumerate() {
        let hash = fnv1a64(spec.src.as_bytes());
        let key = key_of(spec);
        let art = match cache.get(&spec.path, hash, spec.host_thread_ok, &key) {
            Some(art) => art,
            None => {
                let art = compute_artifacts(spec);
                cache.put(&spec.path, hash, spec.host_thread_ok, key, art.clone());
                art
            }
        };
        units.push((i, art));
    }

    if let Some(p) = &opts.cache_path {
        let live: Vec<String> = specs.iter().map(|s| s.path.clone()).collect();
        cache.retain_files(&live);
        // The cache is advisory; a failed write must not fail the audit.
        let _ = cache.save(p);
    }

    let mut report = finish(&specs, units);
    report.crates_scanned = crates_scanned;
    Ok(report)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_table_is_internally_consistent() {
        let mut names = std::collections::BTreeSet::new();
        for p in POLICIES {
            assert!(names.insert(p.name), "duplicate policy row for {}", p.name);
            assert!(!p.rules.is_empty(), "{}: empty rule set", p.name);
            assert!(!p.dirs.is_empty(), "{}: no swept dirs", p.name);
        }
        assert_eq!(POLICIES.len(), 16, "every workspace crate has a row");
    }

    #[test]
    fn missing_crate_is_an_error() {
        let err = audit_workspace(Path::new("/nonexistent-root")).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    fn spec(path: &str, src: &str) -> SourceSpec<'static> {
        SourceSpec {
            path: path.to_string(),
            src: src.to_string(),
            rules: &RuleId::ALL,
            host_thread_ok: false,
        }
    }

    #[test]
    fn cross_file_taint_is_reported_with_path() {
        let report = analyze_sources(&[
            spec(
                "a.rs",
                "pub fn stamp() -> u64 { std::time::Instant::now().elapsed().as_nanos() as u64 }\n",
            ),
            spec(
                "b.rs",
                "pub fn fold(seed: u64) -> u64 { fnv1a_extend(seed, stamp()) }\n",
            ),
        ]);
        // One lexical wall-clock hit in a.rs plus the taint path in b.rs.
        let taint: Vec<_> = report
            .violations
            .iter()
            .filter(|v| v.rule == RuleId::TaintWallClock)
            .collect();
        assert_eq!(taint.len(), 1, "{:#?}", report.violations);
        assert_eq!(taint[0].file, "b.rs");
        assert!(taint[0].path.len() >= 2);
        assert_eq!(taint[0].path[0].file, "a.rs");
    }

    #[test]
    fn allow_at_source_suppresses_taint_and_is_not_stale() {
        let report = analyze_sources(&[spec(
            "a.rs",
            "pub fn f(seed: u64) -> u64 {\n\
             // audit:allow(taint-addr): dense id, stable across runs in this test double\n\
             let k = &seed as *const u64 as usize;\n\
             fnv1a_extend(seed, k as u64)\n}\n",
        )]);
        assert!(report.clean(), "{:#?}", report.violations);
        assert!(report.stale_allows.is_empty(), "{:#?}", report.stale_allows);
    }

    #[test]
    fn unused_allow_is_stale_with_rule_and_line() {
        let report = analyze_sources(&[spec(
            "a.rs",
            "// audit:allow(taint-wall-clock): nothing here anymore\npub fn f() {}\n",
        )]);
        assert!(report.clean());
        assert_eq!(report.stale_allows.len(), 1);
        assert_eq!(report.stale_allows[0].rule, "taint-wall-clock");
        assert_eq!(report.stale_allows[0].line, 1);
    }
}
