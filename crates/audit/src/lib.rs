//! # noiselab-audit
//!
//! The determinism auditor: a dependency-free static-analysis pass that
//! walks the workspace's deterministic crates and enforces the
//! determinism contract — no std hash iteration, no wall-clock reads,
//! no entropy-seeded RNGs, no host threads outside the harness, no
//! `static mut`, no `.unwrap()`/`.expect()` on I/O or parse paths.
//!
//! The paper's methodology (and every guarantee this repo has shipped —
//! tickless/eager bit-identity, no-op fault plans, bit-identical
//! checkpoint resume) rests on runs being a pure function of the seed.
//! Example-based tests prove those properties hold *today*; this pass
//! keeps future PRs from quietly breaking them. Escape hatches are
//! explicit and reviewed: `// audit:allow(<rule>): <reason>` on (or
//! directly above) the offending line.
//!
//! The runtime counterpart — the event-stream sanitizer and the
//! dual-run divergence bisector — lives in `noiselab-kernel` and
//! `noiselab-core`; both are driven by `noiselab audit`.
//!
//! ```
//! use noiselab_audit::{scan_source, RuleId};
//! let v = scan_source("demo.rs", "let t = std::time::Instant::now();", &RuleId::ALL, false);
//! assert_eq!(v[0].rule, RuleId::WallClock);
//! ```

pub mod lexer;
pub mod policy;
pub mod report;
pub mod rules;

pub use policy::{CratePolicy, POLICIES};
pub use report::AuditReport;
pub use rules::{scan_source, RuleId, Violation};

use std::io;
use std::path::{Path, PathBuf};

/// Sweep the whole workspace rooted at `root` under [`POLICIES`].
/// Missing crates are an error (the policy table and the workspace must
/// agree), missing optional dirs (a crate without `benches/`) are not.
pub fn audit_workspace(root: &Path) -> io::Result<AuditReport> {
    let mut report = AuditReport::default();
    for policy in POLICIES {
        let crate_dir = root.join(policy.root);
        if !crate_dir.is_dir() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!(
                    "policy names crate {} at {} but the directory is missing",
                    policy.name,
                    crate_dir.display()
                ),
            ));
        }
        report.crates_scanned += 1;
        for dir in policy.dirs {
            let d = crate_dir.join(dir);
            if !d.is_dir() {
                continue;
            }
            let mut files = Vec::new();
            collect_rs_files(&d, &mut files)?;
            // Deterministic sweep order, like everything else here.
            files.sort();
            for f in files {
                let src = std::fs::read_to_string(&f)?;
                let rel = f
                    .strip_prefix(root)
                    .unwrap_or(&f)
                    .to_string_lossy()
                    .replace('\\', "/");
                let crate_rel = f
                    .strip_prefix(&crate_dir)
                    .unwrap_or(&f)
                    .to_string_lossy()
                    .replace('\\', "/");
                let host_ok = policy.host_thread_approved.contains(&crate_rel.as_str());
                report.files_scanned += 1;
                report
                    .violations
                    .extend(scan_source(&rel, &src, policy.rules, host_ok));
            }
        }
    }
    report.violations.sort_by_key(|v| (v.file.clone(), v.line));
    Ok(report)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_table_is_internally_consistent() {
        let mut names = std::collections::BTreeSet::new();
        for p in POLICIES {
            assert!(names.insert(p.name), "duplicate policy row for {}", p.name);
            assert!(!p.rules.is_empty(), "{}: empty rule set", p.name);
            assert!(!p.dirs.is_empty(), "{}: no swept dirs", p.name);
        }
    }

    #[test]
    fn missing_crate_is_an_error() {
        let err = audit_workspace(Path::new("/nonexistent-root")).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }
}
