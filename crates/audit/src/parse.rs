//! A hand-rolled recursive-descent parser for the Rust subset the
//! workspace actually uses: items (fn / impl / mod / trait), fn bodies
//! (let / match / if / loops / closures), method chains, paths, casts
//! and macro invocations. It exists so the taint analyzer can see
//! *dataflow* — a wall-clock value laundered through three lets and two
//! helper calls — where the PR-3 lexer could only see identifiers.
//!
//! Design constraints, in order:
//!
//! 1. **Never panic, always terminate.** Every loop provably advances
//!    the cursor; anything unrecognized is swallowed into
//!    [`Expr::Opaque`] with its sub-expressions preserved, so taint
//!    still flows through constructs the parser does not model.
//! 2. **Over-approximate bindings.** Patterns bind every lowercase
//!    non-path identifier they contain; a `match` arm guard variable
//!    may therefore pick up the scrutinee's taint. False positives are
//!    reviewable (and suppressible with `audit:allow`), false negatives
//!    silently rot the determinism contract.
//! 3. **Dependency-free.** Like the rest of this crate: no `syn`, no
//!    vendored stand-ins; the auditor gates every other crate so it
//!    must build first.
//!
//! Known blind spots are documented in `crates/audit/ANALYSIS.md`.

use crate::lexer::{test_regions, Lexed, TokKind, Token};

/// One parsed function (free fn, inherent/trait method, or nested fn),
/// flattened out of whatever item nesting it appeared in.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Bare name (`merge`).
    pub name: String,
    /// Qualified-ish name for diagnostics (`MetricsSnapshot::merge`).
    pub qual: String,
    /// Bound parameter names in order; `self` appears literally.
    pub params: Vec<String>,
    pub body: Block,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Inside a `#[cfg(test)]` / `#[test]` region.
    pub in_test: bool,
}

/// `{ stmt* tail? }`
#[derive(Debug, Clone, Default)]
pub struct Block {
    pub stmts: Vec<Stmt>,
    pub tail: Option<Expr>,
}

#[derive(Debug, Clone)]
pub enum Stmt {
    /// `let PAT = init;` — every identifier bound by the pattern.
    Let {
        names: Vec<String>,
        init: Option<Expr>,
        line: u32,
    },
    /// `target = value;` (or compound `+=` etc.).
    Assign {
        target: Expr,
        value: Expr,
        line: u32,
    },
    Expr(Expr),
    Return(Option<Expr>, u32),
}

/// A deliberately small expression tree. Whatever taint analysis does
/// not need (operator precedence, types, lifetimes) is not represented.
#[derive(Debug, Clone)]
pub enum Expr {
    /// `x` or `a::b::c` (single segment = local variable).
    Path {
        segs: Vec<String>,
        line: u32,
    },
    /// `a::b::c(args)`
    Call {
        path: Vec<String>,
        args: Vec<Expr>,
        line: u32,
    },
    /// `recv.name(args)`
    Method {
        recv: Box<Expr>,
        name: String,
        args: Vec<Expr>,
        line: u32,
    },
    /// `inner as Ty` — `ty` keeps only the last path segment.
    Cast {
        inner: Box<Expr>,
        ty: String,
        line: u32,
    },
    /// `&inner` / `&mut inner`
    Ref {
        inner: Box<Expr>,
    },
    /// Operator soup: all operands of a binary chain, flattened.
    Bin {
        parts: Vec<Expr>,
    },
    /// `base.field` / `base.0`
    Field {
        base: Box<Expr>,
        name: String,
        line: u32,
    },
    /// `base[idx]`
    Index {
        base: Box<Expr>,
        idx: Box<Expr>,
    },
    BlockExpr(Box<Block>),
    If {
        cond: Box<Expr>,
        then: Box<Block>,
        els: Option<Box<Expr>>,
    },
    /// `match scrut { arms }`; `if let` / `while let` lower here too.
    Match {
        scrut: Box<Expr>,
        arms: Vec<Arm>,
    },
    /// `loop` / `while` / `for`: `binds` are the `for` pattern's names,
    /// `iter` the iterated (or `while`-condition) expression.
    Loop {
        binds: Vec<String>,
        iter: Option<Box<Expr>>,
        body: Box<Block>,
    },
    /// `|params| body`
    Closure {
        params: Vec<String>,
        body: Box<Expr>,
    },
    /// `return e` in expression position.
    Ret {
        value: Option<Box<Expr>>,
        line: u32,
    },
    /// String/char/number literal.
    Lit,
    Tuple(Vec<Expr>),
    /// `Path { field: e, .. }` — field values only.
    StructLit {
        path: Vec<String>,
        fields: Vec<Expr>,
        line: u32,
    },
    /// Anything else: children preserved so taint flows through.
    Opaque(Vec<Expr>),
}

/// One match arm: over-approximated bound names plus the body.
#[derive(Debug, Clone)]
pub struct Arm {
    pub binds: Vec<String>,
    pub body: Expr,
}

/// Parse a lexed file into its functions. Never fails: unparseable
/// regions simply contribute no functions.
pub fn parse_file(lexed: &Lexed) -> Vec<FnDef> {
    let in_test = test_regions(&lexed.tokens);
    let mut p = Parser {
        toks: &lexed.tokens,
        in_test: &in_test,
        pos: 0,
        fns: Vec::new(),
        fuel: lexed.tokens.len().saturating_mul(64) + 4096,
    };
    p.items("");
    p.fns
}

struct Parser<'a> {
    toks: &'a [Token],
    in_test: &'a [bool],
    pos: usize,
    fns: Vec<FnDef>,
    /// Hard bound on total parser work: belt-and-braces termination
    /// guarantee on top of "every loop advances".
    fuel: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&'a Token> {
        self.toks.get(self.pos)
    }

    fn peek_at(&self, off: usize) -> Option<&'a Token> {
        self.toks.get(self.pos + off)
    }

    fn bump(&mut self) -> Option<&'a Token> {
        let t = self.toks.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn line(&self) -> u32 {
        self.peek()
            .or_else(|| self.toks.last())
            .map_or(0, |t| t.line)
    }

    fn out_of_fuel(&mut self) -> bool {
        if self.fuel == 0 {
            self.pos = self.toks.len();
            return true;
        }
        self.fuel -= 1;
        false
    }

    fn at_punct(&self, c: char) -> bool {
        self.peek().is_some_and(|t| t.is_punct(c))
    }

    fn at_ident(&self, s: &str) -> bool {
        self.peek().is_some_and(|t| t.is_ident(s))
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if self.at_punct(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// `::` (two adjacent `:` puncts).
    fn at_path_sep(&self) -> bool {
        self.at_punct(':') && self.peek_at(1).is_some_and(|t| t.is_punct(':'))
    }

    /// Skip a balanced group starting at the current open delimiter.
    fn skip_group(&mut self, open: char, close: char) {
        if !self.eat_punct(open) {
            return;
        }
        let mut depth = 1u32;
        while depth > 0 {
            if self.out_of_fuel() {
                return;
            }
            match self.bump() {
                None => return,
                Some(t) if t.is_punct(open) => depth += 1,
                Some(t) if t.is_punct(close) => depth -= 1,
                _ => {}
            }
        }
    }

    /// Skip `<...>` generics, counting `<`/`>` (a `>>` is two tokens).
    fn skip_generics(&mut self) {
        if !self.eat_punct('<') {
            return;
        }
        let mut depth = 1i32;
        while depth > 0 {
            if self.out_of_fuel() {
                return;
            }
            match self.bump() {
                None => return,
                Some(t) if t.is_punct('<') => depth += 1,
                Some(t) if t.is_punct('>') => depth -= 1,
                // `(` in a generic position: `Fn(A) -> B` bounds.
                Some(t) if t.is_punct('(') => {
                    self.pos -= 1;
                    self.skip_group('(', ')');
                }
                _ => {}
            }
        }
    }

    /// Skip attribute(s) `#[...]` / `#![...]`.
    fn skip_attrs(&mut self) {
        loop {
            if self.out_of_fuel() {
                return;
            }
            if self.at_punct('#') {
                let next = self.peek_at(1);
                let off = if next.is_some_and(|t| t.is_punct('!')) {
                    2
                } else {
                    1
                };
                if self.peek_at(off).is_some_and(|t| t.is_punct('[')) {
                    self.pos += off;
                    self.skip_group('[', ']');
                    continue;
                }
            }
            return;
        }
    }

    /// Item scanner: collects `fn`s, recurses into `impl`/`mod`/`trait`
    /// bodies, skips everything else structurally.
    fn items(&mut self, qual: &str) {
        while self.pos < self.toks.len() {
            if self.out_of_fuel() {
                return;
            }
            self.skip_attrs();
            let Some(t) = self.peek() else { return };
            match t.kind {
                TokKind::Ident => match t.text.as_str() {
                    "fn" => self.item_fn(qual),
                    "impl" | "trait" => {
                        let kw = t.text.clone();
                        self.pos += 1;
                        let name = self.impl_target_name(&kw);
                        if self.at_punct('{') {
                            let end = self.matching_brace_end();
                            let save = end;
                            self.pos += 1; // inside the `{`
                            self.items_until(save, &name);
                            self.pos = save.min(self.toks.len());
                            self.eat_punct('}');
                        }
                    }
                    "mod" => {
                        self.pos += 1;
                        self.bump(); // module name
                        if self.at_punct('{') {
                            let end = self.matching_brace_end();
                            self.pos += 1;
                            self.items_until(end, qual);
                            self.pos = end.min(self.toks.len());
                            self.eat_punct('}');
                        } else {
                            self.eat_punct(';');
                        }
                    }
                    // Modifiers in front of `fn` (or other items): just
                    // step over them and loop.
                    "pub" => {
                        self.pos += 1;
                        if self.at_punct('(') {
                            self.skip_group('(', ')');
                        }
                    }
                    "unsafe" | "const" | "async" | "extern" | "default" => {
                        self.pos += 1;
                        // `extern "C"` literal.
                        if self.peek().is_some_and(|t| t.kind == TokKind::Literal) {
                            self.pos += 1;
                        }
                        // `const NAME: ... = ...;` is an item, not a
                        // modifier; detect by the next token NOT being
                        // `fn`-introducing and skip to `;`.
                        if !self.peek().is_some_and(|t| {
                            t.is_ident("fn") || t.is_ident("unsafe") || t.is_ident("extern")
                        }) && t.is_ident("const")
                        {
                            self.skip_to_item_end();
                        }
                    }
                    "use" | "static" | "type" | "macro_rules" => {
                        self.pos += 1;
                        self.skip_to_item_end();
                    }
                    "struct" | "enum" | "union" => {
                        self.pos += 1;
                        self.skip_to_item_end();
                    }
                    _ => {
                        self.pos += 1;
                    }
                },
                TokKind::Punct('{') => self.skip_group('{', '}'),
                _ => {
                    self.pos += 1;
                }
            }
        }
    }

    /// Like [`items`] but stops at token index `end`.
    fn items_until(&mut self, end: usize, qual: &str) {
        let save = self.toks;
        let slice_end = end.min(save.len());
        // Reuse the same scanner by bounding the cursor manually.
        while self.pos < slice_end {
            if self.out_of_fuel() {
                return;
            }
            let before = self.pos;
            self.items_step(qual, slice_end);
            if self.pos <= before {
                self.pos = before + 1;
            }
        }
    }

    /// One step of the item scanner (bounded variant).
    fn items_step(&mut self, qual: &str, end: usize) {
        self.skip_attrs();
        if self.pos >= end {
            return;
        }
        let Some(t) = self.peek() else { return };
        match t.kind {
            TokKind::Ident => match t.text.as_str() {
                "fn" => self.item_fn(qual),
                "impl" | "trait" => {
                    let kw = t.text.clone();
                    self.pos += 1;
                    let name = self.impl_target_name(&kw);
                    if self.at_punct('{') {
                        let inner_end = self.matching_brace_end();
                        self.pos += 1;
                        self.items_until(inner_end.min(end), &name);
                        self.pos = inner_end.min(self.toks.len());
                        self.eat_punct('}');
                    }
                }
                "mod" => {
                    self.pos += 1;
                    self.bump();
                    if self.at_punct('{') {
                        let inner_end = self.matching_brace_end();
                        self.pos += 1;
                        self.items_until(inner_end.min(end), qual);
                        self.pos = inner_end.min(self.toks.len());
                        self.eat_punct('}');
                    } else {
                        self.eat_punct(';');
                    }
                }
                "pub" => {
                    self.pos += 1;
                    if self.at_punct('(') {
                        self.skip_group('(', ')');
                    }
                }
                "unsafe" | "const" | "async" | "extern" | "default" => {
                    let is_const = t.is_ident("const");
                    self.pos += 1;
                    if self.peek().is_some_and(|t| t.kind == TokKind::Literal) {
                        self.pos += 1;
                    }
                    if is_const
                        && !self.peek().is_some_and(|t| {
                            t.is_ident("fn") || t.is_ident("unsafe") || t.is_ident("extern")
                        })
                    {
                        self.skip_to_item_end();
                    }
                }
                "use" | "static" | "type" | "macro_rules" | "struct" | "enum" | "union" => {
                    self.pos += 1;
                    self.skip_to_item_end();
                }
                _ => {
                    self.pos += 1;
                }
            },
            TokKind::Punct('{') => self.skip_group('{', '}'),
            _ => {
                self.pos += 1;
            }
        }
    }

    /// After `impl` / `trait`: find the type name this block is for and
    /// leave the cursor at the `{` (or wherever scanning stopped).
    /// `impl<T> Foo for Bar<T> where ...` names `Bar`.
    fn impl_target_name(&mut self, _kw: &str) -> String {
        let mut last_ident = String::new();
        while let Some(t) = self.peek() {
            if self.out_of_fuel() {
                break;
            }
            match t.kind {
                TokKind::Punct('{') | TokKind::Punct(';') => break,
                TokKind::Punct('<') => self.skip_generics(),
                TokKind::Punct('(') => self.skip_group('(', ')'),
                TokKind::Ident if t.text == "where" => {
                    // Skip the where clause wholesale.
                    while let Some(w) = self.peek() {
                        if w.is_punct('{') || w.is_punct(';') {
                            break;
                        }
                        if w.is_punct('<') {
                            self.skip_generics();
                        } else {
                            self.pos += 1;
                        }
                        if self.out_of_fuel() {
                            break;
                        }
                    }
                }
                TokKind::Ident if t.text != "for" && t.text != "dyn" && t.text != "mut" => {
                    last_ident = t.text.clone();
                    self.pos += 1;
                }
                _ => {
                    self.pos += 1;
                }
            }
        }
        last_ident
    }

    /// Token index of the `}` matching the `{` at the cursor.
    fn matching_brace_end(&self) -> usize {
        let mut depth = 0i32;
        let mut i = self.pos;
        while i < self.toks.len() {
            match self.toks[i].kind {
                TokKind::Punct('{') => depth += 1,
                TokKind::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        self.toks.len()
    }

    /// Skip a non-fn item: to the `;` or past the matching `{...}`
    /// (whichever comes first at depth 0).
    fn skip_to_item_end(&mut self) {
        while let Some(t) = self.peek() {
            if self.out_of_fuel() {
                return;
            }
            match t.kind {
                TokKind::Punct(';') => {
                    self.pos += 1;
                    return;
                }
                TokKind::Punct('{') => {
                    self.skip_group('{', '}');
                    return;
                }
                TokKind::Punct('<') => self.skip_generics(),
                TokKind::Punct('(') => self.skip_group('(', ')'),
                TokKind::Punct('[') => self.skip_group('[', ']'),
                _ => {
                    self.pos += 1;
                }
            }
        }
    }

    /// `fn name<G>(params) -> Ret where ... { body }`
    fn item_fn(&mut self, qual: &str) {
        let fn_line = self.line();
        let in_test = self.in_test.get(self.pos).copied().unwrap_or(false);
        self.pos += 1; // `fn`
        let name = match self.peek() {
            Some(t) if t.kind == TokKind::Ident => {
                let n = t.text.clone();
                self.pos += 1;
                n
            }
            _ => return,
        };
        if self.at_punct('<') {
            self.skip_generics();
        }
        let params = if self.at_punct('(') {
            self.fn_params()
        } else {
            Vec::new()
        };
        // Return type + where clause: skip to body `{` or decl `;`.
        loop {
            if self.out_of_fuel() {
                return;
            }
            match self.peek() {
                None => return,
                Some(t) if t.is_punct('{') => break,
                Some(t) if t.is_punct(';') => {
                    self.pos += 1;
                    return; // trait method declaration, no body
                }
                Some(t) if t.is_punct('<') => self.skip_generics(),
                Some(t) if t.is_punct('(') => self.skip_group('(', ')'),
                Some(t) if t.is_punct('[') => self.skip_group('[', ']'),
                _ => {
                    self.pos += 1;
                }
            }
        }
        let body = self.block();
        let qual_name = if qual.is_empty() {
            name.clone()
        } else {
            format!("{qual}::{name}")
        };
        self.fns.push(FnDef {
            name,
            qual: qual_name,
            params,
            body,
            line: fn_line,
            in_test,
        });
    }

    /// Parse `(a: T, mut b: U, &self, (x, y): V)` → bound names.
    fn fn_params(&mut self) -> Vec<String> {
        let mut params = Vec::new();
        self.eat_punct('(');
        let mut depth = 1i32;
        let mut current: Vec<String> = Vec::new();
        let mut seen_colon_at_top = false;
        while depth > 0 {
            if self.out_of_fuel() {
                break;
            }
            let Some(t) = self.bump() else { break };
            match t.kind {
                TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
                TokKind::Punct(')') | TokKind::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        if let Some(n) = current.first() {
                            params.push(n.clone());
                        }
                    }
                }
                TokKind::Punct('<') => {
                    self.pos -= 1;
                    self.skip_generics();
                }
                TokKind::Punct(',') if depth == 1 => {
                    if let Some(n) = current.first() {
                        params.push(n.clone());
                    }
                    current.clear();
                    seen_colon_at_top = false;
                }
                TokKind::Punct(':') if depth == 1 => {
                    // `::` inside a type never appears before the param
                    // colon; after the first `:` everything is type.
                    seen_colon_at_top = true;
                }
                TokKind::Ident if !seen_colon_at_top && depth == 1 => {
                    let s = t.text.as_str();
                    if s == "self" {
                        current.clear();
                        current.push("self".to_string());
                    } else if s != "mut" && s != "ref" && s != "dyn" {
                        current.push(t.text.clone());
                    }
                }
                _ => {}
            }
        }
        params
    }

    /// Parse `{ ... }` into a [`Block`]. The cursor is on the `{`.
    fn block(&mut self) -> Block {
        let mut blk = Block::default();
        if !self.eat_punct('{') {
            return blk;
        }
        loop {
            if self.out_of_fuel() {
                return blk;
            }
            self.skip_attrs();
            let Some(t) = self.peek() else { return blk };
            match t.kind {
                TokKind::Punct('}') => {
                    self.pos += 1;
                    return blk;
                }
                TokKind::Punct(';') => {
                    self.pos += 1;
                }
                TokKind::Ident if t.text == "let" => {
                    let line = t.line;
                    self.pos += 1;
                    let names = self.pattern_names_until_eq_or_semi();
                    let init = if self.eat_punct('=') {
                        Some(self.expr(false))
                    } else {
                        None
                    };
                    // let-else: `let Some(x) = e else { ... };`
                    if self.at_ident("else") {
                        self.pos += 1;
                        if self.at_punct('{') {
                            let b = self.block();
                            blk.stmts.push(Stmt::Expr(Expr::BlockExpr(Box::new(b))));
                        }
                    }
                    self.eat_punct(';');
                    blk.stmts.push(Stmt::Let { names, init, line });
                }
                TokKind::Ident if t.text == "return" => {
                    let line = t.line;
                    self.pos += 1;
                    let value = if self.at_punct(';') || self.at_punct('}') {
                        None
                    } else {
                        Some(self.expr(false))
                    };
                    self.eat_punct(';');
                    blk.stmts.push(Stmt::Return(value, line));
                }
                // Items nested in a body.
                TokKind::Ident
                    if matches!(
                        t.text.as_str(),
                        "fn" | "use"
                            | "struct"
                            | "enum"
                            | "impl"
                            | "mod"
                            | "trait"
                            | "static"
                            | "type"
                            | "macro_rules"
                    ) =>
                {
                    // A nested fn still gets analyzed (flattened).
                    self.items_step("", self.matching_end_for_stmt());
                }
                _ => {
                    let line = t.line;
                    let e = self.expr(false);
                    // Assignment statement? `target = value;` or `+=`.
                    if let Some(op_len) = self.assignment_op_len() {
                        self.pos += op_len;
                        let value = self.expr(false);
                        self.eat_punct(';');
                        blk.stmts.push(Stmt::Assign {
                            target: e,
                            value,
                            line,
                        });
                    } else if self.eat_punct(';') {
                        blk.stmts.push(Stmt::Expr(e));
                    } else if self.at_punct('}') {
                        self.pos += 1;
                        blk.tail = Some(e);
                        return blk;
                    } else {
                        // Block-valued statement (`if ... {}` `match`):
                        // no `;` required; just keep going.
                        blk.stmts.push(Stmt::Expr(e));
                    }
                }
            }
        }
    }

    /// Upper bound for a statement-level nested item scan.
    fn matching_end_for_stmt(&self) -> usize {
        self.toks.len()
    }

    /// At an assignment operator? Returns its token length.
    /// `=` (not `==`), `+=`, `-=`, `*=`, `/=`, `%=`, `^=`, `&=`, `|=`,
    /// `<<=`, `>>=`.
    fn assignment_op_len(&self) -> Option<usize> {
        let t = self.peek()?;
        let TokKind::Punct(c) = t.kind else {
            return None;
        };
        let next_eq = |off: usize| self.peek_at(off).is_some_and(|t| t.is_punct('='));
        match c {
            '=' if !next_eq(1) => Some(1),
            '+' | '-' | '*' | '/' | '%' | '^' | '&' | '|' if next_eq(1) => Some(2),
            '<' if self.peek_at(1).is_some_and(|t| t.is_punct('<')) && next_eq(2) => Some(3),
            '>' if self.peek_at(1).is_some_and(|t| t.is_punct('>')) && next_eq(2) => Some(3),
            _ => None,
        }
    }

    /// Collect pattern-bound names until `=`, `;`, or `else`/`in` at
    /// depth 0. Heuristic: lowercase-initial identifiers not adjacent
    /// to `::` and not struct-field keys followed by `:` ... are binds;
    /// this over-approximates (shorthand struct patterns bind too,
    /// which is correct).
    fn pattern_names_until_eq_or_semi(&mut self) -> Vec<String> {
        self.pattern_names(&['='], &[";"])
    }

    /// Collect pattern names until one of `stop_punct` at depth 0 or an
    /// ident in `stop_idents`. Leaves the cursor ON the stop token.
    fn pattern_names(&mut self, stop_punct: &[char], stop_idents: &[&str]) -> Vec<String> {
        let mut names = Vec::new();
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            if self.out_of_fuel() {
                break;
            }
            match t.kind {
                TokKind::Punct(c) if depth == 0 && stop_punct.contains(&c) => break,
                TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => {
                    depth += 1;
                    self.pos += 1;
                }
                TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                    self.pos += 1;
                }
                TokKind::Punct('<') => self.skip_generics(),
                TokKind::Punct(';') if depth == 0 => break,
                TokKind::Ident => {
                    if depth == 0 && stop_idents.contains(&t.text.as_str()) {
                        break;
                    }
                    let is_path = self.at_path_sep_before()
                        || (self.peek_at(1).is_some_and(|n| n.is_punct(':'))
                            && self.peek_at(2).is_some_and(|n| n.is_punct(':')));
                    let upper = t.text.chars().next().is_some_and(|c| c.is_uppercase());
                    let kw = matches!(t.text.as_str(), "mut" | "ref" | "box" | "_" | "if");
                    if !is_path && !upper && !kw {
                        names.push(t.text.clone());
                    }
                    self.pos += 1;
                }
                _ => {
                    self.pos += 1;
                }
            }
        }
        names.sort();
        names.dedup();
        names
    }

    /// Was the previous token pair `::` (i.e. this ident is a path
    /// continuation like the `Relaxed` in `Ordering::Relaxed`)?
    fn at_path_sep_before(&self) -> bool {
        self.pos >= 2
            && self.toks[self.pos - 1].is_punct(':')
            && self.toks[self.pos - 2].is_punct(':')
    }

    /// Expression parser. `no_struct` forbids `Path { .. }` struct
    /// literals (scrutinee / condition position).
    fn expr(&mut self, no_struct: bool) -> Expr {
        let mut parts = vec![self.expr_one(no_struct)];
        // Binary-operator chain: flatten operands.
        loop {
            if self.out_of_fuel() {
                break;
            }
            if self.assignment_op_len().is_some() {
                break;
            }
            let Some(t) = self.peek() else { break };
            let TokKind::Punct(c) = t.kind else { break };
            let next = match self.peek_at(1).map(|n| n.kind) {
                Some(TokKind::Punct(n)) => Some(n),
                _ => None,
            };
            let two = |a: char, b: char| c == a && next == Some(b);
            let is_range = two('.', '.');
            let len = if two('=', '=')
                || two('!', '=')
                || two('<', '=')
                || two('>', '=')
                || two('&', '&')
                || two('|', '|')
                || two('<', '<')
                || two('>', '>')
                || is_range
            {
                2
            } else if matches!(c, '+' | '-' | '*' | '/' | '%' | '^' | '&' | '|' | '<' | '>') {
                1
            } else {
                break;
            };
            self.pos += len;
            if is_range && self.eat_punct('=') {
                // `..=`
            }
            // Range with open end (`a..`): the next token may already
            // terminate the expression.
            if self.expr_terminator() {
                break;
            }
            parts.push(self.expr_one(no_struct));
        }
        if parts.len() == 1 {
            parts.pop().unwrap_or(Expr::Lit)
        } else {
            Expr::Bin { parts }
        }
    }

    fn expr_terminator(&self) -> bool {
        match self.peek() {
            None => true,
            Some(t) => matches!(
                t.kind,
                TokKind::Punct(';')
                    | TokKind::Punct(',')
                    | TokKind::Punct(')')
                    | TokKind::Punct(']')
                    | TokKind::Punct('}')
                    | TokKind::Punct('{')
            ),
        }
    }

    /// One operand: prefix* primary postfix*.
    fn expr_one(&mut self, no_struct: bool) -> Expr {
        if self.out_of_fuel() {
            return Expr::Lit;
        }
        // Prefix operators.
        if self.at_punct('&') {
            self.pos += 1;
            if self.at_ident("mut") {
                self.pos += 1;
            }
            let inner = self.expr_one(no_struct);
            // `&` binds tighter than `as`: the recursive expr_one has
            // already eaten any cast chain, so rotate it back outside
            // the borrow (`&x as *const _` is `(&x) as *const _`).
            return self.postfix(wrap_ref(inner), no_struct);
        }
        if self.at_punct('*') || self.at_punct('-') || self.at_punct('!') {
            self.pos += 1;
            let inner = self.expr_one(no_struct);
            return Expr::Opaque(vec![inner]);
        }
        if self.at_ident("move") || self.at_ident("box") {
            self.pos += 1;
            return self.expr_one(no_struct);
        }
        let primary = self.primary(no_struct);
        self.postfix(primary, no_struct)
    }

    fn primary(&mut self, no_struct: bool) -> Expr {
        let Some(t) = self.peek() else {
            return Expr::Lit;
        };
        let line = t.line;
        match t.kind {
            TokKind::Literal | TokKind::Number => {
                self.pos += 1;
                Expr::Lit
            }
            TokKind::Lifetime => {
                // Loop label `'a: loop` or `break 'a`.
                self.pos += 1;
                self.eat_punct(':');
                self.primary(no_struct)
            }
            TokKind::Punct('(') => {
                self.pos += 1;
                let mut items = Vec::new();
                while !self.at_punct(')') {
                    if self.out_of_fuel() || self.peek().is_none() {
                        break;
                    }
                    items.push(self.expr(false));
                    if !self.eat_punct(',') {
                        break;
                    }
                }
                self.eat_punct(')');
                match items.len() {
                    0 => Expr::Lit,
                    1 => items.pop().unwrap_or(Expr::Lit),
                    _ => Expr::Tuple(items),
                }
            }
            TokKind::Punct('[') => {
                self.pos += 1;
                let mut items = Vec::new();
                while !self.at_punct(']') {
                    if self.out_of_fuel() || self.peek().is_none() {
                        break;
                    }
                    items.push(self.expr(false));
                    if !self.eat_punct(',') && !self.eat_punct(';') {
                        break;
                    }
                }
                self.eat_punct(']');
                Expr::Opaque(items)
            }
            TokKind::Punct('{') => Expr::BlockExpr(Box::new(self.block())),
            TokKind::Punct('|') => self.closure(),
            TokKind::Punct('.') => {
                // `..expr` range start or `..` alone.
                self.pos += 1;
                self.eat_punct('.');
                self.eat_punct('=');
                if self.expr_terminator() {
                    Expr::Lit
                } else {
                    let e = self.expr_one(no_struct);
                    Expr::Opaque(vec![e])
                }
            }
            TokKind::Ident => {
                let kw = t.text.clone();
                match kw.as_str() {
                    "if" => self.if_expr(),
                    "match" => self.match_expr(),
                    "loop" => {
                        self.pos += 1;
                        Expr::Loop {
                            binds: Vec::new(),
                            iter: None,
                            body: Box::new(self.block()),
                        }
                    }
                    "while" => {
                        self.pos += 1;
                        if self.at_ident("let") {
                            self.pos += 1;
                            let binds = self.pattern_names(&['='], &[]);
                            self.eat_punct('=');
                            let scrut = self.expr(true);
                            Expr::Loop {
                                binds,
                                iter: Some(Box::new(scrut)),
                                body: Box::new(self.block()),
                            }
                        } else {
                            let cond = self.expr(true);
                            Expr::Loop {
                                binds: Vec::new(),
                                iter: Some(Box::new(cond)),
                                body: Box::new(self.block()),
                            }
                        }
                    }
                    "for" => {
                        self.pos += 1;
                        let binds = self.pattern_names(&[], &["in"]);
                        if self.at_ident("in") {
                            self.pos += 1;
                        }
                        let iter = self.expr(true);
                        Expr::Loop {
                            binds,
                            iter: Some(Box::new(iter)),
                            body: Box::new(self.block()),
                        }
                    }
                    "unsafe" | "async" => {
                        self.pos += 1;
                        if self.at_punct('{') {
                            Expr::BlockExpr(Box::new(self.block()))
                        } else {
                            self.expr_one(no_struct)
                        }
                    }
                    "return" => {
                        self.pos += 1;
                        let value = if self.expr_terminator() {
                            None
                        } else {
                            Some(Box::new(self.expr(no_struct)))
                        };
                        Expr::Ret { value, line }
                    }
                    "break" | "continue" => {
                        self.pos += 1;
                        if self.peek().is_some_and(|t| t.kind == TokKind::Lifetime) {
                            self.pos += 1;
                        }
                        if self.expr_terminator() {
                            Expr::Lit
                        } else {
                            let e = self.expr(no_struct);
                            Expr::Opaque(vec![e])
                        }
                    }
                    "move" => {
                        self.pos += 1;
                        self.closure()
                    }
                    _ => self.path_expr(no_struct),
                }
            }
            _ => {
                self.pos += 1;
                Expr::Lit
            }
        }
    }

    /// `|a, b| body` / `||` (the cursor is on the first `|`).
    fn closure(&mut self) -> Expr {
        let mut params = Vec::new();
        if self.at_punct('|') && self.peek_at(1).is_some_and(|t| t.is_punct('|')) {
            self.pos += 2; // `||`
        } else if self.eat_punct('|') {
            // Params until the closing `|` at depth 0.
            let mut depth = 0i32;
            let mut seen_colon = false;
            while let Some(t) = self.peek() {
                if self.out_of_fuel() {
                    break;
                }
                match t.kind {
                    TokKind::Punct('|') if depth == 0 => {
                        self.pos += 1;
                        break;
                    }
                    TokKind::Punct('(') | TokKind::Punct('[') => {
                        depth += 1;
                        self.pos += 1;
                    }
                    TokKind::Punct(')') | TokKind::Punct(']') => {
                        depth -= 1;
                        self.pos += 1;
                    }
                    TokKind::Punct('<') => self.skip_generics(),
                    TokKind::Punct(',') if depth == 0 => {
                        seen_colon = false;
                        self.pos += 1;
                    }
                    TokKind::Punct(':') => {
                        seen_colon = true;
                        self.pos += 1;
                    }
                    TokKind::Ident if !seen_colon => {
                        let s = t.text.as_str();
                        if s != "mut" && s != "ref" && s != "_" {
                            params.push(t.text.clone());
                        }
                        self.pos += 1;
                    }
                    _ => {
                        self.pos += 1;
                    }
                }
            }
        }
        // `-> Ty { .. }` closures.
        if self.at_punct('-') && self.peek_at(1).is_some_and(|t| t.is_punct('>')) {
            self.pos += 2;
            while let Some(t) = self.peek() {
                if t.is_punct('{') {
                    break;
                }
                if t.is_punct('<') {
                    self.skip_generics();
                } else {
                    self.pos += 1;
                }
                if self.out_of_fuel() {
                    break;
                }
            }
        }
        let body = self.expr(false);
        Expr::Closure {
            params,
            body: Box::new(body),
        }
    }

    fn if_expr(&mut self) -> Expr {
        self.pos += 1; // `if`
        if self.at_ident("let") {
            self.pos += 1;
            let binds = self.pattern_names(&['='], &[]);
            self.eat_punct('=');
            let scrut = self.expr(true);
            let then = self.block();
            let els = self.else_tail();
            let mut arms = vec![Arm {
                binds,
                body: Expr::BlockExpr(Box::new(then)),
            }];
            if let Some(e) = els {
                arms.push(Arm {
                    binds: Vec::new(),
                    body: e,
                });
            }
            return Expr::Match {
                scrut: Box::new(scrut),
                arms,
            };
        }
        let cond = self.expr(true);
        let then = self.block();
        let els = self.else_tail();
        Expr::If {
            cond: Box::new(cond),
            then: Box::new(then),
            els: els.map(Box::new),
        }
    }

    fn else_tail(&mut self) -> Option<Expr> {
        if !self.at_ident("else") {
            return None;
        }
        self.pos += 1;
        if self.at_ident("if") {
            Some(self.if_expr())
        } else if self.at_punct('{') {
            Some(Expr::BlockExpr(Box::new(self.block())))
        } else {
            None
        }
    }

    fn match_expr(&mut self) -> Expr {
        self.pos += 1; // `match`
        let scrut = self.expr(true);
        let mut arms = Vec::new();
        if self.eat_punct('{') {
            loop {
                if self.out_of_fuel() {
                    break;
                }
                self.skip_attrs();
                match self.peek() {
                    None => break,
                    Some(t) if t.is_punct('}') => {
                        self.pos += 1;
                        break;
                    }
                    _ => {}
                }
                // Pattern (incl. `|` alternations and `if` guard
                // tokens) up to `=>`.
                let binds = self.arm_pattern_names();
                // `=>`
                if self.at_punct('=') && self.peek_at(1).is_some_and(|t| t.is_punct('>')) {
                    self.pos += 2;
                } else {
                    // Malformed arm; bail out of the match body.
                    self.skip_to_brace_close();
                    break;
                }
                let body = self.expr(false);
                self.eat_punct(',');
                arms.push(Arm { binds, body });
            }
        }
        Expr::Match {
            scrut: Box::new(scrut),
            arms,
        }
    }

    /// Pattern tokens of one match arm, up to (not including) `=>`.
    fn arm_pattern_names(&mut self) -> Vec<String> {
        let mut names = Vec::new();
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            if self.out_of_fuel() {
                break;
            }
            match t.kind {
                TokKind::Punct('=')
                    if depth == 0 && self.peek_at(1).is_some_and(|n| n.is_punct('>')) =>
                {
                    break;
                }
                TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => {
                    depth += 1;
                    self.pos += 1;
                }
                TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                    self.pos += 1;
                }
                TokKind::Ident => {
                    let is_path = (self.peek_at(1).is_some_and(|n| n.is_punct(':'))
                        && self.peek_at(2).is_some_and(|n| n.is_punct(':')))
                        || self.at_path_sep_before();
                    let upper = t.text.chars().next().is_some_and(|c| c.is_uppercase());
                    let kw = matches!(t.text.as_str(), "mut" | "ref" | "box" | "_" | "if");
                    if !is_path && !upper && !kw {
                        names.push(t.text.clone());
                    }
                    self.pos += 1;
                }
                _ => {
                    self.pos += 1;
                }
            }
        }
        names.sort();
        names.dedup();
        names
    }

    fn skip_to_brace_close(&mut self) {
        let mut depth = 1i32;
        while let Some(t) = self.bump() {
            if self.out_of_fuel() {
                return;
            }
            match t.kind {
                TokKind::Punct('{') => depth += 1,
                TokKind::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        return;
                    }
                }
                _ => {}
            }
        }
    }

    /// Path-headed expression: `a::b::c`, `a::b::c(args)`,
    /// `Path { .. }`, `mac!(...)`.
    fn path_expr(&mut self, no_struct: bool) -> Expr {
        let line = self.line();
        let mut segs = Vec::new();
        loop {
            if self.out_of_fuel() {
                break;
            }
            match self.peek() {
                Some(t) if t.kind == TokKind::Ident => {
                    segs.push(t.text.clone());
                    self.pos += 1;
                }
                _ => break,
            }
            if self.at_path_sep() {
                self.pos += 2;
                // Turbofish `::<...>`.
                if self.at_punct('<') {
                    self.skip_generics();
                }
                continue;
            }
            break;
        }
        if segs.is_empty() {
            // Defensive: `path_expr` is only entered on an ident.
            self.pos += 1;
            return Expr::Lit;
        }
        // Macro invocation `path!(...)` / `path![...]` / `path!{...}`.
        if self.at_punct('!')
            && self
                .peek_at(1)
                .is_some_and(|t| t.is_punct('(') || t.is_punct('[') || t.is_punct('{'))
        {
            self.pos += 1;
            let (open, close) = match self.peek().map(|t| t.kind) {
                Some(TokKind::Punct('(')) => ('(', ')'),
                Some(TokKind::Punct('[')) => ('[', ']'),
                _ => ('{', '}'),
            };
            let args = self.macro_args(open, close);
            return Expr::Call {
                path: segs,
                args,
                line,
            };
        }
        if self.at_punct('(') {
            self.pos += 1;
            let mut args = Vec::new();
            while !self.at_punct(')') {
                if self.out_of_fuel() || self.peek().is_none() {
                    break;
                }
                args.push(self.expr(false));
                if !self.eat_punct(',') {
                    break;
                }
            }
            self.eat_punct(')');
            return Expr::Call {
                path: segs,
                args,
                line,
            };
        }
        // Struct literal.
        if !no_struct
            && self.at_punct('{')
            && segs
                .last()
                .and_then(|s| s.chars().next())
                .is_some_and(|c| c.is_uppercase())
        {
            self.pos += 1;
            let mut fields = Vec::new();
            loop {
                if self.out_of_fuel() {
                    break;
                }
                match self.peek() {
                    None => break,
                    Some(t) if t.is_punct('}') => {
                        self.pos += 1;
                        break;
                    }
                    Some(t) if t.is_punct(',') => {
                        self.pos += 1;
                    }
                    Some(t) if t.is_punct('.') => {
                        // `..base`
                        self.pos += 1;
                        self.eat_punct('.');
                        if !self.at_punct('}') {
                            fields.push(self.expr(false));
                        }
                    }
                    Some(t) if t.kind == TokKind::Ident => {
                        let field_name = t.text.clone();
                        self.pos += 1;
                        if self.at_punct(':') && !self.at_path_sep() {
                            self.pos += 1;
                            fields.push(self.expr(false));
                        } else {
                            // Shorthand `Foo { x }` → reads local `x`.
                            fields.push(Expr::Path {
                                segs: vec![field_name],
                                line,
                            });
                        }
                    }
                    _ => {
                        self.pos += 1;
                    }
                }
            }
            return Expr::StructLit {
                path: segs,
                fields,
                line,
            };
        }
        Expr::Path { segs, line }
    }

    /// Macro arguments: comma-separated expressions, garbage tolerated.
    fn macro_args(&mut self, open: char, close: char) -> Vec<Expr> {
        let mut args = Vec::new();
        if !self.eat_punct(open) {
            return args;
        }
        loop {
            if self.out_of_fuel() {
                return args;
            }
            match self.peek() {
                None => return args,
                Some(t) if t.is_punct(close) => {
                    self.pos += 1;
                    return args;
                }
                Some(t) if t.is_punct(',') || t.is_punct(';') => {
                    self.pos += 1;
                }
                _ => {
                    let before = self.pos;
                    args.push(self.expr(false));
                    if self.pos == before {
                        self.pos += 1; // unparseable token: step over
                    }
                }
            }
        }
    }

    /// Postfix chain: `.method(...)`, `.field`, `?`, `[idx]`, `as Ty`,
    /// `(args)` on a non-path callee.
    fn postfix(&mut self, mut e: Expr, _no_struct: bool) -> Expr {
        loop {
            if self.out_of_fuel() {
                return e;
            }
            let Some(t) = self.peek() else { return e };
            match t.kind {
                TokKind::Punct('?') => {
                    self.pos += 1;
                }
                TokKind::Punct('.') => {
                    // Not a range `..`.
                    if self.peek_at(1).is_some_and(|n| n.is_punct('.')) {
                        return e;
                    }
                    let line = t.line;
                    self.pos += 1;
                    match self.peek() {
                        Some(n) if n.kind == TokKind::Ident && n.text == "await" => {
                            self.pos += 1;
                        }
                        Some(n) if n.kind == TokKind::Ident => {
                            let name = n.text.clone();
                            self.pos += 1;
                            // Turbofish `.collect::<...>`.
                            if self.at_path_sep() {
                                self.pos += 2;
                                if self.at_punct('<') {
                                    self.skip_generics();
                                }
                            }
                            if self.at_punct('(') {
                                self.pos += 1;
                                let mut args = Vec::new();
                                while !self.at_punct(')') {
                                    if self.out_of_fuel() || self.peek().is_none() {
                                        break;
                                    }
                                    args.push(self.expr(false));
                                    if !self.eat_punct(',') {
                                        break;
                                    }
                                }
                                self.eat_punct(')');
                                e = Expr::Method {
                                    recv: Box::new(e),
                                    name,
                                    args,
                                    line,
                                };
                            } else {
                                e = Expr::Field {
                                    base: Box::new(e),
                                    name,
                                    line,
                                };
                            }
                        }
                        Some(n) if n.kind == TokKind::Number => {
                            // Tuple index `.0`.
                            self.pos += 1;
                            e = Expr::Field {
                                base: Box::new(e),
                                name: "tuple".into(),
                                line,
                            };
                        }
                        _ => return e,
                    }
                }
                TokKind::Punct('[') => {
                    self.pos += 1;
                    let idx = if self.at_punct(']') {
                        Expr::Lit
                    } else {
                        self.expr(false)
                    };
                    // Swallow anything left before the `]`.
                    while let Some(t) = self.peek() {
                        if t.is_punct(']') {
                            break;
                        }
                        self.pos += 1;
                        if self.out_of_fuel() {
                            break;
                        }
                    }
                    self.eat_punct(']');
                    e = Expr::Index {
                        base: Box::new(e),
                        idx: Box::new(idx),
                    };
                }
                TokKind::Punct('(') => {
                    // Calling a non-path value (closure, fn pointer).
                    self.pos += 1;
                    let mut args = vec![e];
                    while !self.at_punct(')') {
                        if self.out_of_fuel() || self.peek().is_none() {
                            break;
                        }
                        args.push(self.expr(false));
                        if !self.eat_punct(',') {
                            break;
                        }
                    }
                    self.eat_punct(')');
                    e = Expr::Opaque(args);
                }
                TokKind::Ident if t.text == "as" => {
                    let line = t.line;
                    self.pos += 1;
                    let ty = self.cast_type();
                    e = Expr::Cast {
                        inner: Box::new(e),
                        ty,
                        line,
                    };
                }
                _ => return e,
            }
        }
    }

    /// Parse the type after `as`; returns the last path segment
    /// (`usize` for `*const T as usize`).
    fn cast_type(&mut self) -> String {
        let mut last = String::new();
        // Pointer casts keep a `*` prefix (`*const E` → `*E`) so the
        // lowering can tell an address-producing cast from a value one.
        let mut ptr = false;
        loop {
            if self.out_of_fuel() {
                return last;
            }
            let Some(t) = self.peek() else { return last };
            match t.kind {
                TokKind::Ident => {
                    match t.text.as_str() {
                        // Pointer/ref qualifiers: keep scanning.
                        "const" | "mut" | "dyn" => {
                            self.pos += 1;
                        }
                        _ => {
                            last = t.text.clone();
                            self.pos += 1;
                            if self.at_path_sep() {
                                self.pos += 2;
                                continue;
                            }
                            if self.at_punct('<') {
                                self.skip_generics();
                            }
                            // A further `as` chain re-enters postfix.
                            if ptr {
                                last.insert(0, '*');
                            }
                            return last;
                        }
                    }
                }
                TokKind::Punct('*') => {
                    ptr = true;
                    self.pos += 1;
                }
                TokKind::Punct('&') => {
                    self.pos += 1;
                }
                _ => {
                    if ptr && !last.starts_with('*') {
                        last.insert(0, '*');
                    }
                    return last;
                }
            }
        }
    }
}

/// Push a borrow below any cast chain: `Ref{Cast{Cast{x}}}` becomes
/// `Cast{Cast{Ref{x}}}`, matching Rust's precedence where unary `&`
/// binds tighter than `as`.
fn wrap_ref(e: Expr) -> Expr {
    match e {
        Expr::Cast { inner, ty, line } => Expr::Cast {
            inner: Box::new(wrap_ref(*inner)),
            ty,
            line,
        },
        other => Expr::Ref {
            inner: Box::new(other),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn fns(src: &str) -> Vec<FnDef> {
        parse_file(&lex(src))
    }

    #[test]
    fn free_fn_and_method_are_found_with_params() {
        let src = r#"
            fn free(a: u64, mut b: &str) -> u64 { a }
            impl Foo {
                pub fn method(&self, x: u64) -> u64 { x }
            }
        "#;
        let f = fns(src);
        assert_eq!(f.len(), 2, "{f:#?}");
        assert_eq!(f[0].name, "free");
        assert_eq!(f[0].params, vec!["a", "b"]);
        assert_eq!(f[1].qual, "Foo::method");
        assert_eq!(f[1].params, vec!["self", "x"]);
    }

    #[test]
    fn let_binds_and_call_shapes_parse() {
        let src = "fn f() { let t = clock(); let u = t.as_nanos(); g(u); }";
        let f = fns(src);
        assert_eq!(f.len(), 1);
        let b = &f[0].body;
        assert_eq!(b.stmts.len(), 3);
        match &b.stmts[0] {
            Stmt::Let { names, init, .. } => {
                assert_eq!(names, &vec!["t".to_string()]);
                assert!(matches!(init, Some(Expr::Call { .. })));
            }
            other => panic!("stmt0: {other:?}"),
        }
        match &b.stmts[1] {
            Stmt::Let { init, .. } => {
                assert!(matches!(init, Some(Expr::Method { .. })));
            }
            other => panic!("stmt1: {other:?}"),
        }
    }

    #[test]
    fn match_arms_bind_names() {
        let src = "fn f(x: Option<u64>) -> u64 { match x { Some(v) => v, None => 0 } }";
        let f = fns(src);
        let Some(Expr::Match { arms, .. }) = &f[0].body.tail else {
            panic!("no match tail: {f:#?}");
        };
        assert_eq!(arms.len(), 2);
        assert_eq!(arms[0].binds, vec!["v".to_string()]);
        assert!(arms[1].binds.is_empty());
    }

    #[test]
    fn closures_and_for_loops_parse() {
        let src = "fn f(v: Vec<u64>) { for x in v.iter() { g(x); } let s = v.iter().map(|y| y + 1).sum::<u64>(); }";
        let f = fns(src);
        assert_eq!(f.len(), 1);
        let Stmt::Expr(Expr::Loop { binds, iter, .. }) = &f[0].body.stmts[0] else {
            panic!("no for loop: {:#?}", f[0].body.stmts);
        };
        assert_eq!(binds, &vec!["x".to_string()]);
        assert!(iter.is_some());
    }

    #[test]
    fn cast_keeps_target_type() {
        let src = "fn f(x: &u64) -> usize { &x as *const _ as usize }";
        let f = fns(src);
        let Some(Expr::Cast { ty, .. }) = &f[0].body.tail else {
            panic!("no cast: {f:#?}");
        };
        assert_eq!(ty, "usize");
    }

    #[test]
    fn test_region_fns_are_marked() {
        let src = "#[cfg(test)]\nmod tests { fn t() {} }\nfn prod() {}";
        let f = fns(src);
        let t = f.iter().find(|f| f.name == "t").expect("t found");
        let p = f.iter().find(|f| f.name == "prod").expect("prod found");
        assert!(t.in_test);
        assert!(!p.in_test);
    }

    #[test]
    fn parser_survives_garbage_without_hanging() {
        let garbage = "fn f( { ) } match { => => let = = fn fn }} ]] || |x| as as";
        let _ = fns(garbage); // must terminate, not panic
        let weird = "impl<T: Fn(u8) -> u8> X<T> where T: Y { fn g(&self) { self.0(1); } }";
        let f = fns(weird);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].qual, "X::g");
    }
}
