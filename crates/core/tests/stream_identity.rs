//! Bit-identity gate for hot-path work: the dispatched event stream of
//! a battery of reference cells is pinned in a committed fixture, so a
//! "host-cost-only" optimization that moves a single virtual bit fails
//! here instead of silently changing results.
//!
//! Regenerate (only when a *semantic* change is intended and called
//! out in EXPERIMENTS.md) with:
//!
//! ```text
//! NOISELAB_UPDATE_FIXTURES=1 cargo test -p noiselab-core --test stream_identity
//! ```

use noiselab_core::{run_once, ExecConfig, Mitigation, Model, Platform};
use noiselab_workloads::{Babelstream, MiniFE, NBody, Workload};
use std::collections::BTreeMap;
use std::fmt::Write as _;

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/stream_hashes.json"
);

fn workloads() -> Vec<(&'static str, Box<dyn Workload>)> {
    vec![
        ("nbody", Box::new(noiselab_testutil::tiny_nbody(3))),
        (
            "babelstream",
            Box::new(Babelstream {
                elements: 200_000,
                iterations: 10,
                ..Babelstream::default()
            }),
        ),
        (
            "minife",
            Box::new(MiniFE {
                nx: 20,
                cg_iterations: 20,
                ..MiniFE::default()
            }),
        ),
        (
            "nbody-large",
            Box::new(NBody {
                bodies: 8_192,
                steps: 2,
                sycl_kernel_efficiency: 1.3,
            }),
        ),
    ]
}

fn battery() -> BTreeMap<String, String> {
    let p = Platform::intel();
    let configs = [
        ("Rm-OMP", ExecConfig::new(Model::Omp, Mitigation::Rm)),
        ("TP-OMP", ExecConfig::new(Model::Omp, Mitigation::Tp)),
        ("Rm-SYCL", ExecConfig::new(Model::Sycl, Mitigation::Rm)),
    ];
    let mut out = BTreeMap::new();
    for (wname, w) in workloads() {
        for (cname, cfg) in &configs {
            for seed in [1u64, 2] {
                for tracing in [false, true] {
                    let run = run_once(&p, w.as_ref(), cfg, seed, tracing, None)
                        .expect("battery run failed");
                    let key = format!(
                        "{wname}/{cname}/seed{seed}/{}",
                        if tracing { "traced" } else { "plain" }
                    );
                    out.insert(
                        key,
                        format!("{:016x}:{}", run.stream_hash, run.exec.nanos()),
                    );
                }
            }
        }
    }
    out
}

#[test]
fn event_streams_match_committed_fixture() {
    let got = battery();
    if std::env::var("NOISELAB_UPDATE_FIXTURES").is_ok_and(|v| v == "1") {
        let mut json = String::from("{\n");
        for (i, (k, v)) in got.iter().enumerate() {
            let comma = if i + 1 == got.len() { "" } else { "," };
            writeln!(json, "  \"{k}\": \"{v}\"{comma}").unwrap();
        }
        json.push_str("}\n");
        std::fs::write(FIXTURE, json).expect("write fixture");
        eprintln!(
            "stream_identity: fixture regenerated with {} cells",
            got.len()
        );
        return;
    }
    let raw = std::fs::read_to_string(FIXTURE)
        .expect("missing stream-hash fixture; run with NOISELAB_UPDATE_FIXTURES=1 to create it");
    // Flat `"key": "value"` map written by the update branch above;
    // parsed by hand because the vendored serde stub has no map
    // deserializer.
    let mut want = BTreeMap::new();
    for line in raw.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some(rest) = line.strip_prefix('"') else {
            continue;
        };
        let Some((key, rest)) = rest.split_once("\": \"") else {
            continue;
        };
        let Some(value) = rest.strip_suffix('"') else {
            continue;
        };
        want.insert(key.to_string(), value.to_string());
    }
    assert!(!want.is_empty(), "fixture parse failed");
    let mut bad = Vec::new();
    for (k, v) in &want {
        match got.get(k) {
            Some(g) if g == v => {}
            Some(g) => bad.push(format!("{k}: fixture {v} != current {g}")),
            None => bad.push(format!("{k}: cell missing from battery")),
        }
    }
    for k in got.keys() {
        if !want.contains_key(k) {
            bad.push(format!("{k}: not in fixture (regenerate)"));
        }
    }
    assert!(
        bad.is_empty(),
        "event-stream identity violated ({} cells):\n  {}",
        bad.len(),
        bad.join("\n  ")
    );
}
