//! The DVFS axis's acceptance property: with `enabled = false` (every
//! shipped preset except `intel-dvfs`), the frequency subsystem does
//! not exist — a run is bit-identical to today's whatever garbage the
//! other `DvfsConfig` fields hold. Enabling it must visibly change the
//! dispatched stream, and governor cells must replay exactly.

use noiselab_core::{
    run_once, run_once_instrumented, ExecConfig, Mitigation, Model, Observe, Platform,
};
use noiselab_kernel::KernelConfig;
use noiselab_machine::{DvfsConfig, Governor};
use noiselab_telemetry::TelemetryConfig;
use proptest::prelude::*;

fn workload() -> noiselab_workloads::NBody {
    noiselab_testutil::tiny_nbody(2)
}

fn gov(i: u8) -> Governor {
    Governor::ALL[i as usize % Governor::ALL.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Scrambling every disabled-DVFS field leaves a run bit-identical:
    /// stream hash, virtual exec time, metrics snapshot and trace.
    #[test]
    fn disabled_dvfs_fields_are_inert(
        seed in 1u64..50_000,
        sycl in any::<bool>(),
        g in any::<u8>(),
        min in 1u32..10_000_000,
        base in 1u32..10_000_000,
        turbo in 1u32..10_000_000,
        slots in 1u32..8,
    ) {
        let model = if sycl { Model::Sycl } else { Model::Omp };
        let cfg = ExecConfig::new(model, Mitigation::Rm);
        let reference = run_once(&Platform::intel(), &workload(), &cfg, seed, true, None)
            .expect("reference run failed");

        let mut p = Platform::intel();
        p.machine.dvfs = DvfsConfig {
            enabled: false,
            governor: gov(g),
            min_khz: min,
            base_khz: base,
            turbo_khz: turbo,
            turbo_slots: slots,
            ..DvfsConfig::default()
        };
        let scrambled = run_once(&p, &workload(), &cfg, seed, true, None)
            .expect("scrambled run failed");

        // A mismatch here means a disabled config leaked into the stream.
        prop_assert_eq!(reference.stream_hash, scrambled.stream_hash);
        prop_assert_eq!(reference.exec, scrambled.exec);
        prop_assert_eq!(&reference.trace, &scrambled.trace);
    }

    /// Governor cells replay bit for bit, and every governor is its own
    /// cell: distinct governors dispatch distinct streams on a workload
    /// long enough to heat up.
    #[test]
    fn governor_cells_replay_and_differ(
        seed in 1u64..50_000,
        pinned in any::<bool>(),
    ) {
        let mit = if pinned { Mitigation::Tp } else { Mitigation::Rm };
        let p = Platform::intel();
        let mut hashes = Vec::new();
        for g in Governor::ALL {
            let cfg = ExecConfig::new(Model::Omp, mit).with_governor(g);
            let a = run_once(&p, &workload(), &cfg, seed, false, None).expect("run failed");
            let b = run_once(&p, &workload(), &cfg, seed, false, None).expect("run failed");
            prop_assert_eq!(a.stream_hash, b.stream_hash);
            prop_assert_eq!(a.exec, b.exec);
            hashes.push(a.stream_hash);
        }
        // Performance and Powersave bound the frequency range; their
        // streams cannot coincide.
        prop_assert!(hashes[0] != hashes[1],
            "performance and powersave dispatched the same stream");
    }
}

/// The `intel-dvfs` preset actually exercises the axis: its stream
/// differs from plain `intel`, and its telemetry carries frequency
/// samples and throttle/transition counters.
#[test]
fn intel_dvfs_preset_emits_frequency_telemetry() {
    let cfg = ExecConfig::new(Model::Omp, Mitigation::Tp);
    let plain = run_once(&Platform::intel(), &workload(), &cfg, 7, false, None).unwrap();
    let run = run_once_instrumented(
        &Platform::intel_dvfs(),
        &workload(),
        &cfg,
        &KernelConfig::default(),
        7,
        false,
        None,
        None,
        Observe::telemetry(TelemetryConfig::default()),
    )
    .expect("dvfs run failed");
    assert_ne!(plain.stream_hash, run.output.stream_hash);
    let report = run.telemetry.expect("telemetry attached");
    assert!(
        !report.freq.is_empty(),
        "an enabled-DVFS run must record frequency samples"
    );
    let m = run.output.metrics.expect("metrics");
    assert!(
        m.counter("dvfs.freq_transitions") > 0,
        "frequency transitions must surface in metrics"
    );
}
