//! End-to-end determinism contract: harness-backed dual runs are
//! bit-identical, and a deliberately perturbed run is caught with the
//! first divergent event named — kind, index, time and CPU.

use noiselab_core::divergence::{dual_run_harness, DualRunOutcome, DEFAULT_CADENCE};
use noiselab_core::{ExecConfig, Mitigation, Model, Platform};
use noiselab_workloads::NBody;

fn tiny_nbody() -> NBody {
    noiselab_testutil::tiny_nbody(3)
}

#[test]
fn clean_dual_run_is_identical() {
    let p = Platform::intel();
    let w = tiny_nbody();
    let cfg = ExecConfig::new(Model::Omp, Mitigation::Rm);
    let out = dual_run_harness(&p, &w, &cfg, 42, None, DEFAULT_CADENCE).unwrap();
    let DualRunOutcome::Identical { events, hash } = out else {
        panic!("clean dual run diverged: {out:?}");
    };
    assert!(events > 50, "run dispatched only {events} events");
    assert_ne!(hash, 0);
}

#[test]
fn perturbed_dual_run_names_the_injected_event() {
    let p = Platform::intel();
    let w = tiny_nbody();
    let cfg = ExecConfig::new(Model::Sycl, Mitigation::Tp);
    let perturb_at = 40u64;
    let out = dual_run_harness(&p, &w, &cfg, 42, Some(perturb_at), 16).unwrap();
    let DualRunOutcome::Diverged(report) = out else {
        panic!("perturbed dual run reported identical streams");
    };
    // The synthetic IRQ lands at the front of the queue for the current
    // instant's remaining events, so the first divergence shows up at
    // or shortly after the perturbation index — never before it.
    assert!(
        report.first_b.index > perturb_at,
        "divergence at {} not after the perturbation at {perturb_at}",
        report.first_b.index
    );
    assert!(
        report.window.0 <= report.first_b.index && report.first_b.index < report.window.1,
        "first divergent index {} outside bisection window {:?}",
        report.first_b.index,
        report.window
    );
    // Run B's side of the divergence is the injected device IRQ itself
    // (or its knock-on at the same index); the rendered report must let
    // an operator see the marker source.
    let rendered = report.render();
    assert!(
        report.first_b.digest.contains("sanitizer:perturb") || rendered.contains("device-irq"),
        "report does not surface the injected IRQ:\n{rendered}"
    );
    assert!(rendered.contains("first divergent event"));
}

#[test]
fn perturbation_localisation_is_deterministic() {
    // The bisector itself must be reproducible: same inputs, same
    // report, byte for byte.
    let p = Platform::intel();
    let w = tiny_nbody();
    let cfg = ExecConfig::new(Model::Omp, Mitigation::Rm);
    let a = dual_run_harness(&p, &w, &cfg, 7, Some(25), 16).unwrap();
    let b = dual_run_harness(&p, &w, &cfg, 7, Some(25), 16).unwrap();
    assert_eq!(a, b);
    assert!(
        !a.is_identical(),
        "perturbation at 25 must fork an 80+-event stream"
    );
}
