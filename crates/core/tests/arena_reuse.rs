//! Arena-reuse conformance: running through a *dirty* [`RunArena`] —
//! one that already carried a different run (different seed, model,
//! tracing mode, telemetry mode) — must be observationally identical to
//! running through a fresh one: same dispatched event stream, same
//! virtual execution time, same metrics snapshot, same trace. This is
//! the property that lets repetition loops (overhead reps, campaign
//! cells) recycle kernel/tracer/telemetry buffers without any risk of
//! state leaking across runs.

use noiselab_core::{
    run_once_instrumented_in, ExecConfig, Mitigation, Model, Observe, Platform, RunArena, RunOutput,
};
use noiselab_kernel::KernelConfig;
use noiselab_telemetry::TelemetryConfig;
use proptest::prelude::*;

struct Cell {
    seed: u64,
    model: Model,
    tracing: bool,
    telemetry: bool,
    /// `Some(g)` runs the cell with the DVFS axis enabled under that
    /// governor — frequency state lives in the kernel arena too, so
    /// reuse must be clean across the dimension in both directions.
    governor: Option<noiselab_machine::Governor>,
}

fn run_in(arena: &mut RunArena, cell: &Cell) -> RunOutput {
    let p = Platform::intel();
    let mut cfg = ExecConfig::new(cell.model, Mitigation::Rm);
    cfg.governor = cell.governor;
    let observe = Observe {
        telemetry: cell.telemetry.then(TelemetryConfig::default),
        ..Observe::default()
    };
    run_once_instrumented_in(
        &p,
        &noiselab_testutil::tiny_nbody(2),
        &cfg,
        &KernelConfig::default(),
        cell.seed,
        cell.tracing,
        None,
        None,
        observe,
        arena,
    )
    .expect("arena run failed")
    .output
}

fn assert_identical(fresh: &RunOutput, reused: &RunOutput) {
    assert_eq!(fresh.stream_hash, reused.stream_hash, "event stream moved");
    assert_eq!(fresh.exec, reused.exec, "virtual exec time moved");
    assert_eq!(fresh.metrics, reused.metrics, "metrics snapshot moved");
    assert_eq!(fresh.trace, reused.trace, "trace moved");
    assert_eq!(fresh.anomaly, reused.anomaly);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// A run through an arena dirtied by a *different* run equals the
    /// same run through a fresh arena, bit for bit.
    #[test]
    fn dirty_arena_is_bit_identical_to_fresh(
        seed in 1u64..50_000,
        dirty_seed in 1u64..50_000,
        sycl in any::<bool>(),
        dirty_sycl in any::<bool>(),
        tracing in any::<bool>(),
        telemetry in any::<bool>(),
        dvfs in any::<bool>(),
        dirty_dvfs in any::<bool>(),
    ) {
        use noiselab_machine::Governor;
        let cell = Cell {
            seed,
            model: if sycl { Model::Sycl } else { Model::Omp },
            tracing,
            telemetry,
            governor: dvfs.then_some(Governor::Schedutil),
        };
        // Dirty the arena with the most stateful observation mode
        // (tracer + telemetry both on) of an unrelated cell — with the
        // DVFS dimension flipped independently, so enabled-after-disabled
        // and disabled-after-enabled both get exercised.
        let dirty = Cell {
            seed: dirty_seed,
            model: if dirty_sycl { Model::Sycl } else { Model::Omp },
            tracing: true,
            telemetry: true,
            governor: dirty_dvfs.then_some(Governor::Performance),
        };

        let fresh = run_in(&mut RunArena::default(), &cell);

        let mut arena = RunArena::default();
        let _ = run_in(&mut arena, &dirty);
        let reused = run_in(&mut arena, &cell);

        prop_assert_eq!(fresh.stream_hash, reused.stream_hash);
        prop_assert_eq!(fresh.exec, reused.exec);
        prop_assert_eq!(&fresh.metrics, &reused.metrics);
        prop_assert_eq!(&fresh.trace, &reused.trace);
    }
}

/// Determinism across many consecutive reuses: rep N through one arena
/// equals a fresh run, for every N — the overhead-measurement loop's
/// exact access pattern.
#[test]
fn repeated_reuse_never_drifts() {
    let cell = Cell {
        seed: 42,
        model: Model::Omp,
        tracing: true,
        telemetry: true,
        governor: None,
    };
    let fresh = run_in(&mut RunArena::default(), &cell);
    let mut arena = RunArena::default();
    for rep in 0..5 {
        let reused = run_in(&mut arena, &cell);
        assert_identical(&fresh, &reused);
        // Interleave a different cell so reuse isn't trivially same-run
        // — a DVFS-enabled one, so frequency state must wash out too.
        if rep % 2 == 0 {
            let other = Cell {
                seed: 7 + rep,
                model: Model::Sycl,
                tracing: false,
                telemetry: rep % 4 == 0,
                governor: Some(noiselab_machine::Governor::Performance),
            };
            let _ = run_in(&mut arena, &other);
        }
    }
}

/// A failed run must not poison the arena for the next one. A seed
/// whose fault plan aborts a worker returns an error; the arena then
/// carries whatever the aborted kernel left behind.
#[test]
fn arena_survives_mode_flips_after_partial_state() {
    let cell = Cell {
        seed: 1234,
        model: Model::Omp,
        tracing: false,
        telemetry: false,
        governor: None,
    };
    let fresh = run_in(&mut RunArena::default(), &cell);
    let mut arena = RunArena::default();
    // Dirty with every observation mode in sequence, alternating the
    // DVFS axis so stale frequency state gets a chance to leak.
    for (i, (tracing, telemetry)) in [(true, true), (true, false), (false, true)]
        .into_iter()
        .enumerate()
    {
        let _ = run_in(
            &mut arena,
            &Cell {
                seed: 999,
                model: Model::Sycl,
                tracing,
                telemetry,
                governor: (i % 2 == 0).then_some(noiselab_machine::Governor::Powersave),
            },
        );
    }
    let reused = run_in(&mut arena, &cell);
    assert_identical(&fresh, &reused);
}
