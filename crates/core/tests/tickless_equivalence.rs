//! Determinism-equivalence gate for the tickless-idle kernel: for every
//! workload × runtime model × platform cell, an eager-tick run and a
//! tickless run at the same seed must produce identical execution times
//! and identical busy-CPU traces. This is what licenses shipping
//! tickless as the default for paper-scale (1000-run) replication.

use noiselab_core::harness::run_once_with;
use noiselab_core::{ExecConfig, Mitigation, Model, Platform};
use noiselab_kernel::KernelConfig;
use noiselab_testutil::{platforms, scaled_nbody, scaled_workloads as workloads, tickless_config};
use noiselab_workloads::Workload;

fn eager() -> KernelConfig {
    tickless_config(false)
}

fn tickless() -> KernelConfig {
    let cfg = KernelConfig::default();
    assert!(cfg.tickless, "tickless must be the default kernel mode");
    cfg
}

fn assert_cell_equivalent(
    platform: &Platform,
    pname: &str,
    workload: &dyn Workload,
    wname: &str,
    cfg: &ExecConfig,
    seed: u64,
) {
    let e = run_once_with(platform, workload, cfg, &eager(), seed, true, None).unwrap();
    let t = run_once_with(platform, workload, cfg, &tickless(), seed, true, None).unwrap();
    assert_eq!(
        e.exec,
        t.exec,
        "exec time diverged: {pname}/{wname}/{} seed {seed}",
        cfg.label()
    );
    // Busy CPUs must record exactly the same noise events; idle CPUs
    // record none in either mode, so the whole trace must match.
    assert_eq!(
        e.trace,
        t.trace,
        "trace diverged: {pname}/{wname}/{} seed {seed}",
        cfg.label()
    );
    assert_eq!(
        e.anomaly, t.anomaly,
        "anomaly diverged: {pname}/{wname} seed {seed}"
    );
}

#[test]
fn every_cell_is_equivalent_omp() {
    for (pname, p) in platforms() {
        for (wname, w) in workloads() {
            let cfg = ExecConfig::new(Model::Omp, Mitigation::Rm);
            assert_cell_equivalent(&p, pname, w.as_ref(), wname, &cfg, 21);
        }
    }
}

#[test]
fn every_cell_is_equivalent_sycl() {
    for (pname, p) in platforms() {
        for (wname, w) in workloads() {
            let cfg = ExecConfig::new(Model::Sycl, Mitigation::Rm);
            assert_cell_equivalent(&p, pname, w.as_ref(), wname, &cfg, 22);
        }
    }
}

#[test]
fn mitigations_and_smt_cells_are_equivalent() {
    // The mitigation axis changes which CPUs idle (housekeeping sets,
    // SMT siblings) — exactly the CPUs whose ticks park. Cover the
    // remaining configuration shapes on one platform/workload.
    let p = Platform::intel();
    let w = scaled_nbody();
    for mitigation in [Mitigation::RmHK, Mitigation::Tp, Mitigation::TpHK] {
        let cfg = ExecConfig::new(Model::Omp, mitigation);
        assert_cell_equivalent(&p, "intel", &w, "nbody", &cfg, 23);
    }
    let smt = ExecConfig::new(Model::Omp, Mitigation::Rm).with_smt();
    assert_cell_equivalent(&p, "intel", &w, "nbody", &smt, 24);
}

#[test]
fn equivalence_holds_across_seeds() {
    let p = Platform::amd();
    let w = scaled_nbody();
    let cfg = ExecConfig::new(Model::Omp, Mitigation::Rm);
    for seed in 100..110 {
        assert_cell_equivalent(&p, "amd", &w, "nbody", &cfg, seed);
    }
}
