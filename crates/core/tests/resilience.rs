//! Resilience suite: the campaign harness must survive injected
//! crashes, host panics, and being killed mid-campaign — and come back
//! with exactly the same numbers.
//!
//! This is the fault-injection gate CI runs: a ~5 % crashy 200-run
//! campaign must complete without panicking and report exactly the
//! failed (seed, cause) pairs; a checkpoint-interrupted campaign must
//! resume bit-identical to an uninterrupted one.

use noiselab_core::campaign::{run_campaign, CampaignPlan, CampaignState};
use noiselab_core::{
    run_many_faulted, run_once, run_once_faulted, ExecConfig, Mitigation, Model, Platform,
    RetryPolicy, RunFailure,
};
use noiselab_kernel::KernelConfig;
use noiselab_runtime::{omp::OmpSchedule, Program};
use noiselab_testutil::{crashy_plan as crashy, omp_rm as cfg};
use noiselab_workloads::{NBody, Workload};
use std::path::PathBuf;

fn tiny_nbody() -> NBody {
    noiselab_testutil::tiny_nbody(2)
}

fn tmp_path(name: &str) -> PathBuf {
    noiselab_testutil::tmp_path("noiselab-resilience", name)
}

// ---------------------------------------------------------------------
// Crashy campaigns.
// ---------------------------------------------------------------------

#[test]
fn crashy_campaign_completes_and_reports_failures() {
    let p = Platform::intel();
    let w = tiny_nbody();
    let plan = crashy();

    let ledger = run_many_faulted(
        &p,
        &w,
        &cfg(),
        200,
        9_000,
        false,
        None,
        Some(&plan),
        RetryPolicy::none(),
    );
    assert_eq!(ledger.len(), 200);
    assert_eq!(ledger.ok_count() + ledger.failed_count(), 200);

    let failures = ledger.failures();
    assert!(
        (2..=25).contains(&failures.len()),
        "~5% of 200 runs should crash, got {}",
        failures.len()
    );
    for (seed, cause) in &failures {
        assert!((9_000..9_200).contains(seed));
        assert!(
            matches!(cause, RunFailure::WorkloadAborted { .. }),
            "seed {seed}: unexpected cause {cause}"
        );
    }
    // Survivors are untouched by the plan: bit-identical to unfaulted
    // runs at the same seeds.
    for record in ledger.records.iter().take(20) {
        if let Ok(out) = &record.result {
            let plain = run_once(&p, &w, &cfg(), record.seed, false, None).unwrap();
            assert_eq!(out.exec, plain.exec, "seed {} perturbed", record.seed);
        }
    }
}

#[test]
fn crashy_campaign_is_deterministic() {
    let p = Platform::intel();
    let w = tiny_nbody();
    let plan = crashy();
    let run = || {
        run_many_faulted(
            &p,
            &w,
            &cfg(),
            60,
            500,
            false,
            None,
            Some(&plan),
            RetryPolicy::none(),
        )
        .failures()
    };
    let (a, b) = (run(), run());
    assert!(!a.is_empty(), "expected at least one crash in 60 runs");
    assert_eq!(a, b, "same plan + seeds must fail identically");
}

#[test]
fn retry_with_reseed_recovers_crashed_runs_deterministically() {
    let p = Platform::intel();
    let w = tiny_nbody();
    let plan = crashy();
    let run = |retry| run_many_faulted(&p, &w, &cfg(), 60, 500, false, None, Some(&plan), retry);
    let no_retry = run(RetryPolicy::none());
    let with_retry = run(RetryPolicy::retries(3));
    assert!(no_retry.failed_count() > 0);
    // With a fresh seed per attempt and a 5 % crash rate, 3 retries
    // recover everything at this scale.
    assert_eq!(with_retry.failed_count(), 0, "retries should recover");
    for record in &with_retry.records {
        let crashed_first = no_retry
            .records
            .iter()
            .find(|r| r.seed == record.seed)
            .is_some_and(|r| r.result.is_err());
        if crashed_first {
            assert!(
                record.attempts > 1,
                "seed {} should have retried",
                record.seed
            );
            // The recovered measurement equals a plain run at the
            // deterministic reseed.
            let reseed = RetryPolicy::reseed(record.seed, record.attempts - 1);
            let expect = run_once_faulted(
                &p,
                &w,
                &cfg(),
                &KernelConfig::default(),
                reseed,
                false,
                None,
                Some(&plan),
            );
            assert_eq!(record.result.as_ref().unwrap().exec, expect.unwrap().exec);
        } else {
            assert_eq!(record.attempts, 1);
        }
    }
    // Retried ledgers are reproducible too.
    let again = run(RetryPolicy::retries(3));
    let execs = |l: &noiselab_core::RunLedger| {
        l.records
            .iter()
            .map(|r| r.result.as_ref().unwrap().exec)
            .collect::<Vec<_>>()
    };
    assert_eq!(execs(&with_retry), execs(&again));
}

// ---------------------------------------------------------------------
// Host-panic containment.
// ---------------------------------------------------------------------

/// A workload whose OpenMP lowering panics — the deliberately crashing
/// workload of the CI gate. The harness must contain it.
struct PanickingWorkload;

impl Workload for PanickingWorkload {
    fn name(&self) -> &'static str {
        "panicker"
    }
    fn omp_program(&self, _nthreads: usize, _schedule: Option<OmpSchedule>) -> Program {
        panic!("deliberate workload bug for the resilience gate")
    }
    fn sycl_program(&self, _nthreads: usize) -> Program {
        panic!("deliberate workload bug for the resilience gate")
    }
}

#[test]
fn host_panic_is_contained_as_a_failed_run() {
    let p = Platform::intel();
    let ledger = noiselab_core::run_many(&p, &PanickingWorkload, &cfg(), 4, 0, false, None);
    assert_eq!(ledger.len(), 4);
    assert_eq!(ledger.ok_count(), 0);
    for (_, cause) in ledger.failures() {
        match cause {
            RunFailure::Panic { message } => {
                assert!(message.contains("deliberate workload bug"), "{message}");
            }
            other => panic!("expected Panic, got {other}"),
        }
    }
}

#[test]
fn mixed_fleet_panics_do_not_poison_good_runs() {
    // Half the host threads hit the panicking workload, the other runs
    // must still produce measurements (no propagation across runs).
    let p = Platform::intel();
    let w = tiny_nbody();
    let good = noiselab_core::run_many(&p, &w, &cfg(), 3, 40, false, None);
    let bad = noiselab_core::run_many(&p, &PanickingWorkload, &cfg(), 3, 40, false, None);
    assert_eq!(good.ok_count(), 3);
    assert_eq!(bad.ok_count(), 0);
    for (i, r) in good.records.iter().enumerate() {
        let single = run_once(&p, &w, &cfg(), 40 + i as u64, false, None).unwrap();
        assert_eq!(r.result.as_ref().unwrap().exec, single.exec);
    }
}

// ---------------------------------------------------------------------
// Checkpoint / resume.
// ---------------------------------------------------------------------

fn campaign_cells() -> Vec<(String, ExecConfig)> {
    vec![
        ("omp/RM".into(), ExecConfig::new(Model::Omp, Mitigation::Rm)),
        ("omp/TP".into(), ExecConfig::new(Model::Omp, Mitigation::Tp)),
        (
            "sycl/RM".into(),
            ExecConfig::new(Model::Sycl, Mitigation::Rm),
        ),
        (
            "omp/RMHK".into(),
            ExecConfig::new(Model::Omp, Mitigation::RmHK),
        ),
    ]
}

fn plan<'a>(
    p: &'a Platform,
    w: &'a (dyn Workload + Sync),
    checkpoint: Option<PathBuf>,
    limit: Option<usize>,
) -> CampaignPlan<'a> {
    CampaignPlan {
        platform: p,
        workload: w,
        cells: campaign_cells(),
        runs_per_cell: 12,
        seed_base: 31_000,
        faults: Some(crashy()),
        retry: RetryPolicy::none(),
        checkpoint,
        limit,
        verify_resume: false,
    }
}

#[test]
fn interrupted_campaign_resumes_bit_identical() {
    let p = Platform::intel();
    let w = tiny_nbody();

    // Reference: uninterrupted, no checkpointing.
    let reference = run_campaign(&plan(&p, &w, None, None)).unwrap();
    assert_eq!(reference.cells.len(), 4);

    // Interrupted: run 2 cells, "crash" (drop everything), then resume
    // from the checkpoint file only.
    let ckpt = tmp_path("resume.json");
    std::fs::remove_file(&ckpt).ok();
    let partial = run_campaign(&plan(&p, &w, Some(ckpt.clone()), Some(2))).unwrap();
    assert_eq!(partial.cells.len(), 2);
    drop(partial);

    let on_disk = CampaignState::load(&ckpt).unwrap();
    assert_eq!(on_disk.cells.len(), 2, "checkpoint holds completed cells");

    let resumed = run_campaign(&plan(&p, &w, Some(ckpt.clone()), None)).unwrap();
    assert_eq!(resumed.cells.len(), 4);

    // Bit-identical: every sample, failure, and key matches the
    // uninterrupted campaign exactly (f64s compared exactly via
    // PartialEq on the whole state).
    assert_eq!(resumed, reference);
    for (a, b) in resumed.cells.iter().zip(&reference.cells) {
        for (x, y) in a.samples.iter().zip(&b.samples) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
    std::fs::remove_file(&ckpt).ok();
}

#[test]
fn campaign_reports_failed_cells_and_counts() {
    let p = Platform::intel();
    let w = tiny_nbody();
    let state = run_campaign(&plan(&p, &w, None, None)).unwrap();
    let report = state.report(4);
    assert!(report.complete);
    assert_eq!(report.total_ok + report.total_failed, 4 * 12);
    let text = noiselab_core::campaign::render_campaign_report(&report);
    assert!(text.contains("campaign complete"), "{text}");
}

#[test]
fn resume_with_different_inputs_is_refused() {
    let p = Platform::intel();
    let w = tiny_nbody();
    let ckpt = tmp_path("mismatch.json");
    std::fs::remove_file(&ckpt).ok();
    run_campaign(&plan(&p, &w, Some(ckpt.clone()), Some(1))).unwrap();

    let mut other = plan(&p, &w, Some(ckpt.clone()), None);
    other.runs_per_cell = 13; // different campaign identity
    let err = run_campaign(&other).expect_err("fingerprint mismatch must refuse");
    assert!(err.to_string().contains("fingerprint"), "{err}");
    std::fs::remove_file(&ckpt).ok();
}

#[test]
fn verified_resume_passes_and_catches_tampering() {
    let p = Platform::intel();
    let w = tiny_nbody();
    let ckpt = tmp_path("verify.json");
    std::fs::remove_file(&ckpt).ok();

    // Two cells done, then "crash".
    run_campaign(&plan(&p, &w, Some(ckpt.clone()), Some(2))).unwrap();

    // Honest resume with verification on: the last completed cell
    // re-runs bit-identical and the campaign finishes.
    let mut verified = plan(&p, &w, Some(ckpt.clone()), None);
    verified.verify_resume = true;
    let resumed = run_campaign(&verified).unwrap();
    assert_eq!(resumed.cells.len(), 4);
    assert!(
        resumed.cells.iter().all(|c| c.stream_hash != 0),
        "every cell must carry its event-stream hash"
    );

    // Tamper with the checkpointed stream hash of the last completed
    // cell: a verified resume must refuse it.
    std::fs::remove_file(&ckpt).ok();
    run_campaign(&plan(&p, &w, Some(ckpt.clone()), Some(2))).unwrap();
    let mut state = CampaignState::load(&ckpt).unwrap();
    state.cells.last_mut().unwrap().stream_hash ^= 1;
    state.save(&ckpt).unwrap();
    let mut tampered = plan(&p, &w, Some(ckpt.clone()), None);
    tampered.verify_resume = true;
    let err = run_campaign(&tampered).expect_err("hash mismatch must refuse resume");
    assert!(
        err.to_string().contains("resume verification failed"),
        "{err}"
    );
    std::fs::remove_file(&ckpt).ok();
}
