//! The telemetry layer's acceptance property: attaching the span
//! recorder, the metrics registry and the host-time phase profiler is
//! *provably pure* — a telemetry-enabled run produces the same
//! dispatched event stream (`stream_hash`) and the same virtual
//! execution time as a disabled one, bit for bit, across seeds,
//! models and tracing modes.

use noiselab_core::{
    run_many, run_many_instrumented, run_once, run_once_instrumented, ExecConfig, Mitigation,
    Model, Observe, Platform, RetryPolicy,
};
use noiselab_kernel::KernelConfig;
use noiselab_telemetry::{PhaseProfiler, TelemetryConfig};
use noiselab_workloads::NBody;
use proptest::prelude::*;

// Small but long enough (several ms) to cross timer ticks, noise
// activations and migrations.
fn tiny_nbody() -> NBody {
    noiselab_testutil::tiny_nbody(3)
}

/// (stream_hash, exec ns) of a fully instrumented run: telemetry with
/// timeline on, plus the phase profiler.
fn instrumented(cfg: &ExecConfig, seed: u64, tracing: bool) -> (u64, u64) {
    let p = Platform::intel();
    let run = run_once_instrumented(
        &p,
        &tiny_nbody(),
        cfg,
        &KernelConfig::default(),
        seed,
        tracing,
        None,
        None,
        Observe {
            telemetry: Some(TelemetryConfig::default()),
            profiler: Some(PhaseProfiler::new()),
            ..Observe::default()
        },
    )
    .expect("instrumented run failed");
    assert!(
        run.output.metrics.is_some(),
        "telemetry-enabled run must snapshot metrics"
    );
    (run.output.stream_hash, run.output.exec.nanos())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn telemetry_and_profiler_never_perturb_a_run(
        seed in 1u64..50_000,
        sycl in any::<bool>(),
        tracing in any::<bool>(),
        dvfs in any::<bool>(),
    ) {
        let model = if sycl { Model::Sycl } else { Model::Omp };
        // Half the cases run with the DVFS axis on: frequency-transition
        // and throttle records flow through the observer wire path, so
        // the purity property must hold across the new record kinds too.
        let mut cfg = ExecConfig::new(model, Mitigation::Rm);
        cfg.governor = dvfs.then_some(noiselab_machine::Governor::Schedutil);
        let p = Platform::intel();
        let bare = run_once(&p, &tiny_nbody(), &cfg, seed, tracing, None)
            .expect("bare run failed");
        let (hash, exec_ns) = instrumented(&cfg, seed, tracing);
        // Telemetry must not change the dispatched event stream or
        // virtual execution time.
        prop_assert_eq!(bare.stream_hash, hash);
        prop_assert_eq!(bare.exec.nanos(), exec_ns);
    }
}

#[test]
fn instrumented_ledger_matches_bare_ledger_bit_for_bit() {
    let p = Platform::intel();
    let w = tiny_nbody();
    let cfg = ExecConfig::new(Model::Omp, Mitigation::Rm);
    let bare = run_many(&p, &w, &cfg, 6, 300, false, None);
    let inst = run_many_instrumented(
        &p,
        &w,
        &cfg,
        6,
        300,
        false,
        None,
        None,
        RetryPolicy::none(),
        Some(TelemetryConfig::metrics_only()),
    );
    assert_eq!(
        bare.stream_hash(),
        inst.stream_hash(),
        "metrics-only telemetry must leave the whole ledger bit-identical"
    );
    for rec in &inst.records {
        let m = rec
            .result
            .as_ref()
            .expect("run failed")
            .metrics
            .as_ref()
            .expect("metrics snapshot missing");
        assert_eq!(m.runs, 1);
        // Acceptance floor: at least 6 distinct registered metrics per
        // run snapshot.
        assert!(m.len() >= 6, "only {} metrics registered", m.len());
        assert!(m.counter("sched.context_switches") > 0);
        assert!(m.counter("kernel.events") > 0);
        assert!(m.hist("sched.runq_depth").is_some());
        assert!(m.gauge("cpu.util.mean").is_some());
    }
}

#[test]
fn tracer_drop_counters_surface_in_metrics() {
    let p = Platform::intel();
    let w = tiny_nbody();
    let cfg = ExecConfig::new(Model::Omp, Mitigation::Rm);
    let run = run_once_instrumented(
        &p,
        &w,
        &cfg,
        &KernelConfig::default(),
        11,
        true,
        None,
        None,
        Observe::telemetry(TelemetryConfig::metrics_only()),
    )
    .expect("traced run failed");
    let m = run.output.metrics.expect("metrics");
    let trace = run.output.trace.expect("trace");
    assert_eq!(
        m.counter("trace.emitted"),
        trace.events.len() as u64 + trace.dropped_events,
        "metrics registry must mirror the tracer's ring-buffer accounting"
    );
    assert_eq!(m.counter("trace.dropped"), trace.dropped_events);
}
