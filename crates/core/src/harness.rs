//! The experiment harness: run a workload under a platform and
//! execution configuration — baseline, traced, with noise injection, or
//! under a fault plan — and repeat across seeds (in parallel on host
//! threads; each simulated run stays fully deterministic in its own
//! kernel instance).
//!
//! Crash-proofing: a single run returns `Result<RunOutput, RunFailure>`
//! instead of panicking, `run_many` contains host panics with
//! `catch_unwind` so one bad run cannot poison a campaign, and the
//! [`RunLedger`] it returns records exactly which (seed, cause) pairs
//! produced no measurement.

use crate::execconfig::{ExecConfig, Model};
use crate::failure::{RetryPolicy, RunFailure};
use crate::platform::Platform;
use noiselab_injector::{spawn_injectors, InjectionConfig};
use noiselab_kernel::{
    FaultPlan, Kernel, KernelConfig, KernelStorage, RunError, SanitizerConfig, SanitizerReport,
};
use noiselab_noise::{
    install, OsNoiseTracer, RunTrace, TraceBuffer, TraceSet, DEFAULT_TRACE_CAPACITY,
};
use noiselab_runtime::{omp, sycl};
use noiselab_sim::{Rng, SimDuration, SimTime};
use noiselab_stats::Summary;
use noiselab_telemetry::{
    MetricsSnapshot, PhaseProfiler, Telemetry, TelemetryConfig, TelemetryReport,
};
use noiselab_workloads::Workload;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Virtual-time safety horizon per run.
const HORIZON: SimTime = SimTime(600 * noiselab_sim::NANOS_PER_SEC);

/// Stream constant separating the harness fault RNG from all other
/// per-seed streams (noise, jitter). Also used to mix the run seed into
/// the plan seed so the same plan fires on different runs of a campaign.
const FAULT_STREAM: u64 = 0x9E37_79B9_7F4A_7C15;

/// Outcome of a single run.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// Workload execution time (spawn of the team to last worker exit).
    pub exec: SimDuration,
    /// The osnoise trace, when tracing was enabled.
    pub trace: Option<RunTrace>,
    /// Name of the natural anomaly active in this run, if any.
    pub anomaly: Option<String>,
    /// FNV-1a hash of the full dispatched event stream: the run's
    /// determinism fingerprint. Two runs of the same inputs must agree
    /// on it bit for bit (see `noiselab_kernel::sanitize`).
    pub stream_hash: u64,
    /// Per-run metrics snapshot, when telemetry was attached. Absent
    /// (not empty) on uninstrumented runs so existing consumers pay
    /// nothing.
    pub metrics: Option<MetricsSnapshot>,
}

/// Execute one run with the default kernel configuration. Fully
/// deterministic in `seed`.
pub fn run_once(
    platform: &Platform,
    workload: &dyn Workload,
    cfg: &ExecConfig,
    seed: u64,
    tracing: bool,
    inject: Option<&InjectionConfig>,
) -> Result<RunOutput, RunFailure> {
    run_once_with(
        platform,
        workload,
        cfg,
        &KernelConfig::default(),
        seed,
        tracing,
        inject,
    )
}

/// Execute one run under an explicit [`KernelConfig`] — the entry point
/// for kernel ablations such as the eager-vs-tickless equivalence suite.
pub fn run_once_with(
    platform: &Platform,
    workload: &dyn Workload,
    cfg: &ExecConfig,
    kconfig: &KernelConfig,
    seed: u64,
    tracing: bool,
    inject: Option<&InjectionConfig>,
) -> Result<RunOutput, RunFailure> {
    run_once_faulted(
        platform, workload, cfg, kconfig, seed, tracing, inject, None,
    )
}

/// Execute one run with an optional [`FaultPlan`] active. The fault RNG
/// is a separate stream derived from `plan.seed ^ f(seed)`, so a `None`
/// plan (or a no-op plan) leaves the run bit-identical to the unfaulted
/// harness, and the same (plan, seed) pair always fails the same way.
#[allow(clippy::too_many_arguments)]
pub fn run_once_faulted(
    platform: &Platform,
    workload: &dyn Workload,
    cfg: &ExecConfig,
    kconfig: &KernelConfig,
    seed: u64,
    tracing: bool,
    inject: Option<&InjectionConfig>,
    faults: Option<&FaultPlan>,
) -> Result<RunOutput, RunFailure> {
    run_once_observed(
        platform,
        workload,
        cfg,
        kconfig,
        seed,
        tracing,
        inject,
        faults,
        SanitizerConfig::hash_only(),
    )
    .map(|(out, _)| out)
}

/// [`run_once_faulted`] with an explicit [`SanitizerConfig`], returning
/// the sanitizer report alongside the run output — the entry point for
/// the dual-run divergence pipeline (see [`crate::divergence`]). The
/// sanitizer is a pure observer unless `sanitizer.perturb_at` is armed,
/// in which case the run's event stream is deliberately forked.
#[allow(clippy::too_many_arguments)]
pub fn run_once_observed(
    platform: &Platform,
    workload: &dyn Workload,
    cfg: &ExecConfig,
    kconfig: &KernelConfig,
    seed: u64,
    tracing: bool,
    inject: Option<&InjectionConfig>,
    faults: Option<&FaultPlan>,
    sanitizer: SanitizerConfig,
) -> Result<(RunOutput, SanitizerReport), RunFailure> {
    run_once_instrumented(
        platform,
        workload,
        cfg,
        kconfig,
        seed,
        tracing,
        inject,
        faults,
        Observe {
            sanitizer,
            ..Observe::default()
        },
    )
    .map(|r| (r.output, r.sanitizer))
}

/// Observation attachments for one run. Everything here is provably
/// pure: the purity suite asserts a run's `stream_hash` and `exec` are
/// bit-identical whatever combination is attached.
pub struct Observe {
    /// Event-stream sanitizer configuration (hash-only by default).
    pub sanitizer: SanitizerConfig,
    /// Attach a telemetry recorder (spans + metrics) with this
    /// configuration.
    pub telemetry: Option<TelemetryConfig>,
    /// Attach this host-time phase profiler to the kernel and bracket
    /// the harness stats phase with it.
    pub profiler: Option<PhaseProfiler>,
}

impl Default for Observe {
    fn default() -> Self {
        Observe {
            sanitizer: SanitizerConfig::hash_only(),
            telemetry: None,
            profiler: None,
        }
    }
}

impl Observe {
    /// Telemetry with the given configuration, default everything else.
    pub fn telemetry(cfg: TelemetryConfig) -> Self {
        Observe {
            telemetry: Some(cfg),
            ..Observe::default()
        }
    }
}

/// Everything an instrumented run hands back.
pub struct InstrumentedRun {
    pub output: RunOutput,
    pub sanitizer: SanitizerReport,
    /// Present when [`Observe::telemetry`] was set.
    pub telemetry: Option<TelemetryReport>,
}

/// Reusable per-run state for repetition loops: the kernel's growable
/// buffers, the tracer ring, and the telemetry pipeline, all kept warm
/// between runs so back-to-back reps (overhead measurement, campaign
/// cells, the hot-path bench) stop paying allocation churn per run.
/// One arena serves one host thread; `run_many_*` keeps one per worker.
/// Reuse is observationally pure: the arena conformance suite asserts
/// a run through a dirty arena is bit-identical (stream hash, metrics,
/// trace) to a run through a fresh one.
#[derive(Default)]
pub struct RunArena {
    kernel: KernelStorage,
    tracer: TraceBuffer,
    telemetry: Telemetry,
}

/// The fully-instrumented single-run entry point every other
/// `run_once_*` delegates to: sanitizer always, telemetry recorder and
/// host-time profiler on request. Allocates fresh state per call; use
/// [`run_once_instrumented_in`] with a retained [`RunArena`] in
/// repetition loops.
#[allow(clippy::too_many_arguments)]
pub fn run_once_instrumented(
    platform: &Platform,
    workload: &dyn Workload,
    cfg: &ExecConfig,
    kconfig: &KernelConfig,
    seed: u64,
    tracing: bool,
    inject: Option<&InjectionConfig>,
    faults: Option<&FaultPlan>,
    observe: Observe,
) -> Result<InstrumentedRun, RunFailure> {
    run_once_instrumented_in(
        platform,
        workload,
        cfg,
        kconfig,
        seed,
        tracing,
        inject,
        faults,
        observe,
        &mut RunArena::default(),
    )
}

/// [`run_once_instrumented`] drawing all per-run state from `arena`.
#[allow(clippy::too_many_arguments)]
pub fn run_once_instrumented_in(
    platform: &Platform,
    workload: &dyn Workload,
    cfg: &ExecConfig,
    kconfig: &KernelConfig,
    seed: u64,
    tracing: bool,
    inject: Option<&InjectionConfig>,
    faults: Option<&FaultPlan>,
    observe: Observe,
    arena: &mut RunArena,
) -> Result<InstrumentedRun, RunFailure> {
    // SMT toggling (paper §5): rows without the SMT label run with SMT
    // disabled at firmware level, so the sibling hardware threads do not
    // exist — neither for the workload nor for noise to hide on.
    let mut machine = platform.machine.clone();
    if !cfg.smt && machine.smt > 1 {
        machine.smt = 1;
    }
    // DVFS governor cells: `Some(governor)` switches the frequency axis
    // on under that governor (keeping the platform's frequency/thermal
    // parameters when the platform already enables DVFS); `None` leaves
    // the platform untouched, so every existing cell stays bit-identical.
    if let Some(g) = cfg.governor {
        if machine.dvfs.enabled {
            machine.dvfs.governor = g;
        } else {
            machine.dvfs = noiselab_machine::DvfsConfig::enabled_default(g);
        }
    }
    // Per-run machine speed jitter (frequency/thermal/layout effects):
    // the mitigation-independent component of baseline variability.
    if platform.run_jitter_sd > 0.0 {
        let mut jrng = Rng::new(seed ^ 0x51E5_71FF_00AA_22EE);
        let f = (1.0 + jrng.normal(0.0, platform.run_jitter_sd)).clamp(0.9, 1.1);
        machine.perf.flops_per_ns *= f;
        machine.perf.per_core_bw *= f;
        machine.perf.socket_bw *= f;
    }
    let mut kernel = Kernel::new_in(machine.clone(), kconfig.clone(), seed, &mut arena.kernel);
    kernel.attach_sanitizer(observe.sanitizer);

    // Telemetry and profiling are write-only observers: attaching them
    // cannot perturb the simulation (the purity suite proves it).
    let telemetry = observe.telemetry.map(|tcfg| {
        arena.telemetry.reset(tcfg);
        arena.telemetry.clone()
    });
    if let Some(tele) = &telemetry {
        kernel.attach_observer(tele.observer());
    }
    if let Some(prof) = &observe.profiler {
        kernel.attach_host_profiler(prof.hook());
    }

    // Natural background noise; the anomaly dice use an independent
    // stream so they do not correlate with intra-run event jitter.
    let mut noise_rng = Rng::new(seed ^ 0xA5A5_5A5A_0F0F_F0F0);
    let installed = install(&mut kernel, &platform.noise, &mut noise_rng);

    let buffer = if tracing {
        // The retained ring may hold leftovers if the previous run
        // failed before its drain.
        arena.tracer.reset(DEFAULT_TRACE_CAPACITY);
        kernel.attach_tracer(Box::new(OsNoiseTracer::from_buffer(arena.tracer.clone())));
        Some(arena.tracer.clone())
    } else {
        None
    };

    // Fault injection shares no RNG state with the streams above: an
    // absent or no-op plan leaves the event sequence untouched.
    let mut fault_rng = faults.map(|plan| {
        let mut frng = Rng::new(plan.seed ^ seed.wrapping_mul(FAULT_STREAM));
        kernel.install_faults(plan, frng.fork(0));
        frng
    });

    let nthreads = cfg.nthreads(&machine);
    let affinities = cfg.affinities(&machine);

    let start_barrier = inject.map(|config| {
        let bar = kernel.new_barrier(config.lists.len() + nthreads);
        let _ = spawn_injectors(&mut kernel, config, bar);
        bar
    });

    let team = match cfg.model {
        Model::Omp => {
            let program = workload.omp_program(nthreads, cfg.schedule);
            let mut opts = omp::OmpLaunch::new(nthreads, affinities[0]);
            if affinities.len() > 1 {
                opts = omp::OmpLaunch::pinned(nthreads, affinities);
            }
            opts.start_barrier = start_barrier;
            omp::launch(&mut kernel, program, opts)
        }
        Model::Sycl => {
            let program = workload.sycl_program(nthreads);
            let mut opts = sycl::SyclLaunch::new(nthreads, affinities[0]);
            if affinities.len() > 1 {
                opts = sycl::SyclLaunch::pinned(nthreads, affinities);
            }
            opts.start_barrier = start_barrier;
            sycl::launch(&mut kernel, program, opts)
        }
    };

    // Thread-abort faults need the spawned team: draw the victim and
    // abort time now, from the same fault stream (fork keeps the draw
    // independent of how many spurious-IRQ draws the install consumed).
    if let (Some(frng), Some(plan)) = (fault_rng.as_mut(), faults) {
        if let Some(ab) = &plan.abort {
            let mut arng = frng.fork(1);
            if ab.prob > 0.0 && arng.chance(ab.prob) && !team.workers.is_empty() {
                let victim = team.workers[arng.index(team.workers.len())];
                let lo = ab.window.0.nanos();
                let hi = ab.window.1.nanos().max(lo + 1);
                let at = SimTime(lo + arng.below(hi - lo));
                kernel.schedule_abort(victim, at);
            }
        }
    }

    let mut end = SimTime::ZERO;
    let mut failure: Option<RunFailure> = None;
    for w in &team.workers {
        match kernel.run_until_exit(*w, HORIZON) {
            Ok(t) => end = end.max(t),
            Err(RunError::Horizon(_)) => {
                failure = Some(RunFailure::Horizon {
                    limit_secs: HORIZON.0 as f64 / noiselab_sim::NANOS_PER_SEC as f64,
                });
                break;
            }
            Err(RunError::Drained) => {
                failure = Some(RunFailure::Deadlock);
                break;
            }
        }
    }
    // An aborted workload thread invalidates the measurement even when
    // every surviving worker ran to completion, and it is the root cause
    // behind any Drained/Horizon error its blocked peers produced.
    if let Some(&tid) = kernel.aborted_threads().first() {
        let thread = kernel.thread(tid).name.clone();
        kernel.retire(&mut arena.kernel);
        return Err(RunFailure::WorkloadAborted { thread });
    }
    if let Some(f) = failure {
        kernel.retire(&mut arena.kernel);
        return Err(f);
    }
    let exec = end.since(SimTime::ZERO);

    // Post-run bookkeeping is the harness's "stats" phase in the
    // host-time profile.
    if let Some(prof) = &observe.profiler {
        prof.enter(noiselab_kernel::Phase::Stats);
    }
    let trace = buffer.map(|b| {
        kernel.detach_tracer();
        // Surface the tracer's ring-buffer accounting through the
        // metrics registry before the drain resets it.
        if let Some(tele) = &telemetry {
            tele.counter_add("trace.emitted", b.emitted());
            tele.counter_add("trace.dropped", b.dropped());
        }
        let tr = b.take_trace(0, exec);
        if let Some(tele) = &telemetry {
            if tr.degraded {
                tele.counter_add("trace.degraded_runs", 1);
            }
        }
        tr
    });

    let report = kernel
        .take_sanitizer_report()
        .expect("sanitizer attached at kernel construction");
    let tele_report = telemetry.map(|tele| tele.take_report(end));
    kernel.retire(&mut arena.kernel);
    if let Some(prof) = &observe.profiler {
        prof.exit(noiselab_kernel::Phase::Stats);
    }
    Ok(InstrumentedRun {
        output: RunOutput {
            exec,
            trace,
            anomaly: installed.anomaly,
            stream_hash: report.hash,
            metrics: tele_report.as_ref().map(|r| r.metrics.clone()),
        },
        sanitizer: report,
        telemetry: tele_report,
    })
}

/// One row of a [`RunLedger`]: the original seed, how many attempts were
/// consumed (1 = no retry), and the final outcome.
#[derive(Debug, Clone)]
pub struct RunRecord {
    pub seed: u64,
    pub attempts: u32,
    pub result: Result<RunOutput, RunFailure>,
}

/// Per-run results of a multi-run campaign stage, ordered by seed.
/// Failed runs stay in the ledger as typed causes instead of aborting
/// the stage.
#[derive(Debug, Clone, Default)]
pub struct RunLedger {
    pub records: Vec<RunRecord>,
}

impl RunLedger {
    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Successful outputs, in seed order.
    pub fn outputs(&self) -> impl Iterator<Item = &RunOutput> {
        self.records.iter().filter_map(|r| r.result.as_ref().ok())
    }

    /// Execution times (seconds) of the successful runs.
    pub fn samples(&self) -> Vec<f64> {
        self.outputs().map(|o| o.exec.as_secs_f64()).collect()
    }

    /// The (seed, cause) pairs that produced no measurement.
    pub fn failures(&self) -> Vec<(u64, RunFailure)> {
        self.records
            .iter()
            .filter_map(|r| r.result.as_ref().err().map(|f| (r.seed, f.clone())))
            .collect()
    }

    pub fn ok_count(&self) -> usize {
        self.records.iter().filter(|r| r.result.is_ok()).count()
    }

    /// Determinism fingerprint of the whole ledger: FNV-1a over every
    /// record's (seed, attempts, outcome) — the per-run event-stream
    /// hash for successes, the cause string for failures. Two ledgers
    /// of the same inputs must agree bit for bit; the campaign driver
    /// checkpoints this and re-verifies it on resume.
    pub fn stream_hash(&self) -> u64 {
        use noiselab_kernel::sanitize::fnv1a_extend;
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for r in &self.records {
            h = fnv1a_extend(h, &r.seed.to_le_bytes());
            h = fnv1a_extend(h, &r.attempts.to_le_bytes());
            match &r.result {
                Ok(o) => h = fnv1a_extend(h, &o.stream_hash.to_le_bytes()),
                Err(f) => h = fnv1a_extend(h, f.cause().as_bytes()),
            }
        }
        h
    }

    pub fn failed_count(&self) -> usize {
        self.records.len() - self.ok_count()
    }

    /// Unwrap every record, panicking with the full failure list —
    /// for stages where a failure indicates a harness bug rather than
    /// an injected fault.
    pub fn expect_all(self, context: &str) -> Vec<RunOutput> {
        let failures = self.failures();
        if !failures.is_empty() {
            panic!("{context}: {} run(s) failed: {failures:?}", failures.len());
        }
        self.records
            .into_iter()
            .map(|r| r.result.expect("checked above"))
            .collect()
    }
}

/// Number of host threads `run_many` uses: the `NOISELAB_HOST_THREADS`
/// env var when set to a positive integer, else the detected host
/// parallelism, else a documented fallback of 4. Malformed values are
/// ignored with a note on stderr rather than silently coerced.
fn host_threads() -> usize {
    if let Ok(v) = std::env::var("NOISELAB_HOST_THREADS") {
        match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => return n,
            _ => eprintln!(
                "noiselab: ignoring malformed NOISELAB_HOST_THREADS={v:?} \
                 (want a positive integer); auto-detecting"
            ),
        }
    }
    match std::thread::available_parallelism() {
        Ok(n) => n.get(),
        Err(e) => {
            eprintln!("noiselab: available_parallelism failed ({e}); using 4 host threads");
            4
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Execute `n_runs` runs with seeds `seed_base..seed_base + n_runs`,
/// parallelised over host threads. Records are ordered by seed; failed
/// runs appear in the ledger instead of panicking the harness.
pub fn run_many(
    platform: &Platform,
    workload: &(dyn Workload + Sync),
    cfg: &ExecConfig,
    n_runs: usize,
    seed_base: u64,
    tracing: bool,
    inject: Option<&InjectionConfig>,
) -> RunLedger {
    run_many_faulted(
        platform,
        workload,
        cfg,
        n_runs,
        seed_base,
        tracing,
        inject,
        None,
        RetryPolicy::none(),
    )
}

/// [`run_many`] with a fault plan and a bounded deterministic retry
/// policy. Host panics inside a run are caught per run and recorded as
/// [`RunFailure::Panic`]; a retried run re-executes with
/// [`RetryPolicy::reseed`] so the whole ledger is a pure function of
/// its inputs.
#[allow(clippy::too_many_arguments)]
pub fn run_many_faulted(
    platform: &Platform,
    workload: &(dyn Workload + Sync),
    cfg: &ExecConfig,
    n_runs: usize,
    seed_base: u64,
    tracing: bool,
    inject: Option<&InjectionConfig>,
    faults: Option<&FaultPlan>,
    retry: RetryPolicy,
) -> RunLedger {
    run_many_instrumented(
        platform, workload, cfg, n_runs, seed_base, tracing, inject, faults, retry, None,
    )
}

/// [`run_many_faulted`] with an optional per-run telemetry attachment
/// (typically [`TelemetryConfig::metrics_only`]); each run gets its own
/// recorder and its [`RunOutput::metrics`] snapshot filled in, ready
/// for exact per-cell aggregation by the campaign driver.
#[allow(clippy::too_many_arguments)]
pub fn run_many_instrumented(
    platform: &Platform,
    workload: &(dyn Workload + Sync),
    cfg: &ExecConfig,
    n_runs: usize,
    seed_base: u64,
    tracing: bool,
    inject: Option<&InjectionConfig>,
    faults: Option<&FaultPlan>,
    retry: RetryPolicy,
    telemetry: Option<TelemetryConfig>,
) -> RunLedger {
    if n_runs == 0 {
        return RunLedger::default();
    }
    let kconfig = KernelConfig::default();
    let host_threads = host_threads().min(n_runs);
    let mut results: Vec<Option<RunRecord>> = Vec::new();
    results.resize_with(n_runs, || None);

    let attempt_run = |seed: u64, arena: &mut RunArena| -> Result<RunOutput, RunFailure> {
        catch_unwind(AssertUnwindSafe(|| {
            let observe = Observe {
                telemetry,
                ..Observe::default()
            };
            run_once_instrumented_in(
                platform, workload, cfg, &kconfig, seed, tracing, inject, faults, observe, arena,
            )
            .map(|r| r.output)
        }))
        .unwrap_or_else(|payload| {
            Err(RunFailure::Panic {
                message: panic_message(payload),
            })
        })
    };

    // Hand each host thread a contiguous, exclusively owned chunk of the
    // result vector: no locks, and results land already ordered by seed.
    let chunk = n_runs.div_ceil(host_threads);
    let attempt_run = &attempt_run;
    std::thread::scope(|scope| {
        for (t, out) in results.chunks_mut(chunk).enumerate() {
            scope.spawn(move || {
                // One arena per worker: runs within a chunk recycle the
                // same kernel/tracer/telemetry buffers.
                let mut arena = RunArena::default();
                for (j, slot) in out.iter_mut().enumerate() {
                    let i = t * chunk + j;
                    let seed = seed_base + i as u64;
                    let mut attempts = 1u32;
                    let mut result = attempt_run(seed, &mut arena);
                    while result.is_err() && attempts <= retry.max_retries {
                        let reseed = RetryPolicy::reseed(seed, attempts);
                        eprintln!(
                            "noiselab: run seed {seed} failed ({}); retry {attempts}/{} \
                             with seed {reseed}",
                            result.as_ref().err().map(|f| f.cause()).unwrap_or("?"),
                            retry.max_retries
                        );
                        result = attempt_run(reseed, &mut arena);
                        attempts += 1;
                    }
                    *slot = Some(RunRecord {
                        seed,
                        attempts,
                        result,
                    });
                }
            });
        }
    });

    // Every slot is written by its owning chunk above; an empty slot can
    // only mean a harness bug, which we record instead of unwrapping so
    // the rest of the campaign's results survive.
    let records = results
        .into_iter()
        .enumerate()
        .map(|(i, r)| {
            r.unwrap_or_else(|| {
                let seed = seed_base + i as u64;
                eprintln!(
                    "noiselab: internal error: no result recorded for seed {seed}; \
                     counting it as a failed run"
                );
                RunRecord {
                    seed,
                    attempts: 0,
                    result: Err(RunFailure::Panic {
                        message: "host thread produced no result".into(),
                    }),
                }
            })
        })
        .collect();
    RunLedger { records }
}

/// Baseline measurement of one configuration.
#[derive(Debug, Clone)]
pub struct Baseline {
    pub summary: Summary,
    pub traces: TraceSet,
    /// Indices of runs with an active natural anomaly.
    pub anomaly_runs: Vec<usize>,
    /// Seeds (with causes) that produced no measurement.
    pub failures: Vec<(u64, RunFailure)>,
}

/// Run the baseline (optionally traced) stage of the pipeline. Panics
/// only if *every* run failed (there is no baseline to report).
pub fn run_baseline(
    platform: &Platform,
    workload: &(dyn Workload + Sync),
    cfg: &ExecConfig,
    n_runs: usize,
    seed_base: u64,
    tracing: bool,
) -> Baseline {
    let ledger = run_many(platform, workload, cfg, n_runs, seed_base, tracing, None);
    let samples = ledger.samples();
    let failures = ledger.failures();
    assert!(
        !samples.is_empty(),
        "baseline {}/{}: all {n_runs} runs failed: {failures:?}",
        workload.name(),
        cfg.label()
    );
    let mut traces = TraceSet::default();
    let mut anomaly_runs = Vec::new();
    for (i, record) in ledger.records.into_iter().enumerate() {
        let Ok(o) = record.result else { continue };
        if o.anomaly.is_some() {
            anomaly_runs.push(i);
        }
        if let Some(mut t) = o.trace {
            t.run_index = i;
            traces.runs.push(t);
        }
    }
    Baseline {
        summary: Summary::of(&samples),
        traces,
        anomaly_runs,
        failures,
    }
}

/// Result of the injection stage: the replayed-noise summary plus the
/// runs that produced no measurement.
#[derive(Debug, Clone)]
pub struct Injected {
    pub summary: Summary,
    pub failures: Vec<(u64, RunFailure)>,
}

/// Run the injection stage: repeat the workload with the injector
/// replaying `config`. Panics only if every run failed.
pub fn run_injected(
    platform: &Platform,
    workload: &(dyn Workload + Sync),
    cfg: &ExecConfig,
    config: &InjectionConfig,
    n_runs: usize,
    seed_base: u64,
) -> Injected {
    let ledger = run_many(
        platform,
        workload,
        cfg,
        n_runs,
        seed_base,
        false,
        Some(config),
    );
    let samples = ledger.samples();
    let failures = ledger.failures();
    assert!(
        !samples.is_empty(),
        "injected {}/{}: all {n_runs} runs failed: {failures:?}",
        workload.name(),
        cfg.label()
    );
    Injected {
        summary: Summary::of(&samples),
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::execconfig::Mitigation;
    use noiselab_workloads::NBody;

    // Small but long enough (several ms) to span multiple timer ticks.
    fn tiny_nbody() -> NBody {
        NBody {
            bodies: 4_096,
            steps: 3,
            sycl_kernel_efficiency: 1.3,
        }
    }

    #[test]
    fn run_once_is_deterministic() {
        let p = Platform::intel();
        let w = tiny_nbody();
        let cfg = ExecConfig::new(Model::Omp, Mitigation::Rm);
        let a = run_once(&p, &w, &cfg, 42, false, None).unwrap();
        let b = run_once(&p, &w, &cfg, 42, false, None).unwrap();
        assert_eq!(a.exec, b.exec);
        assert_eq!(
            a.stream_hash, b.stream_hash,
            "same seed must dispatch a bit-identical event stream"
        );
        let c = run_once(&p, &w, &cfg, 43, false, None).unwrap();
        assert_ne!(
            a.exec, c.exec,
            "different seeds should give different noise"
        );
        assert_ne!(a.stream_hash, c.stream_hash);
    }

    #[test]
    fn run_many_matches_run_once() {
        let p = Platform::intel();
        let w = tiny_nbody();
        let cfg = ExecConfig::new(Model::Omp, Mitigation::Rm);
        let many = run_many(&p, &w, &cfg, 4, 100, false, None);
        assert_eq!(many.failed_count(), 0);
        for (i, record) in many.records.iter().enumerate() {
            assert_eq!(record.seed, 100 + i as u64);
            assert_eq!(record.attempts, 1);
            let out = record.result.as_ref().unwrap();
            let single = run_once(&p, &w, &cfg, 100 + i as u64, false, None).unwrap();
            assert_eq!(out.exec, single.exec, "run {i} differs");
        }
    }

    #[test]
    fn noop_fault_plan_is_bit_identical() {
        let p = Platform::intel();
        let w = tiny_nbody();
        let cfg = ExecConfig::new(Model::Omp, Mitigation::Rm);
        let kc = KernelConfig::default();
        let plain = run_once(&p, &w, &cfg, 11, false, None).unwrap();
        let noop = FaultPlan {
            seed: 999,
            ..FaultPlan::default()
        };
        let faulted = run_once_faulted(&p, &w, &cfg, &kc, 11, false, None, Some(&noop)).unwrap();
        assert_eq!(plain.exec, faulted.exec, "no-op plan must not perturb runs");
    }

    #[test]
    fn tracing_produces_traces() {
        let p = Platform::intel();
        let w = tiny_nbody();
        let cfg = ExecConfig::new(Model::Omp, Mitigation::Rm);
        let base = run_baseline(&p, &w, &cfg, 3, 7, true);
        assert_eq!(base.traces.runs.len(), 3);
        assert!(base.failures.is_empty());
        for (i, t) in base.traces.runs.iter().enumerate() {
            assert_eq!(t.run_index, i);
            assert!(!t.events.is_empty(), "trace {i} has no events");
            assert!(t.exec_time > SimDuration::ZERO);
        }
    }

    #[test]
    fn sycl_slower_than_omp_raw() {
        let p = Platform::intel();
        let w = tiny_nbody();
        let omp = run_once(
            &p,
            &w,
            &ExecConfig::new(Model::Omp, Mitigation::Rm),
            1,
            false,
            None,
        )
        .unwrap();
        let sycl = run_once(
            &p,
            &w,
            &ExecConfig::new(Model::Sycl, Mitigation::Rm),
            1,
            false,
            None,
        )
        .unwrap();
        assert!(
            sycl.exec.nanos() as f64 > omp.exec.nanos() as f64 * 1.1,
            "sycl {} vs omp {}",
            sycl.exec,
            omp.exec
        );
    }

    #[test]
    fn governor_cells_change_the_run_and_stay_deterministic() {
        use noiselab_machine::Governor;
        let p = Platform::intel();
        let w = tiny_nbody();
        let base = ExecConfig::new(Model::Omp, Mitigation::Tp);
        let perf = base.clone().with_governor(Governor::Performance);
        let plain = run_once(&p, &w, &base, 5, false, None).unwrap();
        let a = run_once(&p, &w, &perf, 5, false, None).unwrap();
        let b = run_once(&p, &w, &perf, 5, false, None).unwrap();
        assert_eq!(a.stream_hash, b.stream_hash, "governor cells must replay");
        assert_eq!(a.exec, b.exec);
        assert_ne!(
            a.stream_hash, plain.stream_hash,
            "enabling DVFS must change the dispatched stream"
        );
        // Powersave holds every CPU at the floor frequency: the same
        // workload must take visibly longer than under Performance.
        let save = base.clone().with_governor(Governor::Powersave);
        let slow = run_once(&p, &w, &save, 5, false, None).unwrap();
        assert!(
            slow.exec > a.exec,
            "powersave {} should be slower than performance {}",
            slow.exec,
            a.exec
        );
    }

    #[test]
    fn host_threads_env_override_is_validated() {
        // Serialise against other tests touching the var (none today,
        // but the lock costs nothing).
        std::env::set_var("NOISELAB_HOST_THREADS", "3");
        assert_eq!(host_threads(), 3);
        std::env::set_var("NOISELAB_HOST_THREADS", "zero");
        let auto = host_threads();
        assert!(auto >= 1, "malformed value must fall back to detection");
        std::env::remove_var("NOISELAB_HOST_THREADS");
    }
}
