//! The experiment harness: run a workload under a platform and
//! execution configuration — baseline, traced, or with noise injection —
//! and repeat across seeds (in parallel on host threads; each simulated
//! run stays fully deterministic in its own kernel instance).

use crate::execconfig::{ExecConfig, Model};
use crate::platform::Platform;
use noiselab_injector::{spawn_injectors, InjectionConfig};
use noiselab_kernel::{Kernel, KernelConfig, RunError};
use noiselab_noise::{install, OsNoiseTracer, RunTrace, TraceSet};
use noiselab_runtime::{omp, sycl};
use noiselab_sim::{Rng, SimDuration, SimTime};
use noiselab_stats::Summary;
use noiselab_workloads::Workload;

/// Virtual-time safety horizon per run.
const HORIZON: SimTime = SimTime(600 * noiselab_sim::NANOS_PER_SEC);

/// Outcome of a single run.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// Workload execution time (spawn of the team to last worker exit).
    pub exec: SimDuration,
    /// The osnoise trace, when tracing was enabled.
    pub trace: Option<RunTrace>,
    /// Name of the natural anomaly active in this run, if any.
    pub anomaly: Option<String>,
}

/// Execute one run with the default kernel configuration. Fully
/// deterministic in `seed`.
pub fn run_once(
    platform: &Platform,
    workload: &dyn Workload,
    cfg: &ExecConfig,
    seed: u64,
    tracing: bool,
    inject: Option<&InjectionConfig>,
) -> RunOutput {
    run_once_with(
        platform,
        workload,
        cfg,
        &KernelConfig::default(),
        seed,
        tracing,
        inject,
    )
}

/// Execute one run under an explicit [`KernelConfig`] — the entry point
/// for kernel ablations such as the eager-vs-tickless equivalence suite.
pub fn run_once_with(
    platform: &Platform,
    workload: &dyn Workload,
    cfg: &ExecConfig,
    kconfig: &KernelConfig,
    seed: u64,
    tracing: bool,
    inject: Option<&InjectionConfig>,
) -> RunOutput {
    // SMT toggling (paper §5): rows without the SMT label run with SMT
    // disabled at firmware level, so the sibling hardware threads do not
    // exist — neither for the workload nor for noise to hide on.
    let mut machine = platform.machine.clone();
    if !cfg.smt && machine.smt > 1 {
        machine.smt = 1;
    }
    // Per-run machine speed jitter (frequency/thermal/layout effects):
    // the mitigation-independent component of baseline variability.
    if platform.run_jitter_sd > 0.0 {
        let mut jrng = Rng::new(seed ^ 0x51E5_71FF_00AA_22EE);
        let f = (1.0 + jrng.normal(0.0, platform.run_jitter_sd)).clamp(0.9, 1.1);
        machine.perf.flops_per_ns *= f;
        machine.perf.per_core_bw *= f;
        machine.perf.socket_bw *= f;
    }
    let mut kernel = Kernel::new(machine.clone(), kconfig.clone(), seed);

    // Natural background noise; the anomaly dice use an independent
    // stream so they do not correlate with intra-run event jitter.
    let mut noise_rng = Rng::new(seed ^ 0xA5A5_5A5A_0F0F_F0F0);
    let installed = install(&mut kernel, &platform.noise, &mut noise_rng);

    let buffer = if tracing {
        let (tracer, buffer) = OsNoiseTracer::new();
        kernel.attach_tracer(Box::new(tracer));
        Some(buffer)
    } else {
        None
    };

    let nthreads = cfg.nthreads(&machine);
    let affinities = cfg.affinities(&machine);

    let start_barrier = inject.map(|config| {
        let bar = kernel.new_barrier(config.lists.len() + nthreads);
        let _ = spawn_injectors(&mut kernel, config, bar);
        bar
    });

    let team = match cfg.model {
        Model::Omp => {
            let program = workload.omp_program(nthreads, cfg.schedule);
            let mut opts = omp::OmpLaunch::new(nthreads, affinities[0]);
            if affinities.len() > 1 {
                opts = omp::OmpLaunch::pinned(nthreads, affinities);
            }
            opts.start_barrier = start_barrier;
            omp::launch(&mut kernel, program, opts)
        }
        Model::Sycl => {
            let program = workload.sycl_program(nthreads);
            let mut opts = sycl::SyclLaunch::new(nthreads, affinities[0]);
            if affinities.len() > 1 {
                opts = sycl::SyclLaunch::pinned(nthreads, affinities);
            }
            opts.start_barrier = start_barrier;
            sycl::launch(&mut kernel, program, opts)
        }
    };

    let mut end = SimTime::ZERO;
    for w in &team.workers {
        match kernel.run_until_exit(*w, HORIZON) {
            Ok(t) => end = end.max(t),
            Err(RunError::Horizon(_)) => panic!(
                "{}/{} run exceeded the {HORIZON} horizon (seed {seed})",
                workload.name(),
                cfg.label()
            ),
            Err(RunError::Drained) => panic!(
                "{}/{} deadlocked: event queue drained with worker {w} alive (seed {seed})",
                workload.name(),
                cfg.label()
            ),
        }
    }
    let exec = end.since(SimTime::ZERO);

    let trace = buffer.map(|b| {
        kernel.detach_tracer();
        b.take_trace(0, exec)
    });

    RunOutput {
        exec,
        trace,
        anomaly: installed.anomaly,
    }
}

/// Execute `n_runs` runs with seeds `seed_base..seed_base + n_runs`,
/// parallelised over host threads. Results are ordered by seed.
pub fn run_many(
    platform: &Platform,
    workload: &(dyn Workload + Sync),
    cfg: &ExecConfig,
    n_runs: usize,
    seed_base: u64,
    tracing: bool,
    inject: Option<&InjectionConfig>,
) -> Vec<RunOutput> {
    if n_runs == 0 {
        return Vec::new();
    }
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let host_threads = host_threads.min(n_runs);
    let mut results: Vec<Option<RunOutput>> = Vec::new();
    results.resize_with(n_runs, || None);

    // Hand each host thread a contiguous, exclusively owned chunk of the
    // result vector: no locks, and results land already ordered by seed.
    let chunk = n_runs.div_ceil(host_threads);
    std::thread::scope(|scope| {
        for (t, out) in results.chunks_mut(chunk).enumerate() {
            scope.spawn(move || {
                for (j, slot) in out.iter_mut().enumerate() {
                    let i = t * chunk + j;
                    *slot = Some(run_once(
                        platform,
                        workload,
                        cfg,
                        seed_base + i as u64,
                        tracing,
                        inject,
                    ));
                }
            });
        }
    });

    results
        .into_iter()
        .map(|r| r.expect("missing run result"))
        .collect()
}

/// Baseline measurement of one configuration.
#[derive(Debug, Clone)]
pub struct Baseline {
    pub summary: Summary,
    pub traces: TraceSet,
    /// Indices of runs with an active natural anomaly.
    pub anomaly_runs: Vec<usize>,
}

/// Run the baseline (optionally traced) stage of the pipeline.
pub fn run_baseline(
    platform: &Platform,
    workload: &(dyn Workload + Sync),
    cfg: &ExecConfig,
    n_runs: usize,
    seed_base: u64,
    tracing: bool,
) -> Baseline {
    let outputs = run_many(platform, workload, cfg, n_runs, seed_base, tracing, None);
    let samples: Vec<f64> = outputs.iter().map(|o| o.exec.as_secs_f64()).collect();
    let mut traces = TraceSet::default();
    let mut anomaly_runs = Vec::new();
    for (i, o) in outputs.into_iter().enumerate() {
        if o.anomaly.is_some() {
            anomaly_runs.push(i);
        }
        if let Some(mut t) = o.trace {
            t.run_index = i;
            traces.runs.push(t);
        }
    }
    Baseline {
        summary: Summary::of(&samples),
        traces,
        anomaly_runs,
    }
}

/// Run the injection stage: repeat the workload with the injector
/// replaying `config`.
pub fn run_injected(
    platform: &Platform,
    workload: &(dyn Workload + Sync),
    cfg: &ExecConfig,
    config: &InjectionConfig,
    n_runs: usize,
    seed_base: u64,
) -> Summary {
    let outputs = run_many(
        platform,
        workload,
        cfg,
        n_runs,
        seed_base,
        false,
        Some(config),
    );
    let samples: Vec<f64> = outputs.iter().map(|o| o.exec.as_secs_f64()).collect();
    Summary::of(&samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::execconfig::Mitigation;
    use noiselab_workloads::NBody;

    // Small but long enough (several ms) to span multiple timer ticks.
    fn tiny_nbody() -> NBody {
        NBody {
            bodies: 4_096,
            steps: 3,
            sycl_kernel_efficiency: 1.3,
        }
    }

    #[test]
    fn run_once_is_deterministic() {
        let p = Platform::intel();
        let w = tiny_nbody();
        let cfg = ExecConfig::new(Model::Omp, Mitigation::Rm);
        let a = run_once(&p, &w, &cfg, 42, false, None);
        let b = run_once(&p, &w, &cfg, 42, false, None);
        assert_eq!(a.exec, b.exec);
        let c = run_once(&p, &w, &cfg, 43, false, None);
        assert_ne!(
            a.exec, c.exec,
            "different seeds should give different noise"
        );
    }

    #[test]
    fn run_many_matches_run_once() {
        let p = Platform::intel();
        let w = tiny_nbody();
        let cfg = ExecConfig::new(Model::Omp, Mitigation::Rm);
        let many = run_many(&p, &w, &cfg, 4, 100, false, None);
        for (i, out) in many.iter().enumerate() {
            let single = run_once(&p, &w, &cfg, 100 + i as u64, false, None);
            assert_eq!(out.exec, single.exec, "run {i} differs");
        }
    }

    #[test]
    fn tracing_produces_traces() {
        let p = Platform::intel();
        let w = tiny_nbody();
        let cfg = ExecConfig::new(Model::Omp, Mitigation::Rm);
        let base = run_baseline(&p, &w, &cfg, 3, 7, true);
        assert_eq!(base.traces.runs.len(), 3);
        for (i, t) in base.traces.runs.iter().enumerate() {
            assert_eq!(t.run_index, i);
            assert!(!t.events.is_empty(), "trace {i} has no events");
            assert!(t.exec_time > SimDuration::ZERO);
        }
    }

    #[test]
    fn sycl_slower_than_omp_raw() {
        let p = Platform::intel();
        let w = tiny_nbody();
        let omp = run_once(
            &p,
            &w,
            &ExecConfig::new(Model::Omp, Mitigation::Rm),
            1,
            false,
            None,
        );
        let sycl = run_once(
            &p,
            &w,
            &ExecConfig::new(Model::Sycl, Mitigation::Rm),
            1,
            false,
            None,
        );
        assert!(
            sycl.exec.nanos() as f64 > omp.exec.nanos() as f64 * 1.1,
            "sycl {} vs omp {}",
            sycl.exec,
            omp.exec
        );
    }
}
