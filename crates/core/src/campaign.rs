//! Checkpointed campaign driver: sweep a list of execution-config cells
//! over many seeds, survive crashes, and resume from the last completed
//! cell with bit-identical results.
//!
//! The state file is plain JSON written atomically (tmp + fsync +
//! rename + directory fsync) after every completed cell. Samples are
//! stored as `f64` and serialised with Rust's shortest-roundtrip float
//! formatting, so a resumed campaign reproduces the uninterrupted
//! campaign bit for bit. A fingerprint of the campaign inputs is
//! embedded in the checkpoint; resuming with different inputs is
//! refused rather than silently mixing incompatible measurements.
//!
//! Checkpoints are versioned: [`CHECKPOINT_SCHEMA`] is written into
//! every new file, files written before versioning existed load as
//! schema 1, and files from a *newer* schema are refused with a typed
//! error instead of being misread. The sharded multi-process engine
//! (`noiselab-campaignd`) reuses [`CellRecord`] as its unit of work and
//! folds shard ledgers back into one [`CampaignState`], including the
//! [`QuarantineRecord`]s naming cells that repeatedly killed workers.

use crate::execconfig::ExecConfig;
use crate::failure::{RetryPolicy, RunFailure};
use crate::harness::run_many_instrumented;
use crate::platform::Platform;
use noiselab_kernel::FaultPlan;
use noiselab_stats::Summary;
use noiselab_telemetry::{MetricsSnapshot, TelemetryConfig};
use noiselab_workloads::Workload;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// Schema version written into every new checkpoint. History:
/// * (absent) / 1 — PR 2's single-file checkpoint (fingerprint + cells).
/// * 2 — adds `schema` itself and the `quarantined` shard records of
///   the multi-process engine. Old files still load; their missing
///   fields default.
pub const CHECKPOINT_SCHEMA: u32 = 2;

/// Everything a campaign invocation needs. The same plan (minus
/// `limit`) must be passed when resuming from a checkpoint.
pub struct CampaignPlan<'a> {
    pub platform: &'a Platform,
    pub workload: &'a (dyn Workload + Sync),
    /// (label, config) cells, executed in order.
    pub cells: Vec<(String, ExecConfig)>,
    pub runs_per_cell: usize,
    pub seed_base: u64,
    pub faults: Option<FaultPlan>,
    pub retry: RetryPolicy,
    /// Checkpoint file; `None` runs without persistence.
    pub checkpoint: Option<PathBuf>,
    /// Execute at most this many cells in this invocation — the hook
    /// the kill/resume tests (and staged manual campaigns) use.
    pub limit: Option<usize>,
    /// On resume, re-execute the last completed cell and require its
    /// event-stream hash (and samples) to match the checkpoint bit for
    /// bit before continuing — catches a changed binary, platform or
    /// toolchain masquerading as the same campaign.
    pub verify_resume: bool,
}

impl CampaignPlan<'_> {
    /// Identity of the campaign's inputs. Two plans with the same
    /// fingerprint produce the same measurements cell for cell.
    pub fn fingerprint(&self) -> String {
        let faults = self
            .faults
            .as_ref()
            .map(|f| serde_json::to_string(f).unwrap_or_default())
            .unwrap_or_else(|| "none".into());
        let cells: Vec<&str> = self.cells.iter().map(|(l, _)| l.as_str()).collect();
        format!(
            "v2|{}|{}|[{}]|runs={}|seeds={}|faults={}|retries={}",
            self.platform.label(),
            self.workload.name(),
            cells.join(","),
            self.runs_per_cell,
            self.seed_base,
            faults,
            self.retry.max_retries,
        )
    }
}

/// Identity of one completed cell inside a checkpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellKey {
    pub label: String,
    /// First seed of the cell's seed range.
    pub seed: u64,
}

/// A failed run: the seed that ran and why it produced no measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureRecord {
    pub seed: u64,
    pub cause: RunFailure,
}

/// Results of one completed cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellRecord {
    pub key: CellKey,
    /// Execution times (seconds) of the successful runs, seed order.
    pub samples: Vec<f64>,
    pub failures: Vec<FailureRecord>,
    /// Total attempts consumed including retries.
    pub attempts: u64,
    /// [`crate::harness::RunLedger::stream_hash`] of the cell's runs:
    /// the determinism fingerprint `verify_resume` checks.
    pub stream_hash: u64,
    /// Exact aggregate of the cell's per-run metrics snapshots
    /// (counters summed, histograms merged bucket-wise, gauges averaged
    /// over runs). Defaults to empty when loading checkpoints written
    /// before the telemetry layer existed.
    #[serde(default)]
    pub metrics: MetricsSnapshot,
}

/// Cells the sharded engine gave up on: their shard killed workers
/// repeatedly, so the campaign completed without them instead of
/// aborting. The record names exactly which (label, seed) cells are
/// missing and why.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuarantineRecord {
    /// Shard id in the work queue that was quarantined.
    pub shard: u32,
    /// The cells the quarantined shard owned (never executed, or
    /// executed but unreported).
    pub cells: Vec<CellKey>,
    /// How many worker processes died holding this shard.
    pub crashes: u32,
    /// Human-readable cause of the final crash (exit status, timeout).
    pub reason: String,
}

/// The serialised campaign state — the unit of checkpoint/resume.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignState {
    /// Checkpoint schema version; 0 in files written before versioning
    /// existed (normalised to 1 by [`CampaignState::load`]).
    #[serde(default)]
    pub schema: u32,
    pub fingerprint: String,
    pub cells: Vec<CellRecord>,
    /// Shards the multi-process engine quarantined; empty for
    /// single-process campaigns and legacy checkpoints.
    #[serde(default)]
    pub quarantined: Vec<QuarantineRecord>,
    /// Supervisor health for the sharded engine (worker spawns/crashes,
    /// heartbeat timeouts, chaos kills, quarantine counts) as
    /// `campaignd.*` counters. Folded in by the CLI *after* the
    /// deterministic merge, excluded from `state_hash`, and
    /// default-empty in every state the bit-identity suites compare —
    /// so calm and chaos campaigns still merge to identical ledgers
    /// while `noiselab metrics`/`advise` can read the health record
    /// from the saved checkpoint. Additive like `CellRecord::metrics`:
    /// older checkpoints load with an empty snapshot.
    #[serde(default)]
    pub supervisor: MetricsSnapshot,
}

/// Why a checkpoint could not be loaded: the path, the claimed schema
/// version (when the file parsed far enough to expose one) and the byte
/// offset of the first bad input (when the JSON itself is corrupt) are
/// all named, mirroring the NLTB decoder's `DecodeError`.
#[derive(Debug)]
pub enum CheckpointError {
    /// The file could not be read at all.
    Io { path: PathBuf, source: io::Error },
    /// The file is not valid JSON, or is JSON of the wrong shape.
    Corrupt {
        path: PathBuf,
        /// Schema version the file claims, when readable.
        schema: Option<u32>,
        /// Byte offset of the first invalid input, for syntax errors.
        offset: Option<usize>,
        message: String,
    },
    /// The file was written by a newer noiselab than this one.
    UnsupportedSchema {
        path: PathBuf,
        schema: u32,
        supported: u32,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { path, source } => {
                write!(f, "cannot read checkpoint {}: {source}", path.display())
            }
            CheckpointError::Corrupt {
                path,
                schema,
                offset,
                message,
            } => {
                write!(f, "corrupt checkpoint {}", path.display())?;
                if let Some(v) = schema {
                    write!(f, " (schema v{v})")?;
                }
                if let Some(o) = offset {
                    write!(f, " at byte {o}")?;
                }
                write!(f, ": {message}")
            }
            CheckpointError::UnsupportedSchema {
                path,
                schema,
                supported,
            } => write!(
                f,
                "checkpoint {} has schema v{schema}, but this binary supports \
                 at most v{supported}; it was written by a newer noiselab",
                path.display()
            ),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Why a campaign invocation failed before (or instead of) producing a
/// state: checkpoint trouble, a fingerprint that belongs to a different
/// campaign, or a resume whose verification re-run diverged.
#[derive(Debug)]
pub enum CampaignError {
    Checkpoint(CheckpointError),
    /// Saving a checkpoint failed.
    Save {
        path: PathBuf,
        source: io::Error,
    },
    /// The checkpoint belongs to a different campaign.
    FingerprintMismatch {
        path: PathBuf,
    },
    /// `verify_resume` re-ran the last completed cell and it did not
    /// reproduce the checkpointed measurements bit for bit.
    ResumeVerificationFailed {
        label: String,
        replayed_hash: u64,
        recorded_hash: u64,
    },
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Checkpoint(e) => write!(f, "{e}"),
            CampaignError::Save { path, source } => {
                write!(f, "cannot save checkpoint {}: {source}", path.display())
            }
            CampaignError::FingerprintMismatch { path } => write!(
                f,
                "checkpoint {} belongs to a different campaign \
                 (fingerprint mismatch); refusing to resume",
                path.display()
            ),
            CampaignError::ResumeVerificationFailed {
                label,
                replayed_hash,
                recorded_hash,
            } => write!(
                f,
                "resume verification failed for cell {label:?}: re-run stream hash \
                 {replayed_hash:016x} != checkpointed {recorded_hash:016x}; the \
                 checkpoint was produced by a different binary or environment"
            ),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<CheckpointError> for CampaignError {
    fn from(e: CheckpointError) -> Self {
        CampaignError::Checkpoint(e)
    }
}

impl CampaignState {
    /// An empty state for a fresh campaign, at the current schema.
    pub fn new(fingerprint: String) -> CampaignState {
        CampaignState {
            schema: CHECKPOINT_SCHEMA,
            fingerprint,
            cells: Vec::new(),
            quarantined: Vec::new(),
            supervisor: MetricsSnapshot::default(),
        }
    }

    /// Load and validate a checkpoint. Legacy (pre-versioning) files
    /// load as schema 1; files claiming a schema newer than
    /// [`CHECKPOINT_SCHEMA`] are refused.
    pub fn load(path: &Path) -> Result<CampaignState, CheckpointError> {
        let text = std::fs::read_to_string(path).map_err(|source| CheckpointError::Io {
            path: path.to_path_buf(),
            source,
        })?;
        // Parse to the JSON value model first so syntax errors carry a
        // byte offset and shape errors can still name the schema the
        // file claims.
        let value = serde::parse_json(&text).map_err(|e| CheckpointError::Corrupt {
            path: path.to_path_buf(),
            schema: None,
            offset: e.pos(),
            message: e.to_string(),
        })?;
        let schema = match value.get("schema") {
            // Absent (or the derived default 0): a legacy v1 file.
            None => 1,
            Some(v) => match u32::from_value(v) {
                Ok(0) => 1,
                Ok(v) => v,
                Err(e) => {
                    return Err(CheckpointError::Corrupt {
                        path: path.to_path_buf(),
                        schema: None,
                        offset: None,
                        message: format!("unreadable schema field: {e}"),
                    })
                }
            },
        };
        if schema > CHECKPOINT_SCHEMA {
            return Err(CheckpointError::UnsupportedSchema {
                path: path.to_path_buf(),
                schema,
                supported: CHECKPOINT_SCHEMA,
            });
        }
        let mut state =
            CampaignState::from_value(&value).map_err(|e| CheckpointError::Corrupt {
                path: path.to_path_buf(),
                schema: Some(schema),
                offset: None,
                message: e.to_string(),
            })?;
        state.schema = schema;
        Ok(state)
    }

    /// Durable atomic save: the bytes are fsynced before the rename and
    /// the parent directory is fsynced after it, so neither a process
    /// crash (torn file) nor a host crash (lost rename) can damage the
    /// checkpoint the resume contract depends on.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let text = serde_json::to_string_pretty(self)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        crate::durable::write_atomic(path, text.as_bytes())
    }

    /// Condense the state into per-cell summaries and failure counts.
    pub fn report(&self, total_cells: usize) -> CampaignReport {
        let cells: Vec<CellReport> = self
            .cells
            .iter()
            .map(|c| CellReport {
                label: c.key.label.clone(),
                summary: Summary::try_of(&c.samples),
                ok: c.samples.len(),
                failed: c.failures.len(),
            })
            .collect();
        let total_ok = cells.iter().map(|c| c.ok).sum();
        let total_failed = cells.iter().map(|c| c.failed).sum();
        let quarantined: Vec<(String, String)> = self
            .quarantined
            .iter()
            .flat_map(|q| {
                q.cells
                    .iter()
                    .map(move |k| (k.label.clone(), q.reason.clone()))
            })
            .collect();
        CampaignReport {
            complete: self.cells.len() + quarantined.len() >= total_cells,
            cells,
            total_ok,
            total_failed,
            quarantined,
        }
    }
}

/// One cell of a [`CampaignReport`]. `summary` is `None` when every run
/// of the cell failed — still reported, never silently dropped.
#[derive(Debug, Clone)]
pub struct CellReport {
    pub label: String,
    pub summary: Option<Summary>,
    pub ok: usize,
    pub failed: usize,
}

/// Human-readable rollup of a (possibly partial) campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    pub complete: bool,
    pub cells: Vec<CellReport>,
    pub total_ok: usize,
    pub total_failed: usize,
    /// (cell label, reason) pairs for cells lost to shard quarantine —
    /// graceful degradation is reported by name, never silently.
    pub quarantined: Vec<(String, String)>,
}

/// Render a campaign report as plain text (used by `noiselab campaign`).
pub fn render_campaign_report(r: &CampaignReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "campaign {}: {} cell(s), {} ok run(s), {} failed run(s)",
        if r.complete { "complete" } else { "PARTIAL" },
        r.cells.len(),
        r.total_ok,
        r.total_failed
    ));
    if !r.quarantined.is_empty() {
        out.push_str(&format!(", {} cell(s) QUARANTINED", r.quarantined.len()));
    }
    out.push('\n');
    for c in &r.cells {
        match &c.summary {
            Some(s) => out.push_str(&format!(
                "  {:<24} mean {:.6}s  sd {:.6}s  n={} ({} failed)\n",
                c.label, s.mean, s.sd, c.ok, c.failed
            )),
            None => out.push_str(&format!(
                "  {:<24} NO DATA — all {} run(s) failed\n",
                c.label, c.failed
            )),
        }
    }
    for (label, reason) in &r.quarantined {
        out.push_str(&format!("  {label:<24} QUARANTINED — {reason}\n"));
    }
    out
}

/// Run (or resume) a campaign. Completed cells found in the checkpoint
/// are skipped; each newly completed cell is checkpointed before the
/// next starts, so the process can be killed at any point and resumed
/// from the last completed (config, seed) cell.
pub fn run_campaign(plan: &CampaignPlan) -> Result<CampaignState, CampaignError> {
    let fingerprint = plan.fingerprint();
    let mut state = match &plan.checkpoint {
        Some(path) if path.exists() => {
            let loaded = CampaignState::load(path)?;
            if loaded.fingerprint != fingerprint {
                return Err(CampaignError::FingerprintMismatch { path: path.clone() });
            }
            eprintln!(
                "noiselab: resuming campaign from {} ({} of {} cells done)",
                path.display(),
                loaded.cells.len(),
                plan.cells.len()
            );
            loaded
        }
        _ => CampaignState::new(fingerprint),
    };

    let done = state.cells.len();

    // Resume verification: replay the last completed cell and demand
    // bit-identity with the checkpoint before trusting (or extending)
    // it. Catches resumes under a different binary, toolchain or host
    // float environment that the input fingerprint cannot see.
    if plan.verify_resume && done > 0 {
        let i = done - 1;
        let (label, cfg) = &plan.cells[i];
        let replayed = run_cell(plan, i, label, cfg);
        let recorded = &state.cells[i];
        if replayed.stream_hash != recorded.stream_hash || replayed.samples != recorded.samples {
            return Err(CampaignError::ResumeVerificationFailed {
                label: recorded.key.label.clone(),
                replayed_hash: replayed.stream_hash,
                recorded_hash: recorded.stream_hash,
            });
        }
        eprintln!(
            "noiselab: resume verified: cell {:?} re-ran bit-identical \
             (stream hash {:016x})",
            recorded.key.label, recorded.stream_hash
        );
    }

    let stop = plan
        .limit
        .map_or(plan.cells.len(), |lim| (done + lim).min(plan.cells.len()));
    for (i, (label, cfg)) in plan.cells.iter().enumerate().take(stop).skip(done) {
        state.cells.push(run_cell(plan, i, label, cfg));
        if let Some(path) = &plan.checkpoint {
            state.save(path).map_err(|source| CampaignError::Save {
                path: path.clone(),
                source,
            })?;
        }
    }
    Ok(state)
}

/// Execute one campaign cell. Each cell owns a disjoint seed range,
/// fixed by its position: resume order cannot change which seeds a cell
/// runs, and a re-run of the same cell is bit-identical. Public so the
/// sharded engine's workers (`noiselab-campaignd`) execute cells by the
/// exact same path as the single-process driver — the merged ledger is
/// then bit-identical by construction.
pub fn run_cell(plan: &CampaignPlan, i: usize, label: &str, cfg: &ExecConfig) -> CellRecord {
    let seed = plan.seed_base + (i * plan.runs_per_cell) as u64;
    // Metrics-only telemetry: per-run counters/histograms aggregate
    // into the cell record without storing any timeline.
    let ledger = run_many_instrumented(
        plan.platform,
        plan.workload,
        cfg,
        plan.runs_per_cell,
        seed,
        false,
        None,
        plan.faults.as_ref(),
        plan.retry,
        Some(TelemetryConfig::metrics_only()),
    );
    let mut metrics = MetricsSnapshot::default();
    for out in ledger.outputs() {
        if let Some(m) = &out.metrics {
            metrics.merge(m);
        }
    }
    let cell = CellRecord {
        key: CellKey {
            label: label.to_string(),
            seed,
        },
        samples: ledger.samples(),
        failures: ledger
            .failures()
            .into_iter()
            .map(|(seed, cause)| FailureRecord { seed, cause })
            .collect(),
        attempts: ledger.records.iter().map(|r| r.attempts as u64).sum(),
        stream_hash: ledger.stream_hash(),
        metrics,
    };
    // One status line per completed cell so long campaigns show
    // progress without a log scrape.
    let total = plan.runs_per_cell as u64;
    eprintln!(
        "noiselab: cell {}/{} [{}] runs {}/{} retries {} degraded {}",
        i + 1,
        plan.cells.len(),
        label,
        cell.samples.len(),
        total,
        cell.attempts.saturating_sub(total),
        cell.metrics.counter("trace.degraded_runs"),
    );
    cell
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(label: &str, seed: u64, samples: Vec<f64>, failed: usize) -> CellRecord {
        CellRecord {
            key: CellKey {
                label: label.into(),
                seed,
            },
            samples,
            failures: (0..failed)
                .map(|i| FailureRecord {
                    seed: seed + i as u64,
                    cause: RunFailure::Deadlock,
                })
                .collect(),
            attempts: 0,
            stream_hash: 0xDEAD_BEEF ^ seed,
            metrics: MetricsSnapshot::default(),
        }
    }

    fn state_of(cells: Vec<CellRecord>) -> CampaignState {
        CampaignState {
            cells,
            ..CampaignState::new("f".into())
        }
    }

    #[test]
    fn state_json_roundtrip_is_exact() {
        let mut state = state_of(vec![
            record("omp/RM", 100, vec![0.1234567890123, 2.5e-3], 1),
            record("sycl/RM", 110, vec![], 3),
        ]);
        state.fingerprint = "v1|x".into();
        let text = serde_json::to_string_pretty(&state).unwrap();
        let back: CampaignState = serde_json::from_str(&text).unwrap();
        assert_eq!(state, back);
        // Shortest-roundtrip float formatting: bit-exact samples.
        assert_eq!(
            state.cells[0].samples[0].to_bits(),
            back.cells[0].samples[0].to_bits()
        );
    }

    #[test]
    fn report_counts_and_renders_empty_cells() {
        let state = state_of(vec![
            record("a", 0, vec![1.0, 2.0], 1),
            record("b", 10, vec![], 4),
        ]);
        let r = state.report(3);
        assert!(!r.complete);
        assert_eq!(r.total_ok, 2);
        assert_eq!(r.total_failed, 5);
        assert!(r.cells[1].summary.is_none());
        let text = render_campaign_report(&r);
        assert!(text.contains("PARTIAL"));
        assert!(text.contains("NO DATA"));
    }

    #[test]
    fn report_names_quarantined_cells() {
        let mut state = state_of(vec![record("a", 0, vec![1.0], 0)]);
        state.quarantined.push(QuarantineRecord {
            shard: 3,
            cells: vec![CellKey {
                label: "b".into(),
                seed: 10,
            }],
            crashes: 2,
            reason: "worker SIGKILLed twice".into(),
        });
        let r = state.report(2);
        assert!(r.complete, "quarantined cells count toward completion");
        assert_eq!(r.quarantined.len(), 1);
        let text = render_campaign_report(&r);
        assert!(text.contains("1 cell(s) QUARANTINED"), "{text}");
        assert!(text.contains("b") && text.contains("SIGKILLed"), "{text}");
    }

    #[test]
    fn save_is_atomic_durable_and_loadable() {
        let dir = std::env::temp_dir().join("noiselab-campaign-unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        let state = state_of(vec![record("a", 0, vec![1.0], 0)]);
        state.save(&path).unwrap();
        // The tmp staging file must never survive a completed save.
        assert!(!path.with_extension("tmp").exists());
        assert_eq!(CampaignState::load(&path).unwrap(), state);
        // Overwriting an existing checkpoint is equally clean.
        let state2 = state_of(vec![
            record("a", 0, vec![1.0], 0),
            record("b", 5, vec![], 1),
        ]);
        state2.save(&path).unwrap();
        assert!(!path.with_extension("tmp").exists());
        assert_eq!(CampaignState::load(&path).unwrap(), state2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_unversioned_checkpoint_loads_as_schema_1() {
        let dir = std::env::temp_dir().join("noiselab-campaign-legacy");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("v1.json");
        // A PR-2-era checkpoint: no schema, no quarantined.
        let legacy = r#"{
          "fingerprint": "v2|old",
          "cells": [{
            "key": {"label": "OMP/Rm", "seed": 7},
            "samples": [0.5],
            "failures": [],
            "attempts": 1,
            "stream_hash": 12345
          }]
        }"#;
        std::fs::write(&path, legacy).unwrap();
        let state = CampaignState::load(&path).unwrap();
        assert_eq!(state.schema, 1);
        assert_eq!(state.fingerprint, "v2|old");
        assert_eq!(state.cells.len(), 1);
        assert!(state.quarantined.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_checkpoint_error_names_path_and_offset() {
        let dir = std::env::temp_dir().join("noiselab-campaign-corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        // Truncated mid-object: the parser stops at a known byte.
        std::fs::write(&path, r#"{"fingerprint": "x", "cells": [nope"#).unwrap();
        let err = CampaignState::load(&path).unwrap_err();
        match &err {
            CheckpointError::Corrupt { offset, .. } => {
                assert!(offset.is_some(), "syntax errors must carry an offset")
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let text = err.to_string();
        assert!(text.contains("bad.json"), "{text}");
        assert!(text.contains("at byte"), "{text}");

        // Wrong shape (valid JSON): schema is named, offset is not.
        std::fs::write(&path, r#"{"schema": 2, "fingerprint": 9, "cells": []}"#).unwrap();
        let err = CampaignState::load(&path).unwrap_err();
        match &err {
            CheckpointError::Corrupt { schema, .. } => assert_eq!(*schema, Some(2)),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        assert!(err.to_string().contains("schema v2"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn newer_schema_is_refused() {
        let dir = std::env::temp_dir().join("noiselab-campaign-newer");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("future.json");
        std::fs::write(&path, r#"{"schema": 99, "fingerprint": "x", "cells": []}"#).unwrap();
        let err = CampaignState::load(&path).unwrap_err();
        assert!(
            matches!(err, CheckpointError::UnsupportedSchema { schema: 99, .. }),
            "{err:?}"
        );
        assert!(err.to_string().contains("newer noiselab"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
