//! Checkpointed campaign driver: sweep a list of execution-config cells
//! over many seeds, survive crashes, and resume from the last completed
//! cell with bit-identical results.
//!
//! The state file is plain JSON written atomically (tmp + rename) after
//! every completed cell. Samples are stored as `f64` and serialised
//! with Rust's shortest-roundtrip float formatting, so a resumed
//! campaign reproduces the uninterrupted campaign bit for bit. A
//! fingerprint of the campaign inputs is embedded in the checkpoint;
//! resuming with different inputs is refused rather than silently
//! mixing incompatible measurements.

use crate::execconfig::ExecConfig;
use crate::failure::{RetryPolicy, RunFailure};
use crate::harness::run_many_instrumented;
use crate::platform::Platform;
use noiselab_kernel::FaultPlan;
use noiselab_stats::Summary;
use noiselab_telemetry::{MetricsSnapshot, TelemetryConfig};
use noiselab_workloads::Workload;
use serde::{Deserialize, Serialize};
use std::io;
use std::path::{Path, PathBuf};

/// Everything a campaign invocation needs. The same plan (minus
/// `limit`) must be passed when resuming from a checkpoint.
pub struct CampaignPlan<'a> {
    pub platform: &'a Platform,
    pub workload: &'a (dyn Workload + Sync),
    /// (label, config) cells, executed in order.
    pub cells: Vec<(String, ExecConfig)>,
    pub runs_per_cell: usize,
    pub seed_base: u64,
    pub faults: Option<FaultPlan>,
    pub retry: RetryPolicy,
    /// Checkpoint file; `None` runs without persistence.
    pub checkpoint: Option<PathBuf>,
    /// Execute at most this many cells in this invocation — the hook
    /// the kill/resume tests (and staged manual campaigns) use.
    pub limit: Option<usize>,
    /// On resume, re-execute the last completed cell and require its
    /// event-stream hash (and samples) to match the checkpoint bit for
    /// bit before continuing — catches a changed binary, platform or
    /// toolchain masquerading as the same campaign.
    pub verify_resume: bool,
}

impl CampaignPlan<'_> {
    /// Identity of the campaign's inputs. Two plans with the same
    /// fingerprint produce the same measurements cell for cell.
    pub fn fingerprint(&self) -> String {
        let faults = self
            .faults
            .as_ref()
            .map(|f| serde_json::to_string(f).unwrap_or_default())
            .unwrap_or_else(|| "none".into());
        let cells: Vec<&str> = self.cells.iter().map(|(l, _)| l.as_str()).collect();
        format!(
            "v2|{}|{}|[{}]|runs={}|seeds={}|faults={}|retries={}",
            self.platform.label(),
            self.workload.name(),
            cells.join(","),
            self.runs_per_cell,
            self.seed_base,
            faults,
            self.retry.max_retries,
        )
    }
}

/// Identity of one completed cell inside a checkpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellKey {
    pub label: String,
    /// First seed of the cell's seed range.
    pub seed: u64,
}

/// A failed run: the seed that ran and why it produced no measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureRecord {
    pub seed: u64,
    pub cause: RunFailure,
}

/// Results of one completed cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellRecord {
    pub key: CellKey,
    /// Execution times (seconds) of the successful runs, seed order.
    pub samples: Vec<f64>,
    pub failures: Vec<FailureRecord>,
    /// Total attempts consumed including retries.
    pub attempts: u64,
    /// [`crate::harness::RunLedger::stream_hash`] of the cell's runs:
    /// the determinism fingerprint `verify_resume` checks.
    pub stream_hash: u64,
    /// Exact aggregate of the cell's per-run metrics snapshots
    /// (counters summed, histograms merged bucket-wise, gauges averaged
    /// over runs). Defaults to empty when loading checkpoints written
    /// before the telemetry layer existed.
    #[serde(default)]
    pub metrics: MetricsSnapshot,
}

/// The serialised campaign state — the unit of checkpoint/resume.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignState {
    pub fingerprint: String,
    pub cells: Vec<CellRecord>,
}

impl CampaignState {
    pub fn load(path: &Path) -> io::Result<CampaignState> {
        let text = std::fs::read_to_string(path)?;
        serde_json::from_str(&text).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("corrupt checkpoint {}: {e}", path.display()),
            )
        })
    }

    /// Atomic save: a crash mid-write leaves the previous checkpoint
    /// intact, never a torn file.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let text = serde_json::to_string_pretty(self)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, text)?;
        std::fs::rename(&tmp, path)
    }

    /// Condense the state into per-cell summaries and failure counts.
    pub fn report(&self, total_cells: usize) -> CampaignReport {
        let cells: Vec<CellReport> = self
            .cells
            .iter()
            .map(|c| CellReport {
                label: c.key.label.clone(),
                summary: Summary::try_of(&c.samples),
                ok: c.samples.len(),
                failed: c.failures.len(),
            })
            .collect();
        let total_ok = cells.iter().map(|c| c.ok).sum();
        let total_failed = cells.iter().map(|c| c.failed).sum();
        CampaignReport {
            complete: self.cells.len() >= total_cells,
            cells,
            total_ok,
            total_failed,
        }
    }
}

/// One cell of a [`CampaignReport`]. `summary` is `None` when every run
/// of the cell failed — still reported, never silently dropped.
#[derive(Debug, Clone)]
pub struct CellReport {
    pub label: String,
    pub summary: Option<Summary>,
    pub ok: usize,
    pub failed: usize,
}

/// Human-readable rollup of a (possibly partial) campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    pub complete: bool,
    pub cells: Vec<CellReport>,
    pub total_ok: usize,
    pub total_failed: usize,
}

/// Render a campaign report as plain text (used by `noiselab campaign`).
pub fn render_campaign_report(r: &CampaignReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "campaign {}: {} cell(s), {} ok run(s), {} failed run(s)\n",
        if r.complete { "complete" } else { "PARTIAL" },
        r.cells.len(),
        r.total_ok,
        r.total_failed
    ));
    for c in &r.cells {
        match &c.summary {
            Some(s) => out.push_str(&format!(
                "  {:<24} mean {:.6}s  sd {:.6}s  n={} ({} failed)\n",
                c.label, s.mean, s.sd, c.ok, c.failed
            )),
            None => out.push_str(&format!(
                "  {:<24} NO DATA — all {} run(s) failed\n",
                c.label, c.failed
            )),
        }
    }
    out
}

/// Run (or resume) a campaign. Completed cells found in the checkpoint
/// are skipped; each newly completed cell is checkpointed before the
/// next starts, so the process can be killed at any point and resumed
/// from the last completed (config, seed) cell.
pub fn run_campaign(plan: &CampaignPlan) -> io::Result<CampaignState> {
    let fingerprint = plan.fingerprint();
    let mut state = match &plan.checkpoint {
        Some(path) if path.exists() => {
            let loaded = CampaignState::load(path)?;
            if loaded.fingerprint != fingerprint {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "checkpoint {} belongs to a different campaign \
                         (fingerprint mismatch); refusing to resume",
                        path.display()
                    ),
                ));
            }
            eprintln!(
                "noiselab: resuming campaign from {} ({} of {} cells done)",
                path.display(),
                loaded.cells.len(),
                plan.cells.len()
            );
            loaded
        }
        _ => CampaignState {
            fingerprint,
            cells: Vec::new(),
        },
    };

    let done = state.cells.len();

    // Resume verification: replay the last completed cell and demand
    // bit-identity with the checkpoint before trusting (or extending)
    // it. Catches resumes under a different binary, toolchain or host
    // float environment that the input fingerprint cannot see.
    if plan.verify_resume && done > 0 {
        let i = done - 1;
        let (label, cfg) = &plan.cells[i];
        let replayed = run_cell(plan, i, label, cfg);
        let recorded = &state.cells[i];
        if replayed.stream_hash != recorded.stream_hash || replayed.samples != recorded.samples {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "resume verification failed for cell {:?}: re-run stream hash \
                     {:016x} != checkpointed {:016x}; the checkpoint was produced \
                     by a different binary or environment",
                    recorded.key.label, replayed.stream_hash, recorded.stream_hash
                ),
            ));
        }
        eprintln!(
            "noiselab: resume verified: cell {:?} re-ran bit-identical \
             (stream hash {:016x})",
            recorded.key.label, recorded.stream_hash
        );
    }

    let stop = plan
        .limit
        .map_or(plan.cells.len(), |lim| (done + lim).min(plan.cells.len()));
    for (i, (label, cfg)) in plan.cells.iter().enumerate().take(stop).skip(done) {
        state.cells.push(run_cell(plan, i, label, cfg));
        if let Some(path) = &plan.checkpoint {
            state.save(path)?;
        }
    }
    Ok(state)
}

/// Execute one campaign cell. Each cell owns a disjoint seed range,
/// fixed by its position: resume order cannot change which seeds a cell
/// runs, and a re-run of the same cell is bit-identical.
fn run_cell(plan: &CampaignPlan, i: usize, label: &str, cfg: &ExecConfig) -> CellRecord {
    let seed = plan.seed_base + (i * plan.runs_per_cell) as u64;
    // Metrics-only telemetry: per-run counters/histograms aggregate
    // into the cell record without storing any timeline.
    let ledger = run_many_instrumented(
        plan.platform,
        plan.workload,
        cfg,
        plan.runs_per_cell,
        seed,
        false,
        None,
        plan.faults.as_ref(),
        plan.retry,
        Some(TelemetryConfig::metrics_only()),
    );
    let mut metrics = MetricsSnapshot::default();
    for out in ledger.outputs() {
        if let Some(m) = &out.metrics {
            metrics.merge(m);
        }
    }
    let cell = CellRecord {
        key: CellKey {
            label: label.to_string(),
            seed,
        },
        samples: ledger.samples(),
        failures: ledger
            .failures()
            .into_iter()
            .map(|(seed, cause)| FailureRecord { seed, cause })
            .collect(),
        attempts: ledger.records.iter().map(|r| r.attempts as u64).sum(),
        stream_hash: ledger.stream_hash(),
        metrics,
    };
    // One status line per completed cell so long campaigns show
    // progress without a log scrape.
    let total = plan.runs_per_cell as u64;
    eprintln!(
        "noiselab: cell {}/{} [{}] runs {}/{} retries {} degraded {}",
        i + 1,
        plan.cells.len(),
        label,
        cell.samples.len(),
        total,
        cell.attempts.saturating_sub(total),
        cell.metrics.counter("trace.degraded_runs"),
    );
    cell
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(label: &str, seed: u64, samples: Vec<f64>, failed: usize) -> CellRecord {
        CellRecord {
            key: CellKey {
                label: label.into(),
                seed,
            },
            samples,
            failures: (0..failed)
                .map(|i| FailureRecord {
                    seed: seed + i as u64,
                    cause: RunFailure::Deadlock,
                })
                .collect(),
            attempts: 0,
            stream_hash: 0xDEAD_BEEF ^ seed,
            metrics: MetricsSnapshot::default(),
        }
    }

    #[test]
    fn state_json_roundtrip_is_exact() {
        let state = CampaignState {
            fingerprint: "v1|x".into(),
            cells: vec![
                record("omp/RM", 100, vec![0.1234567890123, 2.5e-3], 1),
                record("sycl/RM", 110, vec![], 3),
            ],
        };
        let text = serde_json::to_string_pretty(&state).unwrap();
        let back: CampaignState = serde_json::from_str(&text).unwrap();
        assert_eq!(state, back);
        // Shortest-roundtrip float formatting: bit-exact samples.
        assert_eq!(
            state.cells[0].samples[0].to_bits(),
            back.cells[0].samples[0].to_bits()
        );
    }

    #[test]
    fn report_counts_and_renders_empty_cells() {
        let state = CampaignState {
            fingerprint: "f".into(),
            cells: vec![
                record("a", 0, vec![1.0, 2.0], 1),
                record("b", 10, vec![], 4),
            ],
        };
        let r = state.report(3);
        assert!(!r.complete);
        assert_eq!(r.total_ok, 2);
        assert_eq!(r.total_failed, 5);
        assert!(r.cells[1].summary.is_none());
        let text = render_campaign_report(&r);
        assert!(text.contains("PARTIAL"));
        assert!(text.contains("NO DATA"));
    }

    #[test]
    fn save_is_atomic_and_loadable() {
        let dir = std::env::temp_dir().join("noiselab-campaign-unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        let state = CampaignState {
            fingerprint: "f".into(),
            cells: vec![record("a", 0, vec![1.0], 0)],
        };
        state.save(&path).unwrap();
        assert!(!path.with_extension("tmp").exists());
        assert_eq!(CampaignState::load(&path).unwrap(), state);
        std::fs::remove_dir_all(&dir).ok();
    }
}
