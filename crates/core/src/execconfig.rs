//! Execution configurations: programming model × mitigation strategy ×
//! SMT usage (the row/column labels of the paper's tables).

use noiselab_machine::{CpuSet, Governor, Machine};
use noiselab_runtime::omp::OmpSchedule;
use serde::{Deserialize, Serialize};

/// Programming model under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Model {
    Omp,
    Sycl,
}

impl Model {
    pub fn label(self) -> &'static str {
        match self {
            Model::Omp => "OMP",
            Model::Sycl => "SYCL",
        }
    }
}

/// Mitigation strategies of §5 (figure/table column labels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mitigation {
    /// Roam: threads schedule freely over all available CPUs.
    Rm,
    /// Roam + 12.5 % of CPUs left to background tasks.
    RmHK,
    /// Roam + 25 % housekeeping.
    RmHK2,
    /// Thread pinning, all CPUs.
    Tp,
    /// Pinning + 12.5 % housekeeping.
    TpHK,
    /// Pinning + 25 % housekeeping.
    TpHK2,
}

impl Mitigation {
    pub const ALL: [Mitigation; 6] = [
        Mitigation::Rm,
        Mitigation::RmHK,
        Mitigation::RmHK2,
        Mitigation::Tp,
        Mitigation::TpHK,
        Mitigation::TpHK2,
    ];

    pub fn label(self) -> &'static str {
        match self {
            Mitigation::Rm => "Rm",
            Mitigation::RmHK => "RmHK",
            Mitigation::RmHK2 => "RmHK2",
            Mitigation::Tp => "TP",
            Mitigation::TpHK => "TPHK",
            Mitigation::TpHK2 => "TPHK2",
        }
    }

    pub fn pinned(self) -> bool {
        matches!(self, Mitigation::Tp | Mitigation::TpHK | Mitigation::TpHK2)
    }

    /// Fraction of CPUs reserved as housekeeping.
    pub fn housekeeping_fraction(self) -> f64 {
        match self {
            Mitigation::Rm | Mitigation::Tp => 0.0,
            Mitigation::RmHK | Mitigation::TpHK => 0.125,
            Mitigation::RmHK2 | Mitigation::TpHK2 => 0.25,
        }
    }
}

/// A full execution configuration for one experiment cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecConfig {
    pub model: Model,
    pub mitigation: Mitigation,
    /// SMT toggling (AMD rows labelled "SMT" in the paper). `false`
    /// disables SMT at firmware level (sibling hardware threads do not
    /// exist); `true` keeps SMT enabled but leaves the secondary
    /// hardware threads unallocated so OS noise can land there — the
    /// mitigation of León et al. the paper evaluates. The workload runs
    /// one thread per physical core either way.
    pub smt: bool,
    /// Override the OpenMP schedule (schedbench sweeps); `None` = the
    /// workload default.
    pub schedule: Option<OmpSchedule>,
    /// Override the thread count (Fig. 2 thread sweeps); `None` = one
    /// thread per available CPU.
    pub threads: Option<usize>,
    /// DVFS governor override for frequency-noise cells. `None` leaves
    /// the platform's DVFS config untouched (disabled on every shipped
    /// preset except `intel-dvfs`); `Some` enables DVFS under that
    /// governor. Absent from old serialized configs, hence the default.
    #[serde(default)]
    pub governor: Option<Governor>,
}

impl ExecConfig {
    pub fn new(model: Model, mitigation: Mitigation) -> Self {
        ExecConfig {
            model,
            mitigation,
            smt: false,
            schedule: None,
            threads: None,
            governor: None,
        }
    }

    pub fn with_smt(mut self) -> Self {
        self.smt = true;
        self
    }

    pub fn with_threads(mut self, n: usize) -> Self {
        self.threads = Some(n);
        self
    }

    pub fn with_schedule(mut self, s: OmpSchedule) -> Self {
        self.schedule = Some(s);
        self
    }

    pub fn with_governor(mut self, g: Governor) -> Self {
        self.governor = Some(g);
        self
    }

    /// Row label, e.g. `Rm-OMP`, `TPHK2-SYCL-SMT`, `TP-OMP-UTIL`. The
    /// governor tag must appear here: campaign fingerprints cover cell
    /// labels, so two cells differing only in governor need distinct
    /// labels to be distinct cells.
    pub fn label(&self) -> String {
        let mut s = format!("{}-{}", self.mitigation.label(), self.model.label());
        if self.smt {
            s.push_str("-SMT");
        }
        if let Some(g) = self.governor {
            s.push('-');
            s.push_str(g.tag());
        }
        s
    }

    /// The CPUs the workload may use: firmware-visible user CPUs,
    /// restricted to the primary hardware thread of each core (with SMT
    /// enabled the secondary threads stay free for OS noise), minus the
    /// housekeeping share (highest-numbered CPUs are left to background
    /// tasks, mirroring the paper's setup).
    pub fn workload_cpus(&self, machine: &Machine) -> CpuSet {
        let base = machine.user_cpus().intersection(machine.primary_threads());
        let n = base.len();
        let hk = (n as f64 * self.mitigation.housekeeping_fraction()).round() as usize;
        let keep = n - hk;
        base.iter().take(keep).collect()
    }

    /// Number of workload threads.
    pub fn nthreads(&self, machine: &Machine) -> usize {
        self.threads
            .unwrap_or_else(|| self.workload_cpus(machine).len())
            .max(1)
    }

    /// Per-worker affinity masks: one shared mask when roaming, one
    /// single-CPU mask per worker when pinned.
    pub fn affinities(&self, machine: &Machine) -> Vec<CpuSet> {
        let cpus = self.workload_cpus(machine);
        if self.mitigation.pinned() {
            let list: Vec<_> = cpus.iter().collect();
            (0..self.nthreads(machine))
                .map(|i| CpuSet::single(list[i % list.len()]))
                .collect()
        } else {
            vec![cpus]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noiselab_machine::CpuId;

    #[test]
    fn labels() {
        assert_eq!(
            ExecConfig::new(Model::Omp, Mitigation::Rm).label(),
            "Rm-OMP"
        );
        assert_eq!(
            ExecConfig::new(Model::Sycl, Mitigation::TpHK2)
                .with_smt()
                .label(),
            "TPHK2-SYCL-SMT"
        );
        assert_eq!(
            ExecConfig::new(Model::Omp, Mitigation::Tp)
                .with_governor(Governor::Schedutil)
                .label(),
            "TP-OMP-UTIL"
        );
    }

    #[test]
    fn housekeeping_reduces_cpus() {
        let m = Machine::intel_9700kf();
        let rm = ExecConfig::new(Model::Omp, Mitigation::Rm);
        let hk = ExecConfig::new(Model::Omp, Mitigation::RmHK);
        let hk2 = ExecConfig::new(Model::Omp, Mitigation::RmHK2);
        assert_eq!(rm.workload_cpus(&m).len(), 8);
        assert_eq!(hk.workload_cpus(&m).len(), 7);
        assert_eq!(hk2.workload_cpus(&m).len(), 6);
    }

    #[test]
    fn smt_toggle_on_amd() {
        // With SMT enabled the workload still runs one thread per core;
        // the sibling hardware threads stay free to absorb noise.
        let m = Machine::amd_9950x3d();
        let smt = ExecConfig::new(Model::Omp, Mitigation::Rm).with_smt();
        assert_eq!(smt.workload_cpus(&m).len(), 16);
        assert_eq!(smt.nthreads(&m), 16);
        // With SMT firmware-disabled the harness hands a 16-cpu machine.
        let mut off = m.clone();
        off.smt = 1;
        let plain = ExecConfig::new(Model::Omp, Mitigation::Rm);
        assert_eq!(plain.workload_cpus(&off).len(), 16);
        assert_eq!(plain.nthreads(&off), 16);
    }

    #[test]
    fn pinning_yields_single_cpu_masks() {
        let m = Machine::intel_9700kf();
        let tp = ExecConfig::new(Model::Omp, Mitigation::Tp);
        let affs = tp.affinities(&m);
        assert_eq!(affs.len(), 8);
        for (i, a) in affs.iter().enumerate() {
            assert_eq!(a.len(), 1);
            assert!(a.contains(CpuId(i as u32)));
        }
    }

    #[test]
    fn roaming_yields_one_shared_mask() {
        let m = Machine::intel_9700kf();
        let rm = ExecConfig::new(Model::Sycl, Mitigation::RmHK);
        let affs = rm.affinities(&m);
        assert_eq!(affs.len(), 1);
        assert_eq!(affs[0].len(), 7);
    }

    #[test]
    fn reserved_cores_excluded_on_a64fx() {
        let m = Machine::a64fx(true);
        let rm = ExecConfig::new(Model::Omp, Mitigation::Rm);
        let cpus = rm.workload_cpus(&m);
        assert_eq!(cpus.len(), 48);
        assert!(!cpus.contains(CpuId(48)));
        assert!(!cpus.contains(CpuId(49)));
    }

    #[test]
    fn thread_override() {
        let m = Machine::a64fx(false);
        let cfg = ExecConfig::new(Model::Omp, Mitigation::Rm).with_threads(12);
        assert_eq!(cfg.nthreads(&m), 12);
        // Pinned variant places 12 threads on the first 12 cpus.
        let tp = ExecConfig::new(Model::Omp, Mitigation::Tp).with_threads(12);
        assert_eq!(tp.affinities(&m).len(), 12);
    }
}
