//! Observation-overhead report: what does observing a run cost, in
//! virtual time and in host time?
//!
//! The paper's Table 1 quantifies the osnoise tracer's overhead on real
//! hardware; this module produces the simulator-side analogue, and the
//! two observers deliberately behave differently:
//!
//! * the **tracer** models ftrace: the kernel charges
//!   `trace_event_overhead` per record, so tracing has a real,
//!   reportable *virtual*-time effect (the Table 1 effect; the shifted
//!   interleaving can move `exec` in either direction);
//! * **telemetry** is a pure observer: `exec` and `stream_hash` are
//!   bit-identical with it on or off (asserted here for both tracing
//!   modes, proven property-style in the purity suite).
//!
//! Host cost is real for both and is measured through the workspace's
//! single audited [`wall_clock`] site. A host-time phase profile (event
//! dispatch / scheduler / tracer / stats) rides along so regressions
//! can be localised.

use crate::execconfig::ExecConfig;
use crate::failure::RunFailure;
use crate::harness::{run_once_instrumented, run_once_instrumented_in, Observe, RunArena};
use crate::platform::Platform;
use noiselab_kernel::KernelConfig;
use noiselab_telemetry::{wall_clock, PhaseProfiler, PhaseReport, TelemetryConfig};
use noiselab_workloads::Workload;
use serde::{Deserialize, Serialize};

/// One observation mode's measured cost.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OverheadRow {
    /// "bare", "+telemetry", "+tracer" or "+both".
    pub mode: String,
    /// Virtual workload execution time (seconds). Telemetry never
    /// moves it; the tracer's per-record cost does.
    pub exec_s: f64,
    /// Event-stream hash — identical with telemetry on or off.
    pub stream_hash: u64,
    /// Virtual-time overhead relative to the bare run, percent (the
    /// Table 1 analogue; nonzero only for traced modes).
    pub virt_overhead_pct: f64,
    /// Best-of-`reps` host wall time for one run (nanoseconds).
    pub host_ns: u64,
    /// Host nanoseconds per dispatched kernel event.
    pub host_ns_per_event: f64,
    /// Host-time overhead relative to the bare run, percent.
    pub overhead_pct: f64,
}

/// The full observation-overhead report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OverheadReport {
    pub workload: String,
    pub config: String,
    pub seed: u64,
    /// Repetitions per mode; each row reports the minimum.
    pub reps: u32,
    /// Kernel events dispatched per run (counted by the last
    /// telemetry-attached mode).
    pub events: u64,
    pub rows: Vec<OverheadRow>,
    /// Host self-time per simulator phase, from one profiled run with
    /// telemetry and tracer attached.
    pub profile: PhaseReport,
}

impl OverheadReport {
    /// Plain-text table, one mode per line, then the phase profile.
    pub fn render(&self) -> String {
        let mut out = format!(
            "observation overhead: {} / {} seed {} ({} events/run, best of {})\n\
             {:<12} {:>12} {:>10} {:>12} {:>14} {:>10}\n",
            self.workload,
            self.config,
            self.seed,
            self.events,
            self.reps,
            "mode",
            "virtual",
            "virt ovh",
            "host",
            "host ns/event",
            "host ovh"
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{:<12} {:>11.6}s {:>+9.3}% {:>12} {:>14.1} {:>+9.1}%\n",
                r.mode,
                r.exec_s,
                r.virt_overhead_pct,
                noiselab_stats::fmt_ns(r.host_ns as f64),
                r.host_ns_per_event,
                r.overhead_pct,
            ));
        }
        out.push_str(&self.profile.render());
        out
    }
}

/// Measure one (workload, config, seed) point in all four observation
/// modes. Telemetry must leave virtual results bit-identical within
/// each tracing mode; a mismatch is a purity bug and panics rather
/// than producing a report that understates observer effects.
pub fn measure_overhead(
    platform: &Platform,
    workload: &dyn Workload,
    cfg: &ExecConfig,
    seed: u64,
    reps: u32,
) -> Result<OverheadReport, RunFailure> {
    let kconfig = KernelConfig::default();
    let reps = reps.max(1);
    let mut rows = Vec::new();
    let mut events = 0u64;
    // One arena across all modes and reps: after the first (cold) rep,
    // every measured run recycles the same buffers, which is exactly the
    // steady state campaign loops run in.
    let mut arena = RunArena::default();

    for (mode, tracing, telemetry) in [
        ("bare", false, false),
        ("+telemetry", false, true),
        ("+tracer", true, false),
        ("+both", true, true),
    ] {
        let mut best_ns = u64::MAX;
        let mut exec_s = 0.0;
        let mut stream_hash = 0u64;
        for _ in 0..reps {
            let observe = Observe {
                telemetry: telemetry.then(TelemetryConfig::default),
                ..Observe::default()
            };
            let t0 = wall_clock();
            let run = run_once_instrumented_in(
                platform, workload, cfg, &kconfig, seed, tracing, None, None, observe, &mut arena,
            )?;
            let ns = wall_clock().duration_since(t0).as_nanos() as u64;
            best_ns = best_ns.min(ns);
            exec_s = run.output.exec.as_secs_f64();
            stream_hash = run.output.stream_hash;
            if let Some(m) = &run.output.metrics {
                events = m.counter("kernel.events");
            }
        }
        rows.push(OverheadRow {
            mode: mode.to_string(),
            exec_s,
            stream_hash,
            virt_overhead_pct: 0.0,
            host_ns: best_ns,
            host_ns_per_event: 0.0,
            overhead_pct: 0.0,
        });
    }

    // Telemetry purity: within each tracing mode, telemetry on vs off
    // must not move a single virtual bit.
    for (off, on) in [(0, 1), (2, 3)] {
        assert_eq!(
            (rows[off].exec_s, rows[off].stream_hash),
            (rows[on].exec_s, rows[on].stream_hash),
            "telemetry perturbed the {} simulation — observer purity violated",
            rows[off].mode
        );
    }
    let bare_ns = rows[0].host_ns.max(1) as f64;
    let bare_exec = rows[0].exec_s;
    for r in &mut rows {
        r.virt_overhead_pct = (r.exec_s - bare_exec) / bare_exec * 100.0;
        r.host_ns_per_event = r.host_ns as f64 / events.max(1) as f64;
        r.overhead_pct = (r.host_ns as f64 - bare_ns) / bare_ns * 100.0;
    }

    // One profiled run (everything attached) for the phase breakdown.
    let profiler = PhaseProfiler::new();
    let observe = Observe {
        telemetry: Some(TelemetryConfig::default()),
        profiler: Some(profiler.clone()),
        ..Observe::default()
    };
    run_once_instrumented(
        platform, workload, cfg, &kconfig, seed, true, None, None, observe,
    )?;

    Ok(OverheadReport {
        workload: workload.name().to_string(),
        config: cfg.label(),
        seed,
        reps,
        events,
        rows,
        profile: profiler.report(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::execconfig::{Mitigation, Model};
    use noiselab_workloads::NBody;

    #[test]
    fn overhead_report_covers_all_modes_and_stays_pure() {
        let p = Platform::intel();
        let w = NBody {
            bodies: 2_048,
            steps: 2,
            sycl_kernel_efficiency: 1.3,
        };
        let cfg = ExecConfig::new(Model::Omp, Mitigation::Rm);
        let rep = measure_overhead(&p, &w, &cfg, 7, 1).expect("runs succeed");
        assert_eq!(rep.rows.len(), 4);
        assert!(rep.events > 0, "telemetry must count kernel events");
        // Telemetry is pure within each tracing mode...
        assert_eq!(rep.rows[0].exec_s, rep.rows[1].exec_s);
        assert_eq!(rep.rows[0].stream_hash, rep.rows[1].stream_hash);
        assert_eq!(rep.rows[2].exec_s, rep.rows[3].exec_s);
        assert_eq!(rep.rows[2].stream_hash, rep.rows[3].stream_hash);
        assert_eq!(rep.rows[1].virt_overhead_pct, 0.0);
        for r in &rep.rows {
            assert!(r.host_ns > 0);
        }
        let text = rep.render();
        assert!(text.contains("+tracer"));
        assert!(text.contains("dispatch"));
        let json = serde_json::to_string_pretty(&rep).expect("serialize");
        assert!(json.contains("overhead_pct"));
    }
}
