//! Per-platform workload calibration.
//!
//! The paper reports different absolute baselines per platform but does
//! not state problem sizes; as on the real testbeds, sizes are chosen
//! per platform so baseline execution times match the paper's Tables
//! 1/3-5 (see EXPERIMENTS.md for the measured residuals). The *shape*
//! results never depend on these constants.

use crate::platform::Platform;
use noiselab_workloads::{Babelstream, MiniFE, NBody};

fn is_amd(platform: &Platform) -> bool {
    platform.machine.name.contains("AMD")
}

/// N-body sized to the platform (Intel ~0.45 s, AMD ~0.67 s OMP-Rm).
pub fn nbody_for(platform: &Platform) -> NBody {
    if is_amd(platform) {
        NBody {
            bodies: 76_800,
            ..NBody::default()
        }
    } else {
        NBody::default()
    }
}

/// Babelstream sized to the platform (Intel ~1.9 s, AMD ~0.79 s OMP-Rm).
pub fn babelstream_for(platform: &Platform) -> Babelstream {
    if is_amd(platform) {
        Babelstream {
            elements: 5_280_000,
            ..Babelstream::default()
        }
    } else {
        Babelstream {
            elements: 7_100_000,
            ..Babelstream::default()
        }
    }
}

/// MiniFE sized to the platform (Intel ~1.06 s, AMD ~0.72 s OMP-Rm).
pub fn minife_for(platform: &Platform) -> MiniFE {
    if is_amd(platform) {
        MiniFE {
            nx: 74,
            ..MiniFE::default()
        }
    } else {
        MiniFE {
            nx: 70,
            ..MiniFE::default()
        }
    }
}

/// Construct a workload from its CLI/spec name, sized for `platform`.
/// The single source of truth for workload-name resolution, shared by
/// the `noiselab` binary and the sharded campaign workers — a worker
/// process must resolve "nbody" to exactly the instance the supervisor
/// fingerprinted. `*-small` names select the proportionally reduced
/// instances of [`small`]; `nbody-tiny` is a milliseconds-scale
/// instance for integration tests and chaos gates.
pub fn workload_by_name(
    platform: &Platform,
    name: &str,
) -> Option<Box<dyn noiselab_workloads::Workload + Sync>> {
    Some(match name {
        "nbody" => Box::new(nbody_for(platform)),
        "babelstream" => Box::new(babelstream_for(platform)),
        "minife" => Box::new(minife_for(platform)),
        "nbody-small" => Box::new(small::nbody_for(platform)),
        "babelstream-small" => Box::new(small::babelstream_for(platform)),
        "minife-small" => Box::new(small::minife_for(platform)),
        "nbody-tiny" => Box::new(NBody {
            bodies: 4_096,
            steps: 3,
            ..NBody::default()
        }),
        _ => return None,
    })
}

/// Names accepted by [`workload_by_name`], for error messages.
pub const WORKLOAD_NAMES: [&str; 7] = [
    "nbody",
    "babelstream",
    "minife",
    "nbody-small",
    "babelstream-small",
    "minife-small",
    "nbody-tiny",
];

/// Proportionally reduced instances for smoke-scale runs (~10x smaller),
/// preserving each workload's phase structure.
pub mod small {
    use super::*;

    pub fn nbody_for(platform: &Platform) -> NBody {
        let mut w = super::nbody_for(platform);
        w.bodies /= 4; // force cost scales quadratically -> ~16x faster
        w
    }

    pub fn babelstream_for(platform: &Platform) -> Babelstream {
        let mut w = super::babelstream_for(platform);
        w.elements /= 4;
        w.iterations = 25;
        w
    }

    pub fn minife_for(platform: &Platform) -> MiniFE {
        let mut w = super::minife_for(platform);
        w.nx = (w.nx * 6) / 10;
        w.cg_iterations = 60;
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amd_sizes_differ_from_intel() {
        let i = Platform::intel();
        let a = Platform::amd();
        assert!(nbody_for(&a).bodies > nbody_for(&i).bodies);
        assert!(babelstream_for(&a).elements < babelstream_for(&i).elements);
        assert_ne!(minife_for(&a).nx, minife_for(&i).nx);
    }

    #[test]
    fn small_instances_are_smaller() {
        let p = Platform::intel();
        assert!(small::nbody_for(&p).bodies < nbody_for(&p).bodies);
        assert!(small::minife_for(&p).cg_iterations < minife_for(&p).cg_iterations);
    }
}
