//! Figure 2: variability of the Babelstream `dot` kernel versus thread
//! count on the two A64FX systems. The paper's observation: without
//! reserved OS cores, variability explodes when all 48 cores are used
//! (no spare core can absorb OS interference).

use crate::execconfig::{ExecConfig, Mitigation, Model};
use crate::experiments::Scale;
use crate::harness::run_many;
use crate::platform::Platform;
use noiselab_stats::{percentile, Summary, TextTable};
use noiselab_workloads::Babelstream;

#[derive(Debug, Clone)]
pub struct ThreadPoint {
    pub threads: usize,
    pub median_ms: f64,
    pub p10_ms: f64,
    pub p90_ms: f64,
    pub sd_ms: f64,
}

#[derive(Debug, Clone)]
pub struct Fig2 {
    pub reserved: Vec<ThreadPoint>,
    pub unreserved: Vec<ThreadPoint>,
}

impl Fig2 {
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, points) in [
            ("A64FX:reserved", &self.reserved),
            ("A64FX:w/o", &self.unreserved),
        ] {
            let mut t = TextTable::new(format!("Figure 2: Babelstream dot on {name}")).header(&[
                "threads",
                "median(ms)",
                "p10(ms)",
                "p90(ms)",
                "s.d.(ms)",
            ]);
            for p in points {
                t.row(&[
                    p.threads.to_string(),
                    format!("{:.1}", p.median_ms),
                    format!("{:.1}", p.p10_ms),
                    format!("{:.1}", p.p90_ms),
                    format!("{:.2}", p.sd_ms),
                ]);
            }
            out.push_str(&t.render());
        }
        out
    }

    /// s.d. at the maximum thread count of each system.
    pub fn full_occupancy_sd(points: &[ThreadPoint]) -> f64 {
        points
            .iter()
            .max_by_key(|p| p.threads)
            .map(|p| p.sd_ms)
            .unwrap_or(0.0)
    }
}

fn measure(platform: &Platform, scale: Scale, small: bool, threads: &[usize]) -> Vec<ThreadPoint> {
    // ~0.2 s per run at full scale so anomaly windows overlap the
    // measurement (the dot kernel itself is very fast on HBM).
    let elements = if small { 1 << 21 } else { 33_554_432 };
    let iterations = if small { 20 } else { 200 };
    let bs = Babelstream::dot_only(elements, iterations);
    let mut points = Vec::new();
    for &n in threads {
        let cfg = ExecConfig::new(Model::Omp, Mitigation::Rm).with_threads(n);
        let ledger = run_many(platform, &bs, &cfg, scale.baseline_runs, 4_000, false, None);
        let secs = ledger.samples();
        for (seed, cause) in ledger.failures() {
            eprintln!("fig2: run seed {seed} failed ({cause}); excluded from spread");
        }
        let summary = Summary::of(&secs);
        points.push(ThreadPoint {
            threads: n,
            median_ms: percentile(&secs, 50.0) * 1e3,
            p10_ms: percentile(&secs, 10.0) * 1e3,
            p90_ms: percentile(&secs, 90.0) * 1e3,
            sd_ms: summary.sd * 1e3,
        });
    }
    points
}

/// Run the Figure 2 experiment.
pub fn run(scale: Scale, small: bool) -> Fig2 {
    let threads: &[usize] = if small {
        &[12, 48]
    } else {
        &[6, 12, 24, 36, 48]
    };
    let reserved = scale.boost(&Platform::a64fx(true));
    let unreserved = scale.boost(&Platform::a64fx(false));
    Fig2 {
        reserved: measure(&reserved, scale, small, threads),
        unreserved: measure(&unreserved, scale, small, threads),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_occupancy_picks_max_threads() {
        let mk = |threads, sd_ms| ThreadPoint {
            threads,
            median_ms: 0.0,
            p10_ms: 0.0,
            p90_ms: 0.0,
            sd_ms,
        };
        let pts = vec![mk(12, 1.0), mk(48, 9.0), mk(24, 2.0)];
        assert_eq!(Fig2::full_occupancy_sd(&pts), 9.0);
    }

    #[test]
    fn render_contains_thread_counts() {
        let p = ThreadPoint {
            threads: 48,
            median_ms: 5.0,
            p10_ms: 4.0,
            p90_ms: 9.0,
            sd_ms: 2.0,
        };
        let f = Fig2 {
            reserved: vec![p.clone()],
            unreserved: vec![p],
        };
        assert!(f.render().contains("48"));
    }
}
