//! Design-choice ablations.
//!
//! * **Merge strategy (§5.2)** — the paper found a worst-case trace
//!   whose configuration was compromised by the original pessimistic
//!   merge of overlapping events (all mitigation strategies performed
//!   identically; 25.74 % accuracy error), and fixed it by merging
//!   interrupt- and thread-based noise separately and boosting the
//!   priority of thread noise (5.70 %). [`merge_ablation`] reproduces
//!   the comparison.
//! * **Memory noise (§6/§7)** — CPU-occupation noise is absorbed by
//!   housekeeping cores, but bandwidth-consuming noise is not: the
//!   contended resource is the socket, not a CPU.
//!   [`memory_noise_ablation`] demonstrates the difference, motivating
//!   the paper's future-work extension.

use crate::execconfig::{ExecConfig, Mitigation, Model};
use crate::experiments::{suite, Scale};
use crate::harness::{run_baseline, run_injected};
use crate::platform::Platform;
use noiselab_injector::{generate, GeneratorOptions, MergeStrategy};
use noiselab_noise::{AnomalyKind, AnomalySpec};
use noiselab_sim::SimDuration;
use noiselab_stats::TextTable;
use noiselab_workloads::Workload;

/// Outcome of the merge-strategy ablation.
#[derive(Debug, Clone)]
pub struct MergeAblation {
    /// |avg/anomaly - 1| with the naive pessimistic merge.
    pub naive_accuracy: f64,
    /// Same with the improved merge.
    pub improved_accuracy: f64,
    /// Fraction of injected noise running under FIFO per strategy.
    pub naive_fifo_frac: f64,
    pub improved_fifo_frac: f64,
    /// Spread (max-min) of mean exec across mitigations per strategy —
    /// the compromised config flattens mitigation differences.
    pub naive_mitigation_spread: f64,
    pub improved_mitigation_spread: f64,
}

impl MergeAblation {
    pub fn render(&self) -> String {
        let mut t = TextTable::new("Ablation: overlap-merge strategy (paper §5.2)").header(&[
            "strategy",
            "accuracy",
            "FIFO share",
            "mitigation spread (s)",
        ]);
        t.row(&[
            "naive-pessimistic".to_string(),
            format!("{:.2}%", self.naive_accuracy * 100.0),
            format!("{:.0}%", self.naive_fifo_frac * 100.0),
            format!("{:.4}", self.naive_mitigation_spread),
        ]);
        t.row(&[
            "improved".to_string(),
            format!("{:.2}%", self.improved_accuracy * 100.0),
            format!("{:.0}%", self.improved_fifo_frac * 100.0),
            format!("{:.4}", self.improved_mitigation_spread),
        ]);
        let mut out = t.render();
        out.push_str("paper: compromised trace improved from 25.74% to 5.70%\n");
        out
    }
}

/// Run the merge-strategy ablation on the Intel platform with MiniFE
/// (its dense reductions give overlapping noise events).
///
/// The paper's compromised trace contained "large contiguous segments
/// of diverse noise" — thread storms overlapping an interrupt storm. To
/// reproduce that condition deterministically, trace collection forces
/// both a kworker storm and an IRQ storm in every run.
pub fn merge_ablation(scale: Scale, small: bool) -> MergeAblation {
    let platform = Platform::intel();
    let mut collection = platform.clone();
    collection.noise.force_all_anomalies = true;
    collection.noise.anomalies = vec![
        AnomalySpec {
            name: "ablation-kworker-storm".into(),
            kind: AnomalyKind::ThreadStorm {
                threads: 3,
                median_burst: SimDuration::from_millis(4),
                sigma: 0.5,
                mean_gap: SimDuration::from_micros(700),
            },
            window: (SimDuration::from_millis(250), SimDuration::from_millis(400)),
            start: (SimDuration::from_millis(10), SimDuration::from_millis(60)),
        },
        AnomalySpec {
            name: "ablation-irq-storm".into(),
            kind: AnomalyKind::IrqStorm {
                cpus: 4,
                mean_interval: SimDuration::from_micros(80),
                service: SimDuration::from_micros(8),
            },
            window: (SimDuration::from_millis(250), SimDuration::from_millis(400)),
            start: (SimDuration::from_millis(10), SimDuration::from_millis(60)),
        },
    ];
    let workload: Box<dyn Workload + Sync> = if small {
        Box::new(suite::small::minife_for(&platform))
    } else {
        Box::new(suite::minife_for(&platform))
    };
    let source = ExecConfig::new(Model::Omp, Mitigation::Rm);

    let traced = run_baseline(
        &collection,
        workload.as_ref(),
        &source,
        scale.traced_runs,
        77,
        true,
    );

    let eval = |merge: MergeStrategy| -> (f64, f64, f64) {
        let opts = GeneratorOptions {
            merge,
            ..GeneratorOptions::default()
        };
        let config = generate("merge-ablation", &traced.traces, &opts).expect("non-empty traces");
        let anomaly = config.anomaly_exec.as_secs_f64();
        let mut means = Vec::new();
        for (i, &mit) in Mitigation::ALL.iter().enumerate() {
            let cfg = ExecConfig::new(Model::Omp, mit);
            let s = run_injected(
                &platform,
                workload.as_ref(),
                &cfg,
                &config,
                scale.inject_runs,
                200_000 + i as u64 * 97,
            );
            means.push(s.summary.mean);
        }
        // Accuracy on the source configuration (Rm).
        let accuracy = (means[0] / anomaly - 1.0).abs();
        let spread = means.iter().cloned().fold(f64::MIN, f64::max)
            - means.iter().cloned().fold(f64::MAX, f64::min);
        (accuracy, config.fifo_fraction(), spread)
    };

    let (na, nf, ns) = eval(MergeStrategy::NaivePessimistic);
    let (ia, iff, is) = eval(MergeStrategy::Improved);
    MergeAblation {
        naive_accuracy: na,
        improved_accuracy: ia,
        naive_fifo_frac: nf,
        improved_fifo_frac: iff,
        naive_mitigation_spread: ns,
        improved_mitigation_spread: is,
    }
}

/// Outcome of the memory-noise ablation.
#[derive(Debug, Clone)]
pub struct MemoryNoiseAblation {
    /// Mean exec under a CPU-occupation storm: Rm vs RmHK2.
    pub cpu_rm: f64,
    pub cpu_hk2: f64,
    /// Mean exec under a memory-bandwidth hog: Rm vs RmHK2.
    pub mem_rm: f64,
    pub mem_hk2: f64,
}

impl MemoryNoiseAblation {
    /// Relative benefit of HK2 under each noise kind.
    pub fn cpu_gain(&self) -> f64 {
        1.0 - self.cpu_hk2 / self.cpu_rm
    }

    pub fn mem_gain(&self) -> f64 {
        1.0 - self.mem_hk2 / self.mem_rm
    }

    pub fn render(&self) -> String {
        let mut t =
            TextTable::new("Ablation: CPU-occupation vs memory-bandwidth noise (Babelstream)")
                .header(&["noise kind", "Rm (s)", "RmHK2 (s)", "HK2 benefit"]);
        t.row(&[
            "cpu storm".to_string(),
            format!("{:.3}", self.cpu_rm),
            format!("{:.3}", self.cpu_hk2),
            format!("{:+.1}%", self.cpu_gain() * 100.0),
        ]);
        t.row(&[
            "memory hog".to_string(),
            format!("{:.3}", self.mem_rm),
            format!("{:.3}", self.mem_hk2),
            format!("{:+.1}%", self.mem_gain() * 100.0),
        ]);
        let mut out = t.render();
        out.push_str(
            "expected: housekeeping absorbs CPU noise but not bandwidth noise (paper §6)\n",
        );
        out
    }
}

/// Compare housekeeping effectiveness against CPU vs memory noise.
pub fn memory_noise_ablation(scale: Scale, small: bool) -> MemoryNoiseAblation {
    let base = Platform::intel();
    let workload: Box<dyn Workload + Sync> = if small {
        Box::new(suite::small::babelstream_for(&base))
    } else {
        Box::new(suite::babelstream_for(&base))
    };

    // The CPU-occupation arm uses FIFO-class stalls (an interrupt
    // flood): a CFS thread storm barely hurts a bandwidth-saturated
    // workload, but stalling cores outright blocks every per-iteration
    // barrier. Housekeeping helps because stalled workload threads can
    // escape to the free cores.
    let storm = AnomalySpec {
        name: "ablation-cpu-storm".into(),
        kind: AnomalyKind::IrqStorm {
            cpus: 2,
            mean_interval: SimDuration::from_micros(55),
            service: SimDuration::from_micros(50),
        },
        window: (
            SimDuration::from_millis(1_200),
            SimDuration::from_millis(1_201),
        ),
        start: (SimDuration::from_millis(10), SimDuration::from_millis(11)),
    };
    let memhog = AnomalySpec {
        name: "ablation-memhog".into(),
        kind: AnomalyKind::MemoryHog {
            threads: 3,
            bytes_per_burst: 4_000_000.0,
        },
        window: (
            SimDuration::from_millis(1_200),
            SimDuration::from_millis(1_201),
        ),
        start: (SimDuration::from_millis(10), SimDuration::from_millis(11)),
    };

    let measure = |anomaly: &AnomalySpec, mit: Mitigation| -> f64 {
        let mut p = base.clone();
        p.noise.anomaly_prob = 1.0;
        p.noise.anomalies = vec![anomaly.clone()];
        let cfg = ExecConfig::new(Model::Omp, mit);
        let b = run_baseline(
            &p,
            workload.as_ref(),
            &cfg,
            scale.inject_runs,
            12_345,
            false,
        );
        b.summary.mean
    };

    MemoryNoiseAblation {
        cpu_rm: measure(&storm, Mitigation::Rm),
        cpu_hk2: measure(&storm, Mitigation::RmHK2),
        mem_rm: measure(&memhog, Mitigation::Rm),
        mem_hk2: measure(&memhog, Mitigation::RmHK2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_shapes() {
        let m = MergeAblation {
            naive_accuracy: 0.25,
            improved_accuracy: 0.05,
            naive_fifo_frac: 0.9,
            improved_fifo_frac: 0.2,
            naive_mitigation_spread: 0.01,
            improved_mitigation_spread: 0.2,
        };
        assert!(m.render().contains("naive-pessimistic"));

        let a = MemoryNoiseAblation {
            cpu_rm: 1.2,
            cpu_hk2: 1.0,
            mem_rm: 1.3,
            mem_hk2: 1.28,
        };
        assert!(a.cpu_gain() > a.mem_gain());
        assert!(a.render().contains("memory hog"));
    }
}
