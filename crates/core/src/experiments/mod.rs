//! Per-table experiment definitions (the evaluation section of the
//! paper). Each submodule regenerates one table or figure; the bench
//! harness in `noiselab-bench` runs them and prints the result next to
//! the paper's numbers.

pub mod ablation;
pub mod fig1;
pub mod fig2;
pub mod inject;
pub mod numa;
pub mod runlevel;
pub mod suite;
pub mod table1;
pub mod table2;
pub mod table6;
pub mod table7;

use crate::platform::Platform;

/// Replication counts. The paper uses 1000 baseline and 200 injection
/// repetitions; on a single-CPU simulation host the default bench scale
/// trades statistical resolution for runtime while keeping the pipeline
/// identical. `NOISELAB_SCALE=smoke|bench|paper` selects at runtime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    /// Traced baseline runs per trace collection (paper: 1000).
    pub traced_runs: usize,
    /// Untraced baseline runs per configuration cell (paper: 1000).
    pub baseline_runs: usize,
    /// Injection runs per cell (paper: 200).
    pub inject_runs: usize,
    /// Multiplier on the natural anomaly probability, so small trace
    /// collections still contain a worst-case outlier (the paper's 1000
    /// runs catch anomalies at natural rates).
    pub anomaly_boost: f64,
}

impl Scale {
    /// Minimal scale for integration tests.
    pub fn smoke() -> Scale {
        Scale {
            traced_runs: 10,
            baseline_runs: 8,
            inject_runs: 5,
            anomaly_boost: 30.0,
        }
    }

    /// Default scale for `cargo bench`.
    pub fn bench() -> Scale {
        Scale {
            traced_runs: 30,
            baseline_runs: 20,
            inject_runs: 12,
            anomaly_boost: 10.0,
        }
    }

    /// The paper's replication counts.
    pub fn paper() -> Scale {
        Scale {
            traced_runs: 1000,
            baseline_runs: 1000,
            inject_runs: 200,
            anomaly_boost: 1.0,
        }
    }

    /// Scale selected by `NOISELAB_SCALE` (default: bench).
    pub fn from_env() -> Scale {
        match std::env::var("NOISELAB_SCALE").as_deref() {
            Ok("smoke") => Scale::smoke(),
            Ok("paper") => Scale::paper(),
            _ => Scale::bench(),
        }
    }

    /// Apply the anomaly boost to a platform's noise profile.
    pub fn boost(&self, platform: &Platform) -> Platform {
        let mut p = platform.clone();
        p.noise.anomaly_prob = (p.noise.anomaly_prob * self.anomaly_boost).min(0.5);
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boost_caps_probability() {
        let s = Scale {
            anomaly_boost: 1000.0,
            ..Scale::smoke()
        };
        let p = s.boost(&Platform::intel());
        assert!(p.noise.anomaly_prob <= 0.5);
    }

    #[test]
    fn paper_scale_matches_paper() {
        let p = Scale::paper();
        assert_eq!(p.traced_runs, 1000);
        assert_eq!(p.inject_runs, 200);
        assert_eq!(p.anomaly_boost, 1.0);
    }
}
