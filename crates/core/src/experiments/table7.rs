//! Table 7: absolute replication accuracy of the noise injector for
//! each of the ten worst-case traces, computed from the accuracy
//! records of the Tables 3-5 runs.

use crate::experiments::inject::AccuracyRecord;
use noiselab_stats::TextTable;

#[derive(Debug, Clone)]
pub struct Table7 {
    pub records: Vec<AccuracyRecord>,
}

impl Table7 {
    pub fn from_tables(tables: &[crate::experiments::inject::InjectionTable]) -> Table7 {
        Table7 {
            records: tables.iter().flat_map(|t| t.accuracy.clone()).collect(),
        }
    }

    /// Mean absolute accuracy (the paper reports 8.57 %).
    pub fn mean_abs(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().map(|r| r.error.abs()).sum::<f64>() / self.records.len() as f64
    }

    pub fn render(&self) -> String {
        let mut t = TextTable::new("Table 7: absolute accuracy of noise injection per trace")
            .header(&["Benchmark", "Config", "Accuracy"]);
        for r in &self.records {
            let sign = if r.error < 0.0 { "(-)" } else { "" };
            t.row(&[
                r.workload.to_string(),
                r.config_label.clone(),
                format!("{sign}{:.2}%", r.error.abs() * 100.0),
            ]);
        }
        let mut out = t.render();
        out.push_str(&format!(
            "Average absolute accuracy: {:.2}% (paper: 8.57%)\n",
            self.mean_abs() * 100.0
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_abs_uses_absolute_values() {
        let t = Table7 {
            records: vec![
                AccuracyRecord {
                    workload: "N-body".into(),
                    config_label: "Rm-OMP".into(),
                    error: 0.04,
                },
                AccuracyRecord {
                    workload: "Babelstream".into(),
                    config_label: "TP-OMP".into(),
                    error: -0.16,
                },
            ],
        };
        assert!((t.mean_abs() - 0.10).abs() < 1e-12);
        let s = t.render();
        assert!(s.contains("(-)16.00%"));
        assert!(s.contains("4.00%"));
    }

    #[test]
    fn empty_records_render() {
        let t = Table7 { records: vec![] };
        assert_eq!(t.mean_abs(), 0.0);
        assert!(t.render().contains("Average absolute accuracy"));
    }
}
