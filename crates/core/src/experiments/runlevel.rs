//! The runlevel-3 check of §5.1: the paper re-executed the baseline
//! experiments with the GUI disabled (Linux runlevel 3) to rule out
//! GUI-induced noise as the cause of the observed trends — variability
//! generally dropped, but the relative ordering of mitigations was
//! unchanged.

use crate::execconfig::{ExecConfig, Mitigation, Model};
use crate::experiments::{suite, Scale};
use crate::harness::run_baseline;
use crate::platform::Platform;
use noiselab_stats::TextTable;
use noiselab_workloads::Workload;

#[derive(Debug, Clone)]
pub struct RunlevelRow {
    pub mitigation: Mitigation,
    pub sd_rl5_ms: f64,
    pub sd_rl3_ms: f64,
}

#[derive(Debug, Clone)]
pub struct RunlevelComparison {
    pub rows: Vec<RunlevelRow>,
}

impl RunlevelComparison {
    pub fn render(&self) -> String {
        let mut t = TextTable::new("Runlevel 5 vs 3: baseline s.d. (ms), N-body OMP on Intel")
            .header(&["config", "runlevel 5 (GUI)", "runlevel 3"]);
        for r in &self.rows {
            t.row(&[
                r.mitigation.label().to_string(),
                format!("{:.2}", r.sd_rl5_ms),
                format!("{:.2}", r.sd_rl3_ms),
            ]);
        }
        let mut out = t.render();
        out.push_str(&format!(
            "average s.d.: runlevel 5 {:.2} ms vs runlevel 3 {:.2} ms (paper: \
             disabling the GUI generally reduced variability; trends unchanged)\n",
            self.avg_rl5(),
            self.avg_rl3()
        ));
        out
    }

    pub fn avg_rl5(&self) -> f64 {
        self.rows.iter().map(|r| r.sd_rl5_ms).sum::<f64>() / self.rows.len().max(1) as f64
    }

    pub fn avg_rl3(&self) -> f64 {
        self.rows.iter().map(|r| r.sd_rl3_ms).sum::<f64>() / self.rows.len().max(1) as f64
    }
}

/// Compare baseline variability with the GUI stack active vs disabled.
pub fn run(scale: Scale, small: bool) -> RunlevelComparison {
    let rl5 = Platform::intel();
    let rl3 = Platform::intel().runlevel3();
    let workload: Box<dyn Workload + Sync> = if small {
        Box::new(suite::small::nbody_for(&rl5))
    } else {
        Box::new(suite::nbody_for(&rl5))
    };

    let mut rows = Vec::new();
    for mit in Mitigation::ALL {
        let cfg = ExecConfig::new(Model::Omp, mit);
        let b5 = run_baseline(
            &rl5,
            workload.as_ref(),
            &cfg,
            scale.baseline_runs,
            4_500,
            false,
        );
        let b3 = run_baseline(
            &rl3,
            workload.as_ref(),
            &cfg,
            scale.baseline_runs,
            4_500,
            false,
        );
        rows.push(RunlevelRow {
            mitigation: mit,
            sd_rl5_ms: b5.summary.sd * 1e3,
            sd_rl3_ms: b3.summary.sd * 1e3,
        });
    }
    RunlevelComparison { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_shape() {
        let c = RunlevelComparison {
            rows: vec![RunlevelRow {
                mitigation: Mitigation::Rm,
                sd_rl5_ms: 7.0,
                sd_rl3_ms: 5.0,
            }],
        };
        let s = c.render();
        assert!(s.contains("runlevel 3"));
        assert_eq!(c.avg_rl5(), 7.0);
    }
}
