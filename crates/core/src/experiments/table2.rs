//! Table 2: average run-to-run standard deviation (ms) of baseline
//! executions, per mitigation configuration and programming model,
//! averaged across the evaluated workloads and platforms.

use crate::execconfig::{ExecConfig, Mitigation, Model};
use crate::experiments::{suite, Scale};
use crate::harness::run_baseline;
use crate::platform::Platform;
use noiselab_stats::TextTable;
use noiselab_workloads::Workload;

#[derive(Debug, Clone)]
pub struct Table2 {
    /// `sd_ms[model][mitigation]`, averaged across workloads/platforms.
    pub omp: [f64; 6],
    pub sycl: [f64; 6],
}

impl Table2 {
    pub fn render(&self) -> String {
        let mut t = TextTable::new("Table 2: average s.d. (ms) in baseline executions")
            .header(&["", "Rm", "RmHK", "RmHK2", "TP", "TPHK", "TPHK2"]);
        let fmt = |xs: &[f64; 6]| xs.iter().map(|x| format!("{x:.2}")).collect::<Vec<_>>();
        let mut row = vec!["OMP".to_string()];
        row.extend(fmt(&self.omp));
        t.row(&row);
        let mut row = vec!["SYCL".to_string()];
        row.extend(fmt(&self.sycl));
        t.row(&row);
        t.render()
    }

    pub fn of(&self, model: Model, m: Mitigation) -> f64 {
        let idx = Mitigation::ALL.iter().position(|&x| x == m).unwrap();
        match model {
            Model::Omp => self.omp[idx],
            Model::Sycl => self.sycl[idx],
        }
    }
}

/// Run the baseline-variability experiment.
pub fn run(scale: Scale) -> Table2 {
    let platforms = [Platform::intel(), Platform::amd()];
    let mut omp_acc = [0.0f64; 6];
    let mut sycl_acc = [0.0f64; 6];
    let mut cells = 0usize;

    for platform in &platforms {
        // No anomaly boost here: baseline variability is measured under
        // natural conditions (the boost exists only so small trace
        // collections still catch a worst case).
        let platform = platform.clone();
        let workloads: Vec<Box<dyn Workload + Sync>> = vec![
            Box::new(suite::nbody_for(&platform)),
            Box::new(suite::babelstream_for(&platform)),
            Box::new(suite::minife_for(&platform)),
        ];
        for (wi, w) in workloads.iter().enumerate() {
            for (mi, &mit) in Mitigation::ALL.iter().enumerate() {
                for model in [Model::Omp, Model::Sycl] {
                    let cfg = ExecConfig::new(model, mit);
                    // Seeds vary per workload and model (independent
                    // anomaly dice) but are shared across mitigations
                    // (paired columns).
                    let seed =
                        9_000 + 10_000 * wi as u64 + 100_000 * matches!(model, Model::Sycl) as u64;
                    let base = run_baseline(
                        &platform,
                        w.as_ref(),
                        &cfg,
                        scale.baseline_runs,
                        seed,
                        false,
                    );
                    let sd_ms = base.summary.sd * 1e3;
                    match model {
                        Model::Omp => omp_acc[mi] += sd_ms,
                        Model::Sycl => sycl_acc[mi] += sd_ms,
                    }
                }
            }
            cells += 1;
        }
    }
    let n = cells as f64;
    Table2 {
        omp: omp_acc.map(|x| x / n),
        sycl: sycl_acc.map(|x| x / n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_has_all_columns() {
        let t = Table2 {
            omp: [7.8, 6.0, 10.0, 5.9, 7.5, 8.7],
            sycl: [7.2, 7.8, 5.6, 6.8, 7.6, 5.4],
        };
        let s = t.render();
        assert!(s.contains("RmHK2"));
        assert!(s.contains("7.80"));
        assert_eq!(t.of(Model::Sycl, Mitigation::TpHK2), 5.4);
    }
}
