//! NUMA extension experiment (paper §5.1/§6 future work).
//!
//! The paper repeatedly notes that its desktop results understate the
//! value of thread pinning: on large multi-domain systems, migrations
//! cross NUMA boundaries and cost far more, so prior HPC work found
//! pinning highly beneficial. This experiment validates that the
//! simulated kernel reproduces the crossover: on a 128-core, 8-domain
//! machine, roaming threads under noise pay remote-migration penalties
//! that pinned threads avoid.

use crate::execconfig::{ExecConfig, Mitigation, Model};
use crate::platform::Platform;
use noiselab_machine::Machine;
use noiselab_noise::{AnomalyKind, AnomalySpec, NoiseProfile};
use noiselab_sim::SimDuration;
use noiselab_stats::TextTable;
use noiselab_workloads::{NBody, Workload};

/// The NUMA evaluation platform: a 128-core, 8-domain node with an HPC
/// noise profile plus frequent kworker churn (the trigger for
/// migrations).
pub fn numa_platform() -> Platform {
    let mut noise = NoiseProfile::hpc(None);
    noise.anomaly_prob = 0.5;
    noise.anomalies = vec![AnomalySpec {
        name: "node-daemon-burst".into(),
        kind: AnomalyKind::ThreadStorm {
            threads: 12,
            median_burst: SimDuration::from_millis(2),
            sigma: 0.6,
            mean_gap: SimDuration::from_micros(700),
        },
        window: (SimDuration::from_millis(50), SimDuration::from_millis(300)),
        start: (SimDuration::from_millis(2), SimDuration::from_millis(10)),
    }];
    Platform {
        machine: Machine::epyc_numa(),
        noise,
        run_jitter_sd: 0.001,
    }
}

#[derive(Debug, Clone)]
pub struct NumaRow {
    pub label: String,
    pub mean: f64,
    pub sd_ms: f64,
    pub migrations: f64,
    pub numa_migrations: f64,
}

#[derive(Debug, Clone)]
pub struct NumaComparison {
    pub rows: Vec<NumaRow>,
}

impl NumaComparison {
    pub fn render(&self) -> String {
        let mut t =
            TextTable::new("NUMA extension: N-body on a 128-core 8-domain node under node noise")
                .header(&[
                    "config",
                    "mean (s)",
                    "s.d. (ms)",
                    "migr/run",
                    "cross-NUMA/run",
                ]);
        for r in &self.rows {
            t.row(&[
                r.label.clone(),
                format!("{:.4}", r.mean),
                format!("{:.2}", r.sd_ms),
                format!("{:.0}", r.migrations),
                format!("{:.0}", r.numa_migrations),
            ]);
        }
        let mut out = t.render();
        out.push_str(
            "expected: TP eliminates cross-NUMA migrations; Rm pays them under noise\n\
             (the paper's §5.1/§6 explanation of why pinning matters on HPC systems)\n",
        );
        out
    }

    pub fn row(&self, label: &str) -> Option<&NumaRow> {
        self.rows.iter().find(|r| r.label == label)
    }
}

/// Run the comparison. `runs` baseline repetitions per configuration.
pub fn run(runs: usize, small: bool) -> NumaComparison {
    let platform = numa_platform();
    let workload = if small {
        NBody {
            bodies: 48_000,
            steps: 3,
            sycl_kernel_efficiency: 1.3,
        }
    } else {
        NBody {
            bodies: 120_000,
            steps: 5,
            sycl_kernel_efficiency: 1.3,
        }
    };

    let mut rows = Vec::new();
    for (label, mitigation) in [("Rm-OMP", Mitigation::Rm), ("TP-OMP", Mitigation::Tp)] {
        let cfg = ExecConfig::new(Model::Omp, mitigation);
        let ledger =
            crate::harness::run_many(&platform, &workload, &cfg, runs, 77_000, false, None);
        let secs = ledger.samples();
        for (seed, cause) in ledger.failures() {
            eprintln!("numa: run seed {seed} failed ({cause}); excluded from comparison");
        }
        let summary = noiselab_stats::Summary::of(&secs);
        // Migration counts need kernel introspection; probe a few seeds
        // with counters via the dedicated probe below.
        let probes = 3.min(runs) as u64;
        let (mut migr, mut numa) = (0.0, 0.0);
        for s in 0..probes {
            let (m, n) = migration_probe(&platform, &workload, &cfg, 77_000 + s);
            migr += m;
            numa += n;
        }
        migr /= probes as f64;
        numa /= probes as f64;
        rows.push(NumaRow {
            label: label.to_string(),
            mean: summary.mean,
            sd_ms: summary.sd * 1e3,
            migrations: migr,
            numa_migrations: numa,
        });
    }
    NumaComparison { rows }
}

/// Run one seed and count workload-thread migrations.
fn migration_probe(
    platform: &Platform,
    workload: &dyn Workload,
    cfg: &ExecConfig,
    seed: u64,
) -> (f64, f64) {
    use noiselab_kernel::{Kernel, KernelConfig};
    use noiselab_runtime::omp;
    use noiselab_sim::{Rng, SimTime};

    let machine = platform.machine.clone();
    let mut kernel = Kernel::new(machine.clone(), KernelConfig::default(), seed);
    let mut noise_rng = Rng::new(seed ^ 0xA5A5_5A5A_0F0F_F0F0);
    noiselab_noise::install(&mut kernel, &platform.noise, &mut noise_rng);
    let nthreads = cfg.nthreads(&machine);
    let affinities = cfg.affinities(&machine);
    let program = workload.omp_program(nthreads, cfg.schedule);
    let mut opts = omp::OmpLaunch::new(nthreads, affinities[0]);
    if affinities.len() > 1 {
        opts = omp::OmpLaunch::pinned(nthreads, affinities);
    }
    let team = omp::launch(&mut kernel, program, opts);
    for w in &team.workers {
        if let Err(e) = kernel.run_until_exit(*w, SimTime::from_secs_f64(600.0)) {
            // A failed probe contributes zero counts rather than killing
            // the whole comparison; the main measurement is unaffected.
            eprintln!("numa: migration probe seed {seed} failed ({e:?}); counting zero");
            return (0.0, 0.0);
        }
    }
    let (mut migr, mut numa) = (0u64, 0u64);
    for w in &team.workers {
        migr += kernel.thread(*w).stats.migrations;
        numa += kernel.thread(*w).stats.numa_migrations;
    }
    (migr as f64, numa as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_is_numa() {
        let p = numa_platform();
        assert_eq!(p.machine.numa_domains, 8);
        assert_eq!(p.machine.cores, 128);
        use noiselab_machine::CpuId;
        assert_eq!(p.machine.domain_of(CpuId(0)), 0);
        assert_eq!(p.machine.domain_of(CpuId(127)), 7);
        assert!(!p.machine.same_domain(CpuId(0), CpuId(127)));
        assert!(p.machine.same_domain(CpuId(0), CpuId(15)));
    }

    #[test]
    fn pinning_eliminates_cross_numa_migrations() {
        let cmp = run(4, true);
        let rm = cmp.row("Rm-OMP").unwrap();
        let tp = cmp.row("TP-OMP").unwrap();
        assert_eq!(tp.migrations, 0.0, "pinned threads must not migrate");
        assert_eq!(tp.numa_migrations, 0.0);
        assert!(
            rm.migrations > 0.0,
            "roaming threads should migrate under node noise"
        );
        assert!(cmp.render().contains("cross-NUMA"));
    }
}
