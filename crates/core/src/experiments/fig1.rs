//! Figure 1: schedbench execution-time variability on the two A64FX
//! systems — with firmware-reserved OS cores (BSC) and without (MACC) —
//! across schedule methods (st/dy/gd) and chunk sizes.
//!
//! The figure is rendered as a spread table (median, p10-p90 band,
//! s.d.) per x-axis label; the paper's claim is that the unreserved
//! system shows far larger spreads.

use crate::execconfig::{ExecConfig, Mitigation, Model};
use crate::experiments::Scale;
use crate::platform::Platform;
use noiselab_stats::{percentile, TextTable};
use noiselab_workloads::SchedBench;

#[derive(Debug, Clone)]
pub struct SpreadPoint {
    pub label: String,
    pub median_ms: f64,
    pub p10_ms: f64,
    pub p90_ms: f64,
    pub sd_ms: f64,
}

#[derive(Debug, Clone)]
pub struct Fig1 {
    pub reserved: Vec<SpreadPoint>,
    pub unreserved: Vec<SpreadPoint>,
}

impl Fig1 {
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, points) in [
            ("A64FX:reserved", &self.reserved),
            ("A64FX:w/o", &self.unreserved),
        ] {
            let mut t = TextTable::new(format!("Figure 1: schedbench on {name}")).header(&[
                "sched",
                "median(ms)",
                "p10(ms)",
                "p90(ms)",
                "s.d.(ms)",
            ]);
            for p in points {
                t.row(&[
                    p.label.clone(),
                    format!("{:.1}", p.median_ms),
                    format!("{:.1}", p.p10_ms),
                    format!("{:.1}", p.p90_ms),
                    format!("{:.2}", p.sd_ms),
                ]);
            }
            out.push_str(&t.render());
        }
        // Headline comparison.
        let avg =
            |ps: &[SpreadPoint]| ps.iter().map(|p| p.sd_ms).sum::<f64>() / ps.len().max(1) as f64;
        out.push_str(&format!(
            "average s.d.: reserved {:.2} ms vs w/o {:.2} ms\n",
            avg(&self.reserved),
            avg(&self.unreserved)
        ));
        out
    }

    pub fn avg_sd(points: &[SpreadPoint]) -> f64 {
        points.iter().map(|p| p.sd_ms).sum::<f64>() / points.len().max(1) as f64
    }
}

fn measure(platform: &Platform, scale: Scale, small: bool) -> Vec<SpreadPoint> {
    let mut points = Vec::new();
    for (label, schedule) in SchedBench::figure1_configs() {
        let mut sb = SchedBench::with_schedule(schedule);
        if small {
            sb.repeats = 10;
            sb.items = 4_096;
        } else {
            // ~0.3 s per run on the A64FX, long enough for anomaly
            // windows to overlap the measurement.
            sb.repeats = 200;
        }
        let cfg = ExecConfig::new(Model::Omp, Mitigation::Rm).with_schedule(schedule);
        let ledger =
            crate::harness::run_many(platform, &sb, &cfg, scale.baseline_runs, 3_000, false, None);
        let secs = ledger.samples();
        for (seed, cause) in ledger.failures() {
            eprintln!("fig1: run seed {seed} failed ({cause}); excluded from spread");
        }
        let summary = noiselab_stats::Summary::of(&secs);
        points.push(SpreadPoint {
            label,
            median_ms: percentile(&secs, 50.0) * 1e3,
            p10_ms: percentile(&secs, 10.0) * 1e3,
            p90_ms: percentile(&secs, 90.0) * 1e3,
            sd_ms: summary.sd * 1e3,
        });
    }
    points
}

/// Run the Figure 1 experiment.
pub fn run(scale: Scale, small: bool) -> Fig1 {
    let reserved = scale.boost(&Platform::a64fx(true));
    let unreserved = scale.boost(&Platform::a64fx(false));
    Fig1 {
        reserved: measure(&reserved, scale, small),
        unreserved: measure(&unreserved, scale, small),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_lists_nine_configs_per_system() {
        let p = SpreadPoint {
            label: "st:1".into(),
            median_ms: 100.0,
            p10_ms: 99.0,
            p90_ms: 105.0,
            sd_ms: 2.0,
        };
        let f = Fig1 {
            reserved: vec![p.clone()],
            unreserved: vec![p],
        };
        let s = f.render();
        assert!(s.contains("A64FX:reserved"));
        assert!(s.contains("A64FX:w/o"));
        assert!(s.contains("st:1"));
    }
}
