//! Table 6: average relative performance change (%) under noise
//! injection, per programming model and mitigation, aggregated over the
//! rows of Tables 3-5.

use crate::execconfig::{Mitigation, Model};
use crate::experiments::inject::InjectionTable;
use noiselab_stats::TextTable;

#[derive(Debug, Clone)]
pub struct Table6 {
    pub omp: [f64; 6],
    pub sycl: [f64; 6],
}

impl Table6 {
    /// Aggregate from the outcomes of Tables 3-5.
    pub fn aggregate(tables: &[InjectionTable]) -> Table6 {
        let mut sums = [[0.0f64; 6]; 2];
        let mut counts = [[0usize; 6]; 2];
        for t in tables {
            for (model, mit, pct) in t.pct_samples() {
                let m = match model {
                    Model::Omp => 0,
                    Model::Sycl => 1,
                };
                let i = Mitigation::ALL.iter().position(|&x| x == mit).unwrap();
                sums[m][i] += pct * 100.0;
                counts[m][i] += 1;
            }
        }
        let avg = |m: usize| {
            let mut out = [0.0; 6];
            for i in 0..6 {
                if counts[m][i] > 0 {
                    out[i] = sums[m][i] / counts[m][i] as f64;
                }
            }
            out
        };
        Table6 {
            omp: avg(0),
            sycl: avg(1),
        }
    }

    /// The paper's headline: SYCL's average improvement over OMP in
    /// percentage points, averaged over the six mitigation columns.
    pub fn sycl_advantage_points(&self) -> f64 {
        let o: f64 = self.omp.iter().sum::<f64>() / 6.0;
        let s: f64 = self.sycl.iter().sum::<f64>() / 6.0;
        o - s
    }

    pub fn render(&self) -> String {
        let mut t =
            TextTable::new("Table 6: average relative performance change (%) under injection")
                .header(&["", "Rm", "RmHK", "RmHK2", "TP", "TPHK", "TPHK2"]);
        let fmt = |xs: &[f64; 6]| xs.iter().map(|x| format!("{x:.2}")).collect::<Vec<_>>();
        let mut row = vec!["OMP".to_string()];
        row.extend(fmt(&self.omp));
        t.row(&row);
        let mut row = vec!["SYCL".to_string()];
        row.extend(fmt(&self.sycl));
        t.row(&row);
        let mut out = t.render();
        out.push_str(&format!(
            "SYCL average improvement: {:.2} percentage points (paper: 16.82)\n",
            self.sycl_advantage_points()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::inject::{Block, Cell, RowResult, WorkloadKind};

    fn table_with(model: Model, pcts: [f64; 6]) -> InjectionTable {
        let cells = pcts.map(|p| Cell {
            base_mean: 1.0,
            inj_mean: 1.0 + p,
        });
        InjectionTable {
            title: "t".into(),
            workload: WorkloadKind::NBody,
            failed_runs: 0,
            blocks: vec![Block {
                platform: "p".into(),
                rows: vec![RowResult {
                    label: "r".into(),
                    model,
                    smt: false,
                    trace: 0,
                    cells,
                }],
            }],
            accuracy: vec![],
        }
    }

    #[test]
    fn aggregates_means_per_model() {
        let t1 = table_with(Model::Omp, [0.4, 0.2, 0.1, 0.5, 0.3, 0.2]);
        let t2 = table_with(Model::Omp, [0.2, 0.0, 0.1, 0.3, 0.1, 0.2]);
        let t3 = table_with(Model::Sycl, [0.2, 0.1, 0.1, 0.2, 0.1, 0.1]);
        let agg = Table6::aggregate(&[t1, t2, t3]);
        assert!((agg.omp[0] - 30.0).abs() < 1e-9);
        assert!((agg.sycl[0] - 20.0).abs() < 1e-9);
        assert!(agg.sycl_advantage_points() > 0.0);
    }

    #[test]
    fn render_contains_headline() {
        let t = table_with(Model::Omp, [0.1; 6]);
        let agg = Table6::aggregate(&[t]);
        assert!(agg.render().contains("SYCL average improvement"));
    }
}
