//! The injection experiment engine behind Tables 3, 4 and 5 (and, by
//! aggregation, Tables 6 and 7).
//!
//! For each platform a table uses a set of worst-case *trace sources*:
//! configurations whose traced baseline runs supply the worst-case
//! execution the injector replays. Following the provenance the paper
//! gives in Table 7, ten configurations are used in total — six
//! collected on Intel, four on AMD, all but two from OpenMP runs.
//! Configuration "#k" in a row label names the k-th trace source of
//! that platform block.
//!
//! Per (row, mitigation) cell the engine reports the mean injected
//! execution time and its change relative to the same configuration's
//! un-injected baseline — exactly the two numbers per cell in the
//! paper's Tables 3-5.

use crate::execconfig::{ExecConfig, Mitigation, Model};
use crate::experiments::{suite, Scale};
use crate::harness::{run_baseline, run_injected};
use crate::platform::Platform;
use noiselab_injector::{generate, GeneratorOptions, InjectionConfig};
use noiselab_stats::{fmt_pct, fmt_secs, TextTable};
use noiselab_workloads::Workload;
use std::collections::BTreeMap;

/// A configuration whose traced runs supply a worst-case trace.
#[derive(Debug, Clone)]
pub struct TraceSource {
    /// Table-7-style label, e.g. `Rm-OMP`, `TPHK-SMT-OMP`.
    pub label: String,
    pub cfg: ExecConfig,
}

impl TraceSource {
    pub fn new(model: Model, mitigation: Mitigation, smt: bool) -> TraceSource {
        let mut cfg = ExecConfig::new(model, mitigation);
        if smt {
            cfg = cfg.with_smt();
        }
        // Paper-style label: mitigation[-SMT]-model.
        let mut label = mitigation.label().to_string();
        if smt {
            label.push_str("-SMT");
        }
        label.push('-');
        label.push_str(model.label());
        TraceSource { label, cfg }
    }
}

/// One row of a table: a model (+SMT) injected with trace `#trace+1`.
#[derive(Debug, Clone)]
pub struct RowSpec {
    pub model: Model,
    pub smt: bool,
    pub trace: usize,
}

impl RowSpec {
    pub fn label(&self) -> String {
        let mut s = self.model.label().to_string();
        if self.smt {
            s.push_str(" SMT");
        }
        s.push_str(&format!(" #{}", self.trace + 1));
        s
    }
}

/// The experiment plan for one platform block.
#[derive(Debug, Clone)]
pub struct PlatformSpec {
    pub platform: Platform,
    pub traces: Vec<TraceSource>,
    pub rows: Vec<RowSpec>,
}

/// Which workload the table evaluates (sized per platform by
/// [`suite`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum WorkloadKind {
    NBody,
    Babelstream,
    MiniFE,
}

impl WorkloadKind {
    fn instantiate(self, platform: &Platform, small: bool) -> Box<dyn Workload + Sync> {
        match (self, small) {
            (WorkloadKind::NBody, false) => Box::new(suite::nbody_for(platform)),
            (WorkloadKind::NBody, true) => Box::new(suite::small::nbody_for(platform)),
            (WorkloadKind::Babelstream, false) => Box::new(suite::babelstream_for(platform)),
            (WorkloadKind::Babelstream, true) => Box::new(suite::small::babelstream_for(platform)),
            (WorkloadKind::MiniFE, false) => Box::new(suite::minife_for(platform)),
            (WorkloadKind::MiniFE, true) => Box::new(suite::small::minife_for(platform)),
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::NBody => "N-body",
            WorkloadKind::Babelstream => "Babelstream",
            WorkloadKind::MiniFE => "MiniFE",
        }
    }
}

/// A full table plan.
#[derive(Debug, Clone)]
pub struct TableSpec {
    pub title: String,
    pub workload: WorkloadKind,
    pub platforms: Vec<PlatformSpec>,
}

/// One cell: baseline vs injected means (seconds).
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct Cell {
    pub base_mean: f64,
    pub inj_mean: f64,
}

impl Cell {
    pub fn pct(&self) -> f64 {
        self.inj_mean / self.base_mean - 1.0
    }
}

#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct RowResult {
    pub label: String,
    pub model: Model,
    pub smt: bool,
    pub trace: usize,
    /// One cell per mitigation, in [`Mitigation::ALL`] order.
    pub cells: [Cell; 6],
}

#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Block {
    pub platform: String,
    pub rows: Vec<RowResult>,
}

/// Accuracy sample for Table 7: the injected mean of the trace's source
/// configuration vs the anomaly execution time it replays.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct AccuracyRecord {
    pub workload: String,
    pub config_label: String,
    /// Signed replication error (`avg/anomaly - 1`).
    pub error: f64,
}

#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct InjectionTable {
    pub title: String,
    pub workload: WorkloadKind,
    pub blocks: Vec<Block>,
    pub accuracy: Vec<AccuracyRecord>,
    /// Runs across all stages that produced no measurement (absent in
    /// reports produced before fault tracking existed).
    #[serde(default)]
    pub failed_runs: usize,
}

impl InjectionTable {
    pub fn render(&self) -> String {
        let mut t =
            TextTable::new(&self.title).header(&["", "Rm", "RmHK", "RmHK2", "TP", "TPHK", "TPHK2"]);
        for block in &self.blocks {
            t.row(&[format!("--- {} ---", block.platform), String::new()]);
            for row in &block.rows {
                let mut means = vec![row.label.clone()];
                means.extend(row.cells.iter().map(|c| fmt_secs(c.inj_mean)));
                t.row(&means);
                let mut pcts = vec![String::new()];
                pcts.extend(row.cells.iter().map(|c| fmt_pct(c.pct())));
                t.row(&pcts);
            }
        }
        let mut out = t.render();
        if self.failed_runs > 0 {
            out.push_str(&format!(
                "note: {} run(s) failed and were excluded\n",
                self.failed_runs
            ));
        }
        out
    }

    /// All (model, mitigation, pct) samples, for the Table 6 summary.
    pub fn pct_samples(&self) -> Vec<(Model, Mitigation, f64)> {
        let mut out = Vec::new();
        for block in &self.blocks {
            for row in &block.rows {
                for (i, &mit) in Mitigation::ALL.iter().enumerate() {
                    out.push((row.model, mit, row.cells[i].pct()));
                }
            }
        }
        out
    }
}

/// Execute a table plan.
pub fn run_table(spec: &TableSpec, scale: Scale, small: bool) -> InjectionTable {
    let mut blocks = Vec::new();
    let mut accuracy = Vec::new();
    // Cell: both the baseline closure and the row loop below add to it.
    let failed_runs = std::cell::Cell::new(0usize);

    for (pi, pspec) in spec.platforms.iter().enumerate() {
        let workload = spec.workload.instantiate(&pspec.platform, small);
        let boosted = scale.boost(&pspec.platform);

        // --- stage 1+2: trace collection and config generation ---------
        let mut configs: Vec<InjectionConfig> = Vec::new();
        for (ti, source) in pspec.traces.iter().enumerate() {
            let seed = 10_000 * (pi as u64 + 1) + 1_000 * ti as u64;
            let traced = run_baseline(
                &boosted,
                workload.as_ref(),
                &source.cfg,
                scale.traced_runs,
                seed,
                true,
            );
            let cfg = generate(
                format!(
                    "{}/{}/{}",
                    spec.workload.name(),
                    pspec.platform.label(),
                    source.label
                ),
                &traced.traces,
                &GeneratorOptions::default(),
            )
            .expect("trace collection cannot be empty");
            failed_runs.set(failed_runs.get() + traced.failures.len());
            configs.push(cfg);
        }

        // --- baselines (untraced), cached per configuration -------------
        let mut baselines: BTreeMap<String, [f64; 6]> = BTreeMap::new();
        let platform = &pspec.platform;
        let workload_ref: &(dyn Workload + Sync) = workload.as_ref();
        let mut baseline_for = |model: Model, smt: bool| {
            let key = format!("{model:?}/{smt}");
            if let Some(b) = baselines.get(&key) {
                return *b;
            }
            let mut means = [0.0; 6];
            for (i, &mit) in Mitigation::ALL.iter().enumerate() {
                let mut cfg = ExecConfig::new(model, mit);
                if smt {
                    cfg = cfg.with_smt();
                }
                let b = run_baseline(
                    platform,
                    workload_ref,
                    &cfg,
                    scale.baseline_runs,
                    50_000 + i as u64 * 500,
                    false,
                );
                failed_runs.set(failed_runs.get() + b.failures.len());
                means[i] = b.summary.mean;
            }
            baselines.insert(key, means);
            means
        };

        // --- injections per row ------------------------------------------
        let mut rows = Vec::new();
        for (ri, row) in pspec.rows.iter().enumerate() {
            let base = baseline_for(row.model, row.smt);
            let config = &configs[row.trace];
            let mut cells = [Cell {
                base_mean: 0.0,
                inj_mean: 0.0,
            }; 6];
            for (i, &mit) in Mitigation::ALL.iter().enumerate() {
                let mut cfg = ExecConfig::new(row.model, mit);
                if row.smt {
                    cfg = cfg.with_smt();
                }
                let inj = run_injected(
                    &pspec.platform,
                    workload.as_ref(),
                    &cfg,
                    config,
                    scale.inject_runs,
                    100_000 + 1_000 * ri as u64 + 50 * i as u64,
                );
                failed_runs.set(failed_runs.get() + inj.failures.len());
                cells[i] = Cell {
                    base_mean: base[i],
                    inj_mean: inj.summary.mean,
                };
            }
            rows.push(RowResult {
                label: row.label(),
                model: row.model,
                smt: row.smt,
                trace: row.trace,
                cells,
            });
        }

        // --- accuracy: each trace source evaluated on its own config ----
        for (ti, source) in pspec.traces.iter().enumerate() {
            // Find the row + cell matching the source configuration.
            let matching = rows
                .iter()
                .find(|r| r.model == source.cfg.model && r.smt == source.cfg.smt && r.trace == ti);
            if let Some(row) = matching {
                let mit_idx = Mitigation::ALL
                    .iter()
                    .position(|&m| m == source.cfg.mitigation)
                    .unwrap();
                let anomaly = configs[ti].anomaly_exec.as_secs_f64();
                if anomaly > 0.0 {
                    accuracy.push(AccuracyRecord {
                        workload: spec.workload.name().to_string(),
                        config_label: source.label.clone(),
                        error: row.cells[mit_idx].inj_mean / anomaly - 1.0,
                    });
                }
            }
        }

        blocks.push(Block {
            platform: pspec.platform.label().to_string(),
            rows,
        });
    }

    InjectionTable {
        title: spec.title.clone(),
        workload: spec.workload,
        blocks,
        accuracy,
        failed_runs: failed_runs.get(),
    }
}

// ---------------------------------------------------------------------
// Table plans (trace provenance follows paper Table 7).
// ---------------------------------------------------------------------

/// Table 3: N-body under injection.
pub fn table3_spec() -> TableSpec {
    TableSpec {
        title: "Table 3: N-body — avg exec (s) and change vs baseline under injection".into(),
        workload: WorkloadKind::NBody,
        platforms: vec![
            PlatformSpec {
                platform: Platform::intel(),
                traces: vec![
                    TraceSource::new(Model::Omp, Mitigation::Rm, false),
                    TraceSource::new(Model::Omp, Mitigation::Tp, false),
                ],
                rows: vec![
                    RowSpec {
                        model: Model::Omp,
                        smt: false,
                        trace: 0,
                    },
                    RowSpec {
                        model: Model::Sycl,
                        smt: false,
                        trace: 0,
                    },
                    RowSpec {
                        model: Model::Omp,
                        smt: false,
                        trace: 1,
                    },
                    RowSpec {
                        model: Model::Sycl,
                        smt: false,
                        trace: 1,
                    },
                ],
            },
            PlatformSpec {
                platform: Platform::amd(),
                traces: vec![TraceSource::new(Model::Omp, Mitigation::Rm, true)],
                rows: vec![
                    RowSpec {
                        model: Model::Omp,
                        smt: false,
                        trace: 0,
                    },
                    RowSpec {
                        model: Model::Omp,
                        smt: true,
                        trace: 0,
                    },
                    RowSpec {
                        model: Model::Sycl,
                        smt: false,
                        trace: 0,
                    },
                    RowSpec {
                        model: Model::Sycl,
                        smt: true,
                        trace: 0,
                    },
                ],
            },
        ],
    }
}

/// Table 4: Babelstream under injection.
pub fn table4_spec() -> TableSpec {
    TableSpec {
        title: "Table 4: Babelstream — avg exec (s) and change vs baseline under injection".into(),
        workload: WorkloadKind::Babelstream,
        platforms: vec![
            PlatformSpec {
                platform: Platform::intel(),
                traces: vec![
                    TraceSource::new(Model::Omp, Mitigation::Rm, false),
                    TraceSource::new(Model::Omp, Mitigation::Tp, false),
                ],
                rows: vec![
                    RowSpec {
                        model: Model::Omp,
                        smt: false,
                        trace: 0,
                    },
                    RowSpec {
                        model: Model::Sycl,
                        smt: false,
                        trace: 0,
                    },
                    RowSpec {
                        model: Model::Omp,
                        smt: false,
                        trace: 1,
                    },
                    RowSpec {
                        model: Model::Sycl,
                        smt: false,
                        trace: 1,
                    },
                ],
            },
            PlatformSpec {
                platform: Platform::amd(),
                traces: vec![TraceSource::new(Model::Sycl, Mitigation::Tp, false)],
                rows: vec![
                    RowSpec {
                        model: Model::Omp,
                        smt: false,
                        trace: 0,
                    },
                    RowSpec {
                        model: Model::Omp,
                        smt: true,
                        trace: 0,
                    },
                    RowSpec {
                        model: Model::Sycl,
                        smt: false,
                        trace: 0,
                    },
                    RowSpec {
                        model: Model::Sycl,
                        smt: true,
                        trace: 0,
                    },
                ],
            },
        ],
    }
}

/// Table 5: MiniFE under injection.
pub fn table5_spec() -> TableSpec {
    TableSpec {
        title: "Table 5: MiniFE — avg exec (s) and change vs baseline under injection".into(),
        workload: WorkloadKind::MiniFE,
        platforms: vec![
            PlatformSpec {
                platform: Platform::intel(),
                traces: vec![
                    TraceSource::new(Model::Omp, Mitigation::Rm, false),
                    TraceSource::new(Model::Omp, Mitigation::TpHK2, false),
                ],
                rows: vec![
                    RowSpec {
                        model: Model::Omp,
                        smt: false,
                        trace: 0,
                    },
                    RowSpec {
                        model: Model::Sycl,
                        smt: false,
                        trace: 0,
                    },
                    RowSpec {
                        model: Model::Omp,
                        smt: false,
                        trace: 1,
                    },
                    RowSpec {
                        model: Model::Sycl,
                        smt: false,
                        trace: 1,
                    },
                ],
            },
            PlatformSpec {
                platform: Platform::amd(),
                traces: vec![
                    TraceSource::new(Model::Omp, Mitigation::TpHK, true),
                    TraceSource::new(Model::Sycl, Mitigation::RmHK2, false),
                ],
                rows: vec![
                    RowSpec {
                        model: Model::Omp,
                        smt: false,
                        trace: 0,
                    },
                    RowSpec {
                        model: Model::Omp,
                        smt: true,
                        trace: 0,
                    },
                    RowSpec {
                        model: Model::Sycl,
                        smt: false,
                        trace: 0,
                    },
                    RowSpec {
                        model: Model::Sycl,
                        smt: true,
                        trace: 0,
                    },
                    RowSpec {
                        model: Model::Omp,
                        smt: false,
                        trace: 1,
                    },
                    RowSpec {
                        model: Model::Omp,
                        smt: true,
                        trace: 1,
                    },
                    RowSpec {
                        model: Model::Sycl,
                        smt: false,
                        trace: 1,
                    },
                    RowSpec {
                        model: Model::Sycl,
                        smt: true,
                        trace: 1,
                    },
                ],
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_match_paper_row_structure() {
        let t3 = table3_spec();
        assert_eq!(t3.platforms[0].rows.len(), 4);
        assert_eq!(t3.platforms[1].rows.len(), 4);
        assert_eq!(t3.platforms[1].rows[1].label(), "OMP SMT #1");

        let t5 = table5_spec();
        assert_eq!(t5.platforms[1].rows.len(), 8);
        // Ten trace sources across the three tables: 6 Intel, 4 AMD.
        let count = |spec: &TableSpec, idx: usize| spec.platforms[idx].traces.len();
        let intel = count(&t3, 0) + count(&table4_spec(), 0) + count(&t5, 0);
        let amd = count(&t3, 1) + count(&table4_spec(), 1) + count(&t5, 1);
        assert_eq!(intel, 6);
        assert_eq!(amd, 4);
        // All but two sources are OpenMP.
        let all_specs = [table3_spec(), table4_spec(), table5_spec()];
        let sycl_sources: usize = all_specs
            .iter()
            .flat_map(|s| s.platforms.iter())
            .flat_map(|p| p.traces.iter())
            .filter(|t| t.cfg.model == Model::Sycl)
            .count();
        assert_eq!(sycl_sources, 2);
    }

    #[test]
    fn trace_source_labels() {
        assert_eq!(
            TraceSource::new(Model::Omp, Mitigation::Rm, true).label,
            "Rm-SMT-OMP"
        );
        assert_eq!(
            TraceSource::new(Model::Sycl, Mitigation::TpHK2, false).label,
            "TPHK2-SYCL"
        );
    }

    #[test]
    fn cell_pct() {
        let c = Cell {
            base_mean: 1.0,
            inj_mean: 1.25,
        };
        assert!((c.pct() - 0.25).abs() < 1e-12);
    }
}
