//! Table 1: tracing overhead — average execution time with `osnoise`
//! tracing off and on, per workload. The paper reports increases below
//! 1 %, establishing that traced baselines are representative.

use crate::execconfig::{ExecConfig, Mitigation, Model};
use crate::experiments::{suite, Scale};
use crate::harness::run_many;
use crate::platform::Platform;
use noiselab_stats::{fmt_pct, fmt_secs, Summary, TextTable};
use noiselab_workloads::Workload;

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct Row {
    pub workload: String,
    pub off_mean: f64,
    pub on_mean: f64,
    /// Runs (off + on) that produced no measurement.
    pub failed: usize,
}

impl Row {
    pub fn increase(&self) -> f64 {
        self.on_mean / self.off_mean - 1.0
    }
}

#[derive(Debug, Clone)]
pub struct Table1 {
    pub rows: Vec<Row>,
}

impl Table1 {
    pub fn render(&self) -> String {
        let mut t = TextTable::new("Table 1: average execution time with tracing off/on (Intel)")
            .header(&["Workload", "Tracing Off", "Tracing On", "Increase"]);
        for r in &self.rows {
            t.row(&[
                r.workload.clone(),
                fmt_secs(r.off_mean),
                fmt_secs(r.on_mean),
                fmt_pct(r.increase()),
            ]);
        }
        let mut out = t.render();
        let failed: usize = self.rows.iter().map(|r| r.failed).sum();
        if failed > 0 {
            out.push_str(&format!("note: {failed} run(s) failed and were excluded\n"));
        }
        out
    }
}

/// Run the tracing-overhead experiment on the Intel platform.
pub fn run(scale: Scale) -> Table1 {
    let platform = Platform::intel();
    let cfg = ExecConfig::new(Model::Omp, Mitigation::Rm);
    let workloads: Vec<Box<dyn Workload + Sync>> = vec![
        Box::new(suite::nbody_for(&platform)),
        Box::new(suite::babelstream_for(&platform)),
        Box::new(suite::minife_for(&platform)),
    ];

    let mut rows = Vec::new();
    for w in &workloads {
        // Same seeds for off/on: the only difference is the tracer.
        let off = run_many(
            &platform,
            w.as_ref(),
            &cfg,
            scale.baseline_runs,
            1000,
            false,
            None,
        );
        let on = run_many(
            &platform,
            w.as_ref(),
            &cfg,
            scale.baseline_runs,
            1000,
            true,
            None,
        );
        let failed = off.failed_count() + on.failed_count();
        let off_mean = Summary::of(&off.samples()).mean;
        let on_mean = Summary::of(&on.samples()).mean;
        rows.push(Row {
            workload: w.name().to_string(),
            off_mean,
            on_mean,
            failed,
        });
    }
    Table1 { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Smoke-scale tracing overhead stays small and non-negative-ish
    /// (tracing adds work, so the increase should be >= ~0 and < 2 %).
    #[test]
    fn tracing_overhead_below_two_percent() {
        let platform = Platform::intel();
        let cfg = ExecConfig::new(Model::Omp, Mitigation::Rm);
        let w = suite::small::minife_for(&platform);
        let off = run_many(&platform, &w, &cfg, 6, 500, false, None).samples();
        let on = run_many(&platform, &w, &cfg, 6, 500, true, None).samples();
        let off_mean: f64 = off.iter().sum::<f64>() / off.len() as f64;
        let on_mean: f64 = on.iter().sum::<f64>() / on.len() as f64;
        let inc = on_mean / off_mean - 1.0;
        assert!(inc < 0.02, "tracing overhead {inc}");
        assert!(inc > -0.01, "tracing made runs faster? {inc}");
    }

    #[test]
    fn render_shape() {
        let t = Table1 {
            rows: vec![Row {
                workload: "nbody".into(),
                off_mean: 0.45,
                on_mean: 0.453,
                failed: 0,
            }],
        };
        let s = t.render();
        assert!(s.contains("nbody"));
        assert!(s.contains("+0.7%"));
    }
}
