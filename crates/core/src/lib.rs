//! # noiselab-core
//!
//! The experiment harness tying the stack together: evaluation
//! [`platform`]s, execution configurations ([`execconfig`]: model ×
//! mitigation × SMT), the run [`harness`] (baseline / traced /
//! injected), and the per-table experiment definitions in
//! [`experiments`].

pub mod execconfig;
pub mod experiments;
pub mod harness;
pub mod platform;

pub use execconfig::{ExecConfig, Mitigation, Model};
pub use harness::{
    run_baseline, run_injected, run_many, run_once, run_once_with, Baseline, RunOutput,
};
pub use platform::Platform;
