//! # noiselab-core
//!
//! The experiment harness tying the stack together: evaluation
//! [`platform`]s, execution configurations ([`execconfig`]: model ×
//! mitigation × SMT), the run [`harness`] (baseline / traced /
//! injected / faulted), the typed run-[`failure`] taxonomy, the
//! checkpointed [`campaign`] driver, the dual-run [`divergence`]
//! bisector behind the determinism contract, and the per-table
//! experiment definitions in [`experiments`].

pub mod campaign;
pub mod divergence;
pub mod durable;
pub mod execconfig;
pub mod experiments;
pub mod failure;
pub mod harness;
pub mod overhead;
pub mod platform;

pub use campaign::{
    render_campaign_report, run_campaign, run_cell, CampaignError, CampaignPlan, CampaignReport,
    CampaignState, CellKey, CellRecord, CellReport, CheckpointError, FailureRecord,
    QuarantineRecord, CHECKPOINT_SCHEMA,
};
pub use divergence::{
    dual_run, dual_run_harness, DivergenceReport, DivergentEvent, DualRunOutcome, StreamRunner,
    DEFAULT_CADENCE,
};
pub use execconfig::{ExecConfig, Mitigation, Model};
pub use failure::{RetryPolicy, RunFailure};
pub use harness::{
    run_baseline, run_injected, run_many, run_many_faulted, run_many_instrumented, run_once,
    run_once_faulted, run_once_instrumented, run_once_instrumented_in, run_once_observed,
    run_once_with, Baseline, Injected, InstrumentedRun, Observe, RunArena, RunLedger, RunOutput,
    RunRecord,
};
pub use overhead::{measure_overhead, OverheadReport, OverheadRow};
pub use platform::Platform;
