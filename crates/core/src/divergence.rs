//! Dual-run event-stream divergence localisation.
//!
//! The determinism contract says two runs of the same (platform,
//! workload, config, seed) dispatch bit-identical event streams. When
//! the contract breaks, a single mismatched hash says *that* the runs
//! diverged but not *where*. This module localises the break: both runs
//! re-execute with periodic hash checkpoints, a binary search over the
//! checkpoint prefix finds the first mismatching checkpoint, and a
//! final pair of runs logs full event digests inside that one
//! checkpoint window so the report can name the first divergent event —
//! its index, virtual time, kind and CPU/thread.
//!
//! The runs are arbitrary [`StreamRunner`]s; the harness-backed
//! [`dual_run_harness`] compares two executions of the same cell, with
//! an optional deliberate perturbation of the second run (the chaos
//! hook used by the test suite and the CLI smoke check to prove the
//! pipeline localises correctly).

use crate::execconfig::ExecConfig;
use crate::harness::run_once_observed;
use crate::platform::Platform;
use noiselab_kernel::{KernelConfig, LoggedEvent, SanitizerConfig, SanitizerReport};
use noiselab_workloads::Workload;

/// Default checkpoint cadence for dual runs: small enough that the
/// localisation window stays a handful of events, large enough that the
/// checkpoint vector stays negligible next to the run itself.
pub const DEFAULT_CADENCE: u64 = 64;

/// One side's view of the first divergent event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DivergentEvent {
    /// 0-based event index in the dispatch order.
    pub index: u64,
    /// Rendered digest (`#idx t=..ms cpuN kind`), or a note that this
    /// run's stream had already ended.
    pub digest: String,
}

/// Where and how two event streams first disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DivergenceReport {
    pub hash_a: u64,
    pub hash_b: u64,
    pub events_a: u64,
    pub events_b: u64,
    /// The checkpoint window `[lo, hi)` the bisection narrowed to.
    pub window: (u64, u64),
    /// Run A's event at the first divergent index.
    pub first_a: DivergentEvent,
    /// Run B's event at the same index.
    pub first_b: DivergentEvent,
}

impl DivergenceReport {
    /// Multi-line human rendering for CLI and CI output.
    pub fn render(&self) -> String {
        format!(
            "event streams diverge: hash {:016x} vs {:016x} ({} vs {} events)\n\
             bisection window: events [{}, {})\n\
             first divergent event at index {}:\n\
               run A: {}\n\
               run B: {}",
            self.hash_a,
            self.hash_b,
            self.events_a,
            self.events_b,
            self.window.0,
            self.window.1,
            self.first_a.index,
            self.first_a.digest,
            self.first_b.digest,
        )
    }
}

/// Outcome of a dual run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DualRunOutcome {
    /// The streams are bit-identical: same hash, same length.
    Identical { events: u64, hash: u64 },
    /// The streams differ; the report names the first divergent event.
    Diverged(Box<DivergenceReport>),
}

impl DualRunOutcome {
    pub fn is_identical(&self) -> bool {
        matches!(self, DualRunOutcome::Identical { .. })
    }
}

/// A side of a dual run: executes the simulation once under the given
/// sanitizer configuration and returns the sanitizer report. Errors are
/// strings: a run that cannot finish cannot be bisected.
pub trait StreamRunner {
    fn run(&self, sanitizer: SanitizerConfig) -> Result<SanitizerReport, String>;
}

impl<F> StreamRunner for F
where
    F: Fn(SanitizerConfig) -> Result<SanitizerReport, String>,
{
    fn run(&self, sanitizer: SanitizerConfig) -> Result<SanitizerReport, String> {
        self(sanitizer)
    }
}

/// Compare two streams, localising the first divergent event when they
/// differ. Each runner executes at most twice: once with checkpoints,
/// once more with a log window if the first pass found a divergence.
pub fn dual_run(
    a: &dyn StreamRunner,
    b: &dyn StreamRunner,
    cadence: u64,
) -> Result<DualRunOutcome, String> {
    let cadence = cadence.max(1);
    let ra = a.run(SanitizerConfig::with_cadence(cadence))?;
    let rb = b.run(SanitizerConfig::with_cadence(cadence))?;
    if ra.hash == rb.hash && ra.events == rb.events {
        return Ok(DualRunOutcome::Identical {
            events: ra.events,
            hash: ra.hash,
        });
    }

    // Bisect the checkpoint prefix. Divergence is monotone — once the
    // streams disagree, every later running hash disagrees (modulo a
    // 2^-64 collision) — so binary search applies.
    let n = ra.checkpoints.len().min(rb.checkpoints.len());
    let k = partition_point(n, |i| ra.checkpoints[i] == rb.checkpoints[i]);
    let lo = if k == 0 {
        0
    } else {
        ra.checkpoints[k - 1].index
    };
    let hi = if k < n {
        ra.checkpoints[k].index
    } else {
        // Divergence after the last shared checkpoint: window runs to
        // the longer stream's end.
        ra.events.max(rb.events)
    };

    // Localisation pass: log full digests inside the window.
    let window = Some((lo, hi));
    let la = a.run(SanitizerConfig {
        cadence: 0,
        window,
        perturb_at: None,
    })?;
    let lb = b.run(SanitizerConfig {
        cadence: 0,
        window,
        perturb_at: None,
    })?;
    let (first_a, first_b) = first_difference(lo, &la.log, &lb.log);

    Ok(DualRunOutcome::Diverged(Box::new(DivergenceReport {
        hash_a: ra.hash,
        hash_b: rb.hash,
        events_a: ra.events,
        events_b: rb.events,
        window: (lo, hi),
        first_a,
        first_b,
    })))
}

/// `std`-style partition point over `0..n` for a prefix predicate.
fn partition_point(n: usize, pred: impl Fn(usize) -> bool) -> usize {
    let (mut lo, mut hi) = (0usize, n);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if pred(mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// First index at which the two window logs disagree (or one ends).
fn first_difference(
    window_lo: u64,
    a: &[LoggedEvent],
    b: &[LoggedEvent],
) -> (DivergentEvent, DivergentEvent) {
    let describe = |e: Option<&LoggedEvent>, index: u64| match e {
        Some(e) => DivergentEvent {
            index,
            digest: e.render(),
        },
        None => DivergentEvent {
            index,
            digest: "<stream ended>".into(),
        },
    };
    let n = a.len().max(b.len());
    for i in 0..n {
        let (ea, eb) = (a.get(i), b.get(i));
        if ea != eb {
            let index = ea.or(eb).map(|e| e.index).unwrap_or(window_lo + i as u64);
            return (describe(ea, index), describe(eb, index));
        }
    }
    // Logs agree over the whole window — the divergence is a pure
    // length difference past it; point at the first unlogged index.
    let index = window_lo + n as u64;
    (describe(None, index), describe(None, index))
}

/// Harness-backed dual run of one experiment cell at one seed. With
/// `perturb_b = Some(i)`, run B injects a synthetic device IRQ after
/// dispatching event `i`, deliberately breaking determinism so the
/// pipeline's localisation can be validated end to end.
pub fn dual_run_harness(
    platform: &Platform,
    workload: &dyn Workload,
    cfg: &ExecConfig,
    seed: u64,
    perturb_b: Option<u64>,
    cadence: u64,
) -> Result<DualRunOutcome, String> {
    let kconfig = KernelConfig::default();
    let run_side = |perturb_at: Option<u64>, sanitizer: SanitizerConfig| {
        let sanitizer = SanitizerConfig {
            perturb_at,
            ..sanitizer
        };
        run_once_observed(
            platform, workload, cfg, &kconfig, seed, false, None, None, sanitizer,
        )
        .map(|(_, report)| report)
        .map_err(|f| format!("run failed: {f:?}"))
    };
    let a = |sanitizer: SanitizerConfig| run_side(None, sanitizer);
    let b = |sanitizer: SanitizerConfig| run_side(perturb_b, sanitizer);
    dual_run(&a, &b, cadence)
}

#[cfg(test)]
mod tests {
    use super::*;
    use noiselab_sim::SimTime;

    /// A synthetic runner replaying a fixed stream of (time, kind, cpu)
    /// triples through a real `EventSanitizer`.
    struct Replay(Vec<(u64, u8, u32)>);

    impl StreamRunner for Replay {
        fn run(&self, sanitizer: SanitizerConfig) -> Result<SanitizerReport, String> {
            use noiselab_kernel::{EventKind, EventRecord, EventSanitizer};
            let mut s = EventSanitizer::new(sanitizer);
            for &(t, k, c) in &self.0 {
                let kind = match k {
                    0 => EventKind::Tick,
                    1 => EventKind::IrqDone,
                    _ => EventKind::DeviceIrq,
                };
                s.observe(&EventRecord {
                    kind,
                    cpu: Some(c),
                    thread: None,
                    time: SimTime(t),
                    duration_ns: 0,
                    source: None,
                });
            }
            Ok(s.into_report())
        }
    }

    fn stream(n: u64) -> Vec<(u64, u8, u32)> {
        (0..n)
            .map(|i| (i * 10, (i % 2) as u8, (i % 4) as u32))
            .collect()
    }

    #[test]
    fn identical_streams_report_identical() {
        let a = Replay(stream(500));
        let b = Replay(stream(500));
        let out = dual_run(&a, &b, 64).unwrap();
        assert!(out.is_identical());
    }

    #[test]
    fn single_event_edit_is_localised_exactly() {
        let mut edited = stream(500);
        edited[237].2 += 1; // different CPU at index 237
        let a = Replay(stream(500));
        let b = Replay(edited);
        let DualRunOutcome::Diverged(report) = dual_run(&a, &b, 64).unwrap() else {
            panic!("edit not detected");
        };
        assert_eq!(report.first_a.index, 237);
        assert_eq!(report.first_b.index, 237);
        assert_ne!(report.first_a.digest, report.first_b.digest);
        assert!(report.window.0 <= 237 && 237 < report.window.1);
        // The window is one cadence interval, not the whole run.
        assert!(report.window.1 - report.window.0 <= 64);
    }

    #[test]
    fn truncated_stream_points_past_the_common_prefix() {
        let a = Replay(stream(500));
        let b = Replay(stream(450));
        let DualRunOutcome::Diverged(report) = dual_run(&a, &b, 64).unwrap() else {
            panic!("truncation not detected");
        };
        assert_eq!(report.events_a, 500);
        assert_eq!(report.events_b, 450);
        assert_eq!(report.first_a.index, 450);
        assert_eq!(report.first_b.digest, "<stream ended>");
    }

    #[test]
    fn divergence_in_the_first_window_is_found() {
        let mut edited = stream(500);
        edited[3].0 += 1;
        let a = Replay(stream(500));
        let b = Replay(edited);
        let DualRunOutcome::Diverged(report) = dual_run(&a, &b, 64).unwrap() else {
            panic!("early edit not detected");
        };
        assert_eq!(report.first_a.index, 3);
        assert_eq!(report.window.0, 0);
    }

    #[test]
    fn report_renders_all_fields() {
        let mut edited = stream(200);
        edited[100].1 = 2;
        let a = Replay(stream(200));
        let b = Replay(edited);
        let DualRunOutcome::Diverged(report) = dual_run(&a, &b, 32).unwrap() else {
            panic!("edit not detected");
        };
        let text = report.render();
        assert!(text.contains("first divergent event at index 100"));
        assert!(text.contains("run A: "));
        assert!(text.contains("run B: "));
    }
}
