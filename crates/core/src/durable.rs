//! Durable atomic file writes: the primitive under every checkpoint,
//! shard ledger and lease the campaign engines rely on for crash
//! recovery.
//!
//! `write_atomic` guarantees that after it returns, the bytes are on
//! stable storage under `path` and no intermediate state (a torn file,
//! a present-but-empty rename target, a surviving `.tmp`) can be
//! observed by a crashed-and-restarted process:
//!
//! 1. the bytes are written to `<path>.tmp` and **fsynced** — a host
//!    crash after the rename cannot resurrect a zero-length file;
//! 2. the tmp file is renamed over `path` — readers see either the old
//!    or the new content, never a mix;
//! 3. the parent directory is **fsynced** — the rename itself survives
//!    a host crash, not just the data.

use std::fs::File;
use std::io::{self, Write};
use std::path::Path;

/// Atomically and durably replace `path` with `bytes`.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        // fsync the data before the rename: rename-then-crash must not
        // leave a truncated checkpoint behind.
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    sync_parent_dir(path)
}

/// fsync the directory containing `path`, making a completed rename
/// durable. A filesystem that does not support fsync on directories
/// (some network/overlay mounts) degrades to a warning rather than
/// failing the save — the rename already happened.
pub fn sync_parent_dir(path: &Path) -> io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    match File::open(&parent).and_then(|d| d.sync_all()) {
        Ok(()) => Ok(()),
        Err(e) => {
            eprintln!(
                "noiselab: warning: cannot fsync directory {} ({e}); \
                 a host crash may undo the last checkpoint rename",
                parent.display()
            );
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_atomic_leaves_no_tmp_and_replaces_content() {
        let dir = std::env::temp_dir().join("noiselab-durable-unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("file.json");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        assert!(!path.with_extension("tmp").exists());
        write_atomic(&path, b"second, longer content").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer content");
        assert!(!path.with_extension("tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_atomic_in_cwd_relative_path_syncs_dot() {
        // A bare filename has an empty parent; the directory fsync must
        // fall back to "." instead of erroring.
        let dir = std::env::temp_dir().join("noiselab-durable-rel");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rel.bin");
        write_atomic(&path, b"x").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"x");
        std::fs::remove_dir_all(&dir).ok();
    }
}
