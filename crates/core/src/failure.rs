//! Typed run-failure taxonomy and the retry policy.
//!
//! A failed run is data, not a process-ending event: the harness maps
//! every way a simulated run can go wrong onto [`RunFailure`], and
//! `run_many` collects per-run `Result`s into a ledger instead of
//! panicking (gem5's standardized-simulation effort and Pac-Sim treat
//! partial results the same way). The paper-scale campaigns can then
//! report exactly which (seed, cause) pairs were lost.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a single run produced no usable measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RunFailure {
    /// Virtual time passed the safety horizon before the team exited.
    Horizon { limit_secs: f64 },
    /// The event queue drained with workers still alive: the simulated
    /// system deadlocked (e.g. peers waiting on a dead thread).
    Deadlock,
    /// A fault plan tore down a workload thread mid-region; any
    /// measurement from the surviving threads is invalid.
    WorkloadAborted { thread: String },
    /// The run panicked on the host — a harness/workload bug, contained
    /// by `catch_unwind` so the rest of the campaign continues.
    Panic { message: String },
}

impl RunFailure {
    /// Stable short cause tag, used in ledgers and checkpoints.
    pub fn cause(&self) -> &'static str {
        match self {
            RunFailure::Horizon { .. } => "horizon",
            RunFailure::Deadlock => "deadlock",
            RunFailure::WorkloadAborted { .. } => "workload-aborted",
            RunFailure::Panic { .. } => "panic",
        }
    }
}

impl fmt::Display for RunFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunFailure::Horizon { limit_secs } => {
                write!(f, "exceeded the {limit_secs}s virtual-time horizon")
            }
            RunFailure::Deadlock => write!(f, "deadlocked (event queue drained)"),
            RunFailure::WorkloadAborted { thread } => {
                write!(f, "workload thread '{thread}' aborted mid-region")
            }
            RunFailure::Panic { message } => write!(f, "panicked: {message}"),
        }
    }
}

/// Bounded, deterministic retry-with-reseed. `max_retries == 0` (the
/// default) means a failure is final. Reseeding is a pure function of
/// the original seed and the attempt number, so a retried campaign is
/// exactly reproducible and the ledger records how many attempts each
/// cell consumed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    pub max_retries: u32,
}

impl RetryPolicy {
    pub fn none() -> Self {
        RetryPolicy::default()
    }

    pub fn retries(max_retries: u32) -> Self {
        RetryPolicy { max_retries }
    }

    /// The seed used for retry `attempt` (1-based) of `seed`. Odd
    /// multiplier keeps distinct attempts distinct for every seed.
    pub fn reseed(seed: u64, attempt: u32) -> u64 {
        seed ^ (attempt as u64).wrapping_mul(0xD1B5_4A32_D192_ED03)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cause_tags_are_stable() {
        assert_eq!(RunFailure::Horizon { limit_secs: 600.0 }.cause(), "horizon");
        assert_eq!(RunFailure::Deadlock.cause(), "deadlock");
        assert_eq!(
            RunFailure::WorkloadAborted {
                thread: "omp-3".into()
            }
            .cause(),
            "workload-aborted"
        );
        assert_eq!(
            RunFailure::Panic {
                message: "x".into()
            }
            .cause(),
            "panic"
        );
    }

    #[test]
    fn failure_json_roundtrip() {
        for f in [
            RunFailure::Horizon { limit_secs: 600.0 },
            RunFailure::Deadlock,
            RunFailure::WorkloadAborted { thread: "w".into() },
            RunFailure::Panic {
                message: "boom".into(),
            },
        ] {
            let s = serde_json::to_string(&f).unwrap();
            let back: RunFailure = serde_json::from_str(&s).unwrap();
            assert_eq!(f, back);
        }
    }

    #[test]
    fn reseed_is_deterministic_and_distinct() {
        assert_eq!(RetryPolicy::reseed(42, 1), RetryPolicy::reseed(42, 1));
        assert_ne!(RetryPolicy::reseed(42, 1), 42);
        assert_ne!(RetryPolicy::reseed(42, 1), RetryPolicy::reseed(42, 2));
        assert_ne!(RetryPolicy::reseed(42, 1), RetryPolicy::reseed(43, 1));
    }
}
