//! Evaluation platforms: machine model + noise profile, mirroring the
//! paper's testbeds.

use noiselab_machine::Machine;
use noiselab_noise::NoiseProfile;

/// A machine plus its background-noise environment.
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    pub machine: Machine,
    pub noise: NoiseProfile,
    /// Relative s.d. of a per-run machine-speed factor modelling the
    /// run-to-run variation that is *not* OS noise — frequency and
    /// thermal state, memory layout, cache/TLB effects. The paper's
    /// Table 2 shows baseline variability largely independent of the
    /// mitigation strategy, which is exactly this component (OS-noise
    /// induced variability is absorbable; this is not).
    pub run_jitter_sd: f64,
}

/// Run-to-run machine speed variation of the desktop platforms
/// (~0.6 %, matching the paper's baseline s.d. of ~5-10 ms on 1-2 s
/// runs).
const DESKTOP_JITTER_SD: f64 = 0.006;

impl Platform {
    /// Intel i7-9700KF desktop, Ubuntu 24.04 at runlevel 5.
    pub fn intel() -> Platform {
        Platform {
            machine: Machine::intel_9700kf(),
            noise: NoiseProfile::desktop(),
            run_jitter_sd: DESKTOP_JITTER_SD,
        }
    }

    /// AMD Ryzen 9950X3D desktop, Ubuntu 24.04 at runlevel 5, with the
    /// heavier anomaly pool that platform's worst cases exhibit.
    pub fn amd() -> Platform {
        Platform {
            machine: Machine::amd_9950x3d(),
            noise: NoiseProfile::desktop_amd(),
            run_jitter_sd: DESKTOP_JITTER_SD,
        }
    }

    /// The same desktop platforms at runlevel 3 (GUI disabled), used by
    /// the paper to check GUI influence (§5.1).
    pub fn runlevel3(mut self) -> Platform {
        self.noise = NoiseProfile::runlevel3();
        self
    }

    /// The Intel desktop with the DVFS axis switched on: per-CPU
    /// frequency governors, a shared turbo budget and thermal
    /// throttling. The governor here is only the default; campaign
    /// cells override it per [`crate::ExecConfig::governor`].
    pub fn intel_dvfs() -> Platform {
        let mut p = Platform::intel();
        p.machine.dvfs =
            noiselab_machine::DvfsConfig::enabled_default(noiselab_machine::Governor::Performance);
        p
    }

    /// A64FX HPC node. With `reserved = true`, two firmware-reserved
    /// cores exist and all OS noise threads are pinned to them (the BSC
    /// system); otherwise noise roams over the 48 user cores (the MACC
    /// system). Motivation Figs. 1-2.
    pub fn a64fx(reserved: bool) -> Platform {
        let machine = Machine::a64fx(reserved);
        let os_affinity = if reserved {
            Some(machine.reserved_cpus)
        } else {
            None
        };
        Platform {
            machine,
            noise: NoiseProfile::hpc(os_affinity),
            // Fixed-frequency HPC silicon: far steadier than desktops.
            run_jitter_sd: 0.0005,
        }
    }

    /// Short name used in reports.
    pub fn label(&self) -> &str {
        &self.machine.name
    }

    /// CLI/spec names accepted by [`Platform::by_name`].
    pub const NAMES: [&'static str; 5] = ["intel", "amd", "a64fx", "a64fx-reserved", "intel-dvfs"];

    /// Construct a preset platform from its CLI/spec name. The single
    /// source of truth for name resolution, shared by the `noiselab`
    /// binary and the sharded campaign workers so both sides of a
    /// multi-process campaign agree on what "intel" means.
    pub fn by_name(name: &str) -> Option<Platform> {
        match name {
            "intel" => Some(Platform::intel()),
            "amd" => Some(Platform::amd()),
            "a64fx" => Some(Platform::a64fx(false)),
            "a64fx-reserved" => Some(Platform::a64fx(true)),
            "intel-dvfs" => Some(Platform::intel_dvfs()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_consistent() {
        assert_eq!(Platform::intel().machine.cores, 8);
        assert_eq!(Platform::amd().machine.smt, 2);
        let reserved = Platform::a64fx(true);
        assert!(reserved.noise.os_affinity.is_some());
        assert_eq!(
            reserved.noise.os_affinity.unwrap(),
            reserved.machine.reserved_cpus
        );
        assert!(Platform::a64fx(false).noise.os_affinity.is_none());
    }

    #[test]
    fn runlevel3_removes_gui() {
        let p = Platform::intel().runlevel3();
        assert!(p.noise.daemons.iter().all(|d| d.name != "gnome-shell"));
    }

    #[test]
    fn intel_dvfs_enables_the_frequency_axis() {
        let p = Platform::intel_dvfs();
        assert!(p.machine.dvfs.enabled);
        assert!(p.machine.dvfs.is_sane());
        // Every other preset ships the axis disabled.
        for name in Platform::NAMES {
            if name != "intel-dvfs" {
                assert!(
                    !Platform::by_name(name).unwrap().machine.dvfs.enabled,
                    "{name}"
                );
            }
        }
        assert_eq!(Platform::by_name("intel-dvfs"), Some(p));
    }
}
