//! The noiselab command-line tool: drive the paper's pipeline stage by
//! stage, with JSON artifacts on disk between stages.
//!
//! ```text
//! noiselab baseline --platform intel --workload nbody [--model omp] [--mitigation Rm] [--runs 40]
//! noiselab trace    --platform intel --workload nbody --out traces.json [--boost 10]
//! noiselab trace    --run <seed> --out trace.json [--binary trace.nltb]   # Perfetto timeline
//! noiselab metrics  [--runs 5] [--tracing true] [--json] [--profile] [--overhead [--reps 3]]
//! noiselab metrics  --checkpoint state.json [--json]   # merged campaign + supervisor metrics
//! noiselab advise   [--checkpoint state.json] [--traces <file|dir>] [--check]
//!                   [--bench-hotpath BENCH_hotpath.json] [--bench-telemetry BENCH_telemetry.json]
//!                   [--json] [--markdown <path|->] [--cv-threshold 0.05] [--alpha 0.01]
//!                   [--resamples 800] [--advise-seed N]
//! noiselab generate --traces traces.json --out config.json [--merge improved|naive]
//! noiselab inject   --platform intel --workload nbody --config config.json [--runs 20]
//! noiselab analyze  --traces traces.json [--top 10]
//! noiselab report   --what table1|table2|fig1|fig2|merge|memory|runlevel3 [--scale smoke|bench|paper]
//! noiselab campaign --platform intel --workload nbody [--runs 20] [--checkpoint state.json]
//!                   [--resume true] [--crash-prob 0.05] [--crash-window-ms 2]
//!                   [--fault-seed 1] [--retries 0] [--limit N] [--verify-resume true]
//!                   [--dvfs true]   # grow the grid by the governor mitigation matrix
//! noiselab campaign --workers N [--queue DIR] [--shard-size 2] [--heartbeat-secs 120]
//!                   [--shard-timeout-secs 3600] [--max-shard-crashes 3] [--chaos-kills 0]
//! noiselab audit    [--static] [--dual-run] [--json] [--root .]
//!                   [--sarif <path|->] [--fail-on-stale-allow] [--cache <path>] [--no-cache]
//!                   [--platform intel] [--workload nbody] [--model omp] [--mitigation Rm]
//!                   [--seed 1] [--perturb N] [--cadence 64]
//! noiselab conform  [--fuzz N] [--seed S] [--corpus <dir>] [--json]
//!                   [--mutate swap-pick|drop-irq-span|affinity-break|ghost-run
//!                             |turbo-leak|throttle-early|ghost-turbo|throttle-stuck]
//! noiselab conform  --replay <case.json | repro-line-file | '// conform:repro {...}'>
//! ```
//!
//! `trace --run <seed>` runs one seed with the telemetry recorder and
//! writes a Chrome trace-event JSON timeline (one track per logical
//! CPU) loadable in ui.perfetto.dev or chrome://tracing; `--binary`
//! additionally writes the compact NLTB timeline. `metrics` aggregates
//! the metrics registry over a few runs; `--profile` adds the host-time
//! phase profile and `--overhead` the Table-1-style observation
//! overhead report.
//!
//! `campaign` sweeps every model x mitigation cell, checkpointing after
//! each completed cell; a killed campaign resumes bit-identical with
//! `--resume true` and the same flags (`--verify-resume true`, the
//! default, re-runs the last completed cell and requires its event
//! stream hash to match the checkpoint before continuing).
//! `campaign --workers N` runs the same sweep on the sharded
//! multi-process engine (crates/campaignd): cells are partitioned into
//! shards on an on-disk work queue, claimed under lease files by N
//! supervised worker processes, and merged with per-shard hash
//! verification into a state bit-identical to the single-process path;
//! killed workers are respawned with backoff, repeat-lethal shards are
//! quarantined and reported by name, and re-running the command against
//! the same `--queue` resumes at cell granularity.
//!
//! `conform` runs the scheduler conformance suite: a coverage-guided
//! fuzz campaign whose every scenario is re-derived by a naive
//! differential oracle and checked against the metamorphic invariants
//! (work conservation, FIFO supremacy, affinity, osnoise conservation,
//! bounded fairness). Failures are shrunk to one-line
//! `// conform:repro` cases replayable with `--replay`; `--mutate`
//! seeds a known scheduler bug to prove the suite catches it (the exit
//! code flips: a mutated campaign that PASSES is the failure).
//!
//! `audit` enforces the determinism contract: `--static` sweeps the
//! deterministic crates with the token lexer *and* the taint analyzer
//! (parse → CFG → dataflow), reporting any unannotated nondeterminism
//! source that reaches a determinism sink as a source→sink path;
//! `--sarif` emits a SARIF 2.1.0 report (to a file, or stdout with
//! `-`), `--fail-on-stale-allow` makes unused `audit:allow`
//! annotations fatal, and the per-file cache under `target/` (relocate
//! with `--cache <path>`, disable with `--no-cache`) keeps warm sweeps
//! fast. `--dual-run` executes the same cell twice and bisects the
//! event streams, naming the first divergent event if they differ
//! (`--perturb N` deliberately forks run B after event N to exercise
//! the pipeline). Flags given without a value (`--static --json`) are
//! booleans.
//!
//! `advise` is the measurement-quality advisor (crates/advise): it
//! reads whatever artifacts exist — a campaign checkpoint, per-cell
//! trace sets (a single JSON file, or a directory of
//! `<cell-label>.json` files), and the committed `BENCH_*.json`
//! history — and prints the ranked diagnosis: measurement smells
//! (high-CV cells by seeded bootstrap CI, retry/degraded clusters,
//! quarantined cells, supervisor instability), per-cell noise blame
//! (dominant source and CPU by share of excess osnoise), the bench
//! regression watch (robust z against the trajectory's own step
//! noise), and the mitigation recommendation table. `--check` exits
//! nonzero when any critical smell or significant regression is
//! present (the CI gate); `--markdown <path|->` writes the report as
//! markdown. Bench files with a missing or foreign schema tag are
//! refused with an error naming the file.

use noiselab::core::experiments::{
    ablation, fig1, fig2, numa, runlevel, suite, table1, table2, Scale,
};
use noiselab::core::{run_baseline, run_injected, ExecConfig, Mitigation, Model, Platform};
use noiselab::injector::{generate, GeneratorOptions, InjectionConfig, MergeStrategy};
use noiselab::noise::TraceSet;
use noiselab::workloads::Workload;
use std::collections::HashMap;
use std::process::ExitCode;

struct Args {
    cmd: String,
    opts: HashMap<String, String>,
}

fn parse_args() -> Option<Args> {
    let mut it = std::env::args().skip(1).peekable();
    let cmd = it.next()?;
    let mut opts = HashMap::new();
    while let Some(key) = it.next() {
        let key = key.strip_prefix("--")?.to_string();
        // A flag followed by another flag (or the end of the line) is a
        // bare boolean: `--static --json` means static=true json=true.
        let value = match it.peek() {
            Some(next) if !next.starts_with("--") => it.next()?,
            _ => "true".to_string(),
        };
        opts.insert(key, value);
    }
    Some(Args { cmd, opts })
}

impl Args {
    fn get(&self, key: &str, default: &str) -> String {
        self.opts
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    fn required(&self, key: &str) -> Result<String, String> {
        self.opts
            .get(key)
            .cloned()
            .ok_or_else(|| format!("missing required --{key}"))
    }

    /// Platform/workload names resolve through the same tables the
    /// sharded campaign workers use, so `--workers N` and the
    /// single-process path can never disagree on what a name means.
    fn platform(&self) -> Result<Platform, String> {
        let name = self.get("platform", "intel");
        Platform::by_name(&name)
            .ok_or_else(|| format!("unknown platform '{name}' ({})", Platform::NAMES.join("|")))
    }

    fn workload(&self, platform: &Platform) -> Result<Box<dyn Workload + Sync>, String> {
        let name = self.get("workload", "nbody");
        suite::workload_by_name(platform, &name).ok_or_else(|| {
            format!(
                "unknown workload '{name}' ({})",
                suite::WORKLOAD_NAMES.join("|")
            )
        })
    }

    fn exec_config(&self) -> Result<ExecConfig, String> {
        let model = match self.get("model", "omp").as_str() {
            "omp" => Model::Omp,
            "sycl" => Model::Sycl,
            other => return Err(format!("unknown model '{other}' (omp|sycl)")),
        };
        let mitigation = match self.get("mitigation", "Rm").as_str() {
            "Rm" => Mitigation::Rm,
            "RmHK" => Mitigation::RmHK,
            "RmHK2" => Mitigation::RmHK2,
            "TP" => Mitigation::Tp,
            "TPHK" => Mitigation::TpHK,
            "TPHK2" => Mitigation::TpHK2,
            other => {
                return Err(format!(
                    "unknown mitigation '{other}' (Rm|RmHK|RmHK2|TP|TPHK|TPHK2)"
                ))
            }
        };
        let mut cfg = ExecConfig::new(model, mitigation);
        if self.get("smt", "off") == "on" {
            cfg = cfg.with_smt();
        }
        Ok(cfg)
    }

    fn runs(&self, default: usize) -> usize {
        self.get("runs", &default.to_string())
            .parse()
            .unwrap_or(default)
    }

    fn seed(&self) -> u64 {
        self.get("seed", "1").parse().unwrap_or(1)
    }

    fn scale(&self) -> Scale {
        match self.get("scale", "bench").as_str() {
            "smoke" => Scale::smoke(),
            "paper" => Scale::paper(),
            _ => Scale::bench(),
        }
    }
}

fn cmd_baseline(args: &Args) -> Result<(), String> {
    let platform = args.platform()?;
    let workload = args.workload(&platform)?;
    let cfg = args.exec_config()?;
    let runs = args.runs(40);
    let base = run_baseline(&platform, workload.as_ref(), &cfg, runs, args.seed(), false);
    println!(
        "{} {} {}: {} runs, mean {:.4}s, sd {:.2}ms, min {:.4}s, max {:.4}s, p99 {:.4}s",
        platform.label(),
        workload.name(),
        cfg.label(),
        runs,
        base.summary.mean,
        base.summary.sd * 1e3,
        base.summary.min,
        base.summary.max,
        base.summary.p99
    );
    Ok(())
}

/// `trace --run <seed>`: run one seed with the telemetry recorder and
/// export a Perfetto-loadable Chrome trace (and optionally the compact
/// NLTB binary timeline).
fn cmd_trace_timeline(args: &Args, run_seed: u64) -> Result<(), String> {
    use noiselab::core::{run_once_instrumented, Observe};
    use noiselab::kernel::KernelConfig;
    use noiselab::telemetry::{chrome_trace, encode, TelemetryConfig};

    let platform = args.platform()?;
    let workload = args.workload(&platform)?;
    let cfg = args.exec_config()?;
    let out = args.required("out")?;
    let run = run_once_instrumented(
        &platform,
        workload.as_ref(),
        &cfg,
        &KernelConfig::default(),
        run_seed,
        false,
        None,
        None,
        Observe::telemetry(TelemetryConfig::default()),
    )
    .map_err(|e| format!("run failed: {e}"))?;
    let report = run.telemetry.expect("telemetry was attached");
    let label = format!(
        "{} {} {} seed {}",
        platform.label(),
        workload.name(),
        cfg.label(),
        run_seed
    );
    std::fs::write(&out, chrome_trace(&report, &label)).map_err(|e| e.to_string())?;
    if let Some(bin) = args.opts.get("binary") {
        std::fs::write(bin, encode(&report)).map_err(|e| e.to_string())?;
    }
    println!(
        "{label}: exec {:.4}s, {} spans, {} instants on {} cpus ({} dropped) -> {} \
         (load in ui.perfetto.dev)",
        run.output.exec.as_secs_f64(),
        report.spans.len(),
        report.instants.len(),
        report.n_cpus,
        report.dropped,
        out
    );
    Ok(())
}

fn cmd_trace(args: &Args) -> Result<(), String> {
    // `--run <seed>` switches to single-run timeline export; without it
    // this is the legacy TraceSet pipeline stage `generate` consumes.
    if let Some(seed) = args.opts.get("run") {
        let seed = seed
            .parse()
            .map_err(|_| format!("--run wants a seed (got {seed:?})"))?;
        return cmd_trace_timeline(args, seed);
    }
    let mut platform = args.platform()?;
    if let Ok(boost) = args.get("boost", "1").parse::<f64>() {
        platform.noise.anomaly_prob = (platform.noise.anomaly_prob * boost).min(0.5);
    }
    let workload = args.workload(&platform)?;
    let cfg = args.exec_config()?;
    let out = args.required("out")?;
    let runs = args.runs(40);
    let base = run_baseline(&platform, workload.as_ref(), &cfg, runs, args.seed(), true);
    let json = serde_json::to_string(&base.traces).map_err(|e| e.to_string())?;
    std::fs::write(&out, json).map_err(|e| e.to_string())?;
    println!(
        "traced {} runs (mean {:.4}s, worst {:.4}s, {} anomalous) -> {}",
        runs,
        base.summary.mean,
        base.summary.max,
        base.anomaly_runs.len(),
        out
    );
    Ok(())
}

fn cmd_generate(args: &Args) -> Result<(), String> {
    let traces_path = args.required("traces")?;
    let out = args.required("out")?;
    let data = std::fs::read_to_string(&traces_path).map_err(|e| e.to_string())?;
    let traces: TraceSet = serde_json::from_str(&data).map_err(|e| e.to_string())?;
    let merge = match args.get("merge", "improved").as_str() {
        "naive" => MergeStrategy::NaivePessimistic,
        _ => MergeStrategy::Improved,
    };
    let opts = GeneratorOptions {
        merge,
        ..GeneratorOptions::default()
    };
    let config =
        generate(traces_path.clone(), &traces, &opts).ok_or("trace set is empty".to_string())?;
    let json = config.to_json().map_err(|e| e.to_string())?;
    std::fs::write(&out, json).map_err(|e| e.to_string())?;
    println!(
        "config: {} events on {} cpus, total noise {:.2}ms, {:.0}% FIFO, anomaly {:.4}s -> {}",
        config.event_count(),
        config.lists.len(),
        config.total_noise().as_millis_f64(),
        config.fifo_fraction() * 100.0,
        config.anomaly_exec.as_secs_f64(),
        out
    );
    Ok(())
}

fn cmd_inject(args: &Args) -> Result<(), String> {
    let platform = args.platform()?;
    let workload = args.workload(&platform)?;
    let cfg = args.exec_config()?;
    let config_path = args.required("config")?;
    let data = std::fs::read_to_string(&config_path).map_err(|e| e.to_string())?;
    let config = InjectionConfig::from_json(&data).map_err(|e| e.to_string())?;
    let runs = args.runs(20);
    let base = run_baseline(
        &platform,
        workload.as_ref(),
        &cfg,
        runs,
        args.seed() + 10_000,
        false,
    );
    let inj = run_injected(
        &platform,
        workload.as_ref(),
        &cfg,
        &config,
        runs,
        args.seed(),
    );
    println!(
        "{} {} {}: baseline {:.4}s -> injected {:.4}s ({:+.1}%), accuracy {:+.1}%",
        platform.label(),
        workload.name(),
        cfg.label(),
        base.summary.mean,
        inj.summary.mean,
        (inj.summary.mean / base.summary.mean - 1.0) * 100.0,
        (inj.summary.mean / config.anomaly_exec.as_secs_f64() - 1.0) * 100.0
    );
    for (seed, cause) in base.failures.iter().chain(&inj.failures) {
        println!("  failed run: seed {seed}: {cause}");
    }
    Ok(())
}

fn cmd_report(args: &Args) -> Result<(), String> {
    let scale = args.scale();
    match args.get("what", "table1").as_str() {
        "table1" => print!("{}", table1::run(scale).render()),
        "table2" => print!("{}", table2::run(scale).render()),
        "fig1" => print!("{}", fig1::run(scale, false).render()),
        "fig2" => print!("{}", fig2::run(scale, false).render()),
        "merge" => print!("{}", ablation::merge_ablation(scale, false).render()),
        "memory" => print!("{}", ablation::memory_noise_ablation(scale, false).render()),
        "runlevel3" => print!("{}", runlevel::run(scale, false).render()),
        "numa" => print!("{}", numa::run(scale.baseline_runs, false).render()),
        other => {
            return Err(format!(
                "unknown report '{other}' (table1|table2|fig1|fig2|merge|memory|runlevel3|numa; \
                 tables 3-7 via cargo bench)"
            ))
        }
    }
    Ok(())
}

/// The model x mitigation sweep both campaign engines run. With
/// `dvfs`, the grid also grows the frequency mitigation matrix —
/// pinned and roaming cells under every governor — so `advise` can
/// rank governors and re-ask the placement question under a shared
/// turbo budget and thermal throttling.
fn campaign_cells(dvfs: bool) -> Vec<(String, ExecConfig)> {
    let mut cells: Vec<(String, ExecConfig)> = Mitigation::ALL
        .iter()
        .flat_map(|&mit| {
            [Model::Omp, Model::Sycl].map(|model| {
                let cfg = ExecConfig::new(model, mit);
                (cfg.label(), cfg)
            })
        })
        .collect();
    if dvfs {
        for mit in [Mitigation::Rm, Mitigation::Tp] {
            for g in noiselab::machine::Governor::ALL {
                let cfg = ExecConfig::new(Model::Omp, mit).with_governor(g);
                cells.push((cfg.label(), cfg));
            }
        }
    }
    cells
}

/// The optional deterministic fault plan shared by both engines:
/// `--crash-prob p` with `--crash-window-ms w` and `--fault-seed s`.
fn campaign_faults(args: &Args) -> Option<noiselab::kernel::FaultPlan> {
    let crash_prob: f64 = args.get("crash-prob", "0").parse().unwrap_or(0.0);
    let fault_seed: u64 = args.get("fault-seed", "1").parse().unwrap_or(1);
    let window_ms: u64 = args.get("crash-window-ms", "2").parse().unwrap_or(2);
    (crash_prob > 0.0)
        .then(|| noiselab::kernel::FaultPlan::crashy(fault_seed, crash_prob, window_ms))
}

fn cmd_campaign(args: &Args) -> Result<(), String> {
    use noiselab::core::campaign::{render_campaign_report, run_campaign, CampaignPlan};
    use noiselab::core::RetryPolicy;

    // `--workers N` switches to the sharded multi-process engine.
    if args.opts.contains_key("workers") {
        return cmd_campaign_sharded(args);
    }

    let platform = args.platform()?;
    let workload = args.workload(&platform)?;
    let runs = args.runs(20);
    let checkpoint = args.opts.get("checkpoint").map(std::path::PathBuf::from);
    if args.get("resume", "false") == "true" && checkpoint.is_none() {
        return Err("--resume true requires --checkpoint <path>".into());
    }
    if args.get("resume", "false") != "true" {
        // A fresh campaign must not silently continue an old one.
        if let Some(p) = &checkpoint {
            if p.exists() {
                return Err(format!(
                    "checkpoint {} already exists; pass --resume true to continue it \
                     or delete it to start over",
                    p.display()
                ));
            }
        }
    }

    let faults = campaign_faults(args);
    let retry = RetryPolicy::retries(args.get("retries", "0").parse().unwrap_or(0));
    let cells = campaign_cells(args.get("dvfs", "false") == "true");
    let n_cells = cells.len();

    let plan = CampaignPlan {
        platform: &platform,
        workload: workload.as_ref(),
        cells,
        runs_per_cell: runs,
        seed_base: args.seed(),
        faults,
        retry,
        checkpoint,
        limit: args.opts.get("limit").and_then(|v| v.parse().ok()),
        verify_resume: args.get("verify-resume", "true") == "true",
    };
    let state = run_campaign(&plan).map_err(|e| e.to_string())?;
    print!("{}", render_campaign_report(&state.report(n_cells)));
    for cell in &state.cells {
        for f in &cell.failures {
            println!(
                "  {}: failed run seed {}: {}",
                cell.key.label, f.seed, f.cause
            );
        }
    }
    Ok(())
}

/// `campaign --workers N`: the sharded multi-process engine. The cell
/// space is partitioned into shards on an on-disk work queue
/// (`--queue DIR`), N worker processes (this same binary, re-invoked
/// with the hidden `campaign-worker` subcommand) claim and execute
/// them under lease files, and the supervisor merges the verified
/// shard ledgers into a state bit-identical to `campaign` without
/// `--workers`. Re-running the same command against the same queue
/// resumes; shards that repeatedly kill workers are quarantined and
/// reported by name instead of aborting the campaign.
fn cmd_campaign_sharded(args: &Args) -> Result<(), String> {
    use noiselab::campaignd::{
        run_supervised, CampaignSpec, CellSpec, SupervisorConfig, WorkQueue,
    };
    use noiselab::core::campaign::render_campaign_report;
    use noiselab::core::RetryPolicy;
    use std::time::Duration;

    let workers: usize = args
        .get("workers", "4")
        .parse()
        .map_err(|_| "--workers wants a count".to_string())?;
    let spec = CampaignSpec {
        platform: args.get("platform", "intel"),
        workload: args.get("workload", "nbody"),
        cells: campaign_cells(args.get("dvfs", "false") == "true")
            .into_iter()
            .map(|(label, config)| CellSpec { label, config })
            .collect(),
        runs_per_cell: args.runs(20),
        seed_base: args.seed(),
        faults: campaign_faults(args),
        retry: RetryPolicy::retries(args.get("retries", "0").parse().unwrap_or(0)),
    };
    spec.resolve().map_err(|e| e.to_string())?;
    let n_cells = spec.cells.len();

    let queue_root = std::path::PathBuf::from(args.get("queue", "campaign.queue"));
    let shard_size: usize = args.get("shard-size", "2").parse().unwrap_or(2);
    let (_queue, manifest) =
        WorkQueue::init(&queue_root, &spec, shard_size).map_err(|e| e.to_string())?;
    eprintln!(
        "noiselab: sharded campaign: {} cell(s) in {} shard(s), {workers} worker(s), queue {}",
        n_cells,
        manifest.shards.len(),
        queue_root.display()
    );

    let secs = |key: &str, default: u64| {
        Duration::from_secs(
            args.get(key, &default.to_string())
                .parse()
                .unwrap_or(default),
        )
    };
    let cfg = SupervisorConfig {
        workers,
        heartbeat_timeout: secs("heartbeat-secs", 120),
        shard_timeout: secs("shard-timeout-secs", 3600),
        max_shard_crashes: args.get("max-shard-crashes", "3").parse().unwrap_or(3),
        max_respawns_per_slot: args.get("max-respawns", "16").parse().unwrap_or(16),
        chaos_kills: args.get("chaos-kills", "0").parse().unwrap_or(0),
        ..SupervisorConfig::default()
    };
    let binary = std::env::current_exe().map_err(|e| format!("cannot find own binary: {e}"))?;
    let report = run_supervised(&binary, &queue_root, &cfg)?;

    print!("{}", render_campaign_report(&report.state.report(n_cells)));
    for cell in &report.state.cells {
        for f in &cell.failures {
            println!(
                "  {}: failed run seed {}: {}",
                cell.key.label, f.seed, f.cause
            );
        }
    }
    println!(
        "merged ledger hash {:016x} ({} worker(s) spawned, {} crash(es), \
         {} chaos kill(s), {} timeout(s), {} shard(s) quarantined)",
        report.state_hash,
        report.spawned,
        report.crashes,
        report.chaos_kills,
        report.timeouts,
        report.quarantined_shards.len()
    );
    if let Some(path) = args.opts.get("checkpoint") {
        let path = std::path::Path::new(path);
        // Fold the supervisor health record in only at save time, after
        // the deterministic merge: the merged ledger (and its
        // state_hash) stays bit-identical to the single-process path,
        // while the checkpoint carries the campaignd.* counters for
        // `noiselab metrics --checkpoint` and `noiselab advise`.
        let mut state = report.state.clone();
        state.supervisor = report.health_metrics();
        state.save(path).map_err(|e| e.to_string())?;
        eprintln!("noiselab: merged state saved to {}", path.display());
    }
    Ok(())
}

/// Hidden subcommand: one sharded-campaign worker process. Spawned by
/// the supervisor, never by hand; claims shards from `--queue` until
/// the queue is drained, streaming progress frames on stdout.
fn cmd_campaign_worker(args: &Args) -> Result<(), String> {
    use noiselab::campaignd::{worker_main, WorkerConfig};
    let queue = std::path::PathBuf::from(args.required("queue")?);
    let worker_id = args.get("id", &format!("pid{}", std::process::id()));
    worker_main(&WorkerConfig { queue, worker_id })
}

/// `metrics`: aggregate the telemetry metrics registry over a few runs
/// (counters summed, histograms merged, gauges averaged), optionally
/// with the host-time phase profile or the full observation-overhead
/// report.
fn cmd_metrics(args: &Args) -> Result<(), String> {
    use noiselab::core::RetryPolicy;
    use noiselab::core::{measure_overhead, run_many_instrumented, run_once_instrumented, Observe};
    use noiselab::kernel::KernelConfig;
    use noiselab::telemetry::{MetricsSnapshot, PhaseProfiler, TelemetryConfig};

    // `--checkpoint <path>` is a read-only mode: render the merged
    // per-cell metrics and the supervisor health record of a saved
    // campaign checkpoint instead of running anything.
    if let Some(path) = args.opts.get("checkpoint") {
        return cmd_metrics_checkpoint(
            std::path::Path::new(path),
            args.get("json", "false") == "true",
        );
    }

    let platform = args.platform()?;
    let workload = args.workload(&platform)?;
    let cfg = args.exec_config()?;
    let json = args.get("json", "false") == "true";

    if args.get("overhead", "false") == "true" {
        let reps: u32 = args.get("reps", "3").parse().unwrap_or(3);
        let report = measure_overhead(&platform, workload.as_ref(), &cfg, args.seed(), reps)
            .map_err(|e| format!("run failed: {e}"))?;
        if json {
            println!(
                "{}",
                serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
            );
        } else {
            print!("{}", report.render());
        }
        return Ok(());
    }

    let runs = args.runs(5);
    let tracing = args.get("tracing", "false") == "true";
    let ledger = run_many_instrumented(
        &platform,
        workload.as_ref(),
        &cfg,
        runs,
        args.seed(),
        tracing,
        None,
        None,
        RetryPolicy::none(),
        Some(TelemetryConfig::metrics_only()),
    );
    let mut merged = MetricsSnapshot::default();
    for out in ledger.outputs() {
        if let Some(m) = &out.metrics {
            merged.merge(m);
        }
    }
    if merged.runs == 0 {
        return Err(format!("all {runs} runs failed: {:?}", ledger.failures()));
    }

    let profile = if args.get("profile", "false") == "true" {
        let profiler = PhaseProfiler::new();
        run_once_instrumented(
            &platform,
            workload.as_ref(),
            &cfg,
            &KernelConfig::default(),
            args.seed(),
            tracing,
            None,
            None,
            Observe {
                telemetry: Some(TelemetryConfig::metrics_only()),
                profiler: Some(profiler.clone()),
                ..Observe::default()
            },
        )
        .map_err(|e| format!("profiled run failed: {e}"))?;
        Some(profiler.report())
    } else {
        None
    };

    if json {
        use serde::Serialize as _;
        let mut doc = vec![("metrics".to_string(), merged.to_value())];
        if let Some(p) = &profile {
            doc.push(("profile".to_string(), p.to_value()));
        }
        println!("{}", serde::write_json(&serde::Value::Object(doc), true));
    } else {
        println!(
            "{} {} {}: {} run(s)",
            platform.label(),
            workload.name(),
            cfg.label(),
            merged.runs
        );
        print!("{}", merged.render());
        if let Some(p) = &profile {
            print!("{}", p.render());
        }
    }
    Ok(())
}

/// `advise`: the measurement-quality advisor. Consumes whatever
/// artifacts exist — a campaign checkpoint, trace sets (file or
/// directory of `<cell-label>.json`), and the committed BENCH_*.json
/// history — and emits the ranked diagnosis: smells, blame, bench
/// regression verdicts, and the mitigation recommendation table.
/// `--check` exits nonzero on any critical smell or significant bench
/// regression (the CI gate).
fn cmd_advise(args: &Args) -> Result<(), String> {
    use noiselab::advise::{
        advise, load_hotpath, load_telemetry, load_traces, AdviseConfig, AdviseInputs,
    };
    use noiselab::core::CampaignState;
    use std::path::Path;

    let mut cfg = AdviseConfig::default();
    let parse_f64 = |key: &str, into: &mut f64| -> Result<(), String> {
        if let Some(v) = args.opts.get(key) {
            *into = v.parse().map_err(|_| format!("--{key} wants a number"))?;
        }
        Ok(())
    };
    parse_f64("cv-threshold", &mut cfg.cv_threshold)?;
    parse_f64("alpha", &mut cfg.alpha)?;
    if let Some(v) = args.opts.get("resamples") {
        cfg.resamples = v
            .parse()
            .map_err(|_| "--resamples wants a count".to_string())?;
    }
    if let Some(v) = args.opts.get("advise-seed") {
        cfg.seed = v
            .parse()
            .map_err(|_| "--advise-seed wants a u64".to_string())?;
    }

    let mut inputs = AdviseInputs::default();
    if let Some(p) = args.opts.get("checkpoint") {
        inputs.checkpoint = Some(CampaignState::load(Path::new(p)).map_err(|e| e.to_string())?);
    }
    if let Some(p) = args.opts.get("traces") {
        inputs.traces = load_traces(Path::new(p)).map_err(|e| e.to_string())?;
    }
    // Bench files: an explicit flag must load (a schema mismatch is a
    // hard, clearly-worded refusal); the default path loads only when
    // the file exists.
    let bench_path = |flag: &str, default: &str| -> Option<std::path::PathBuf> {
        match args.opts.get(flag) {
            Some(p) => Some(std::path::PathBuf::from(p)),
            None => {
                let p = std::path::PathBuf::from(default);
                p.exists().then_some(p)
            }
        }
    };
    if let Some(p) = bench_path("bench-hotpath", "BENCH_hotpath.json") {
        let history = load_hotpath(&p).map_err(|e| e.to_string())?;
        inputs.hotpath = Some((p.display().to_string(), history));
    }
    if let Some(p) = bench_path("bench-telemetry", "BENCH_telemetry.json") {
        let telem = load_telemetry(&p).map_err(|e| e.to_string())?;
        inputs.telemetry = Some((p.display().to_string(), telem));
    }
    if inputs.checkpoint.is_none() && inputs.traces.is_empty() && inputs.hotpath.is_none() {
        return Err(
            "nothing to advise on: pass --checkpoint <state.json>, --traces <file|dir>, \
             or --bench-hotpath <BENCH_hotpath.json>"
                .into(),
        );
    }

    let report = advise(&inputs, &cfg);
    let markdown_on_stdout = args.opts.get("markdown").is_some_and(|p| p == "-");
    if let Some(md) = args.opts.get("markdown") {
        if md == "-" {
            println!("{}", report.render_markdown());
        } else {
            std::fs::write(md, report.render_markdown())
                .map_err(|e| format!("advise: write {md}: {e}"))?;
            eprintln!("noiselab: markdown report saved to {md}");
        }
    }
    if args.get("json", "false") == "true" && !markdown_on_stdout {
        println!("{}", report.to_json());
    } else if !markdown_on_stdout {
        print!("{}", report.render_human());
    }
    if args.get("check", "false") == "true" && report.check_failed() {
        return Err("advise --check: measurements are not trustworthy as-is \
             (critical smell or significant bench regression; see report)"
            .into());
    }
    Ok(())
}

/// `metrics --checkpoint <path>`: the merged campaign metrics plus the
/// `campaignd.*` supervisor health counters a sharded run folded into
/// the saved checkpoint.
fn cmd_metrics_checkpoint(path: &std::path::Path, json: bool) -> Result<(), String> {
    use noiselab::campaignd::merged_metrics;
    use noiselab::core::CampaignState;
    use serde::Serialize as _;

    let state = CampaignState::load(path).map_err(|e| e.to_string())?;
    let merged = merged_metrics(&state);
    if json {
        let mut doc = vec![("metrics".to_string(), merged.to_value())];
        if !state.supervisor.counters.is_empty() {
            doc.push(("supervisor".to_string(), state.supervisor.to_value()));
        }
        println!("{}", serde::write_json(&serde::Value::Object(doc), true));
    } else {
        println!(
            "checkpoint {}: {} cell(s), {} quarantined",
            path.display(),
            state.cells.len(),
            state.quarantined.len()
        );
        print!("{}", merged.render());
        if !state.supervisor.counters.is_empty() {
            println!("supervisor health:");
            print!("{}", state.supervisor.render());
        }
    }
    Ok(())
}

fn cmd_audit(args: &Args) -> Result<(), String> {
    use noiselab::audit::{audit_workspace_with, AuditOptions};
    use noiselab::core::divergence::{dual_run_harness, DualRunOutcome, DEFAULT_CADENCE};

    let json = args.get("json", "false") == "true";
    let want_static = args.get("static", "false") == "true";
    let want_dual = args.get("dual-run", "false") == "true";
    // Bare `noiselab audit` runs the static pass.
    let want_static = want_static || !want_dual;

    if want_static {
        let root = std::path::PathBuf::from(args.get("root", "."));
        let fail_stale = args.get("fail-on-stale-allow", "false") == "true";
        // Incremental cache is on by default; `--no-cache` forces a
        // cold sweep, `--cache <path>` relocates the cache file.
        let opts = if args.get("no-cache", "false") == "true" {
            AuditOptions { cache_path: None }
        } else {
            let path = match args.opts.get("cache") {
                // Bare `--cache` parses as "true": keep the default path.
                Some(p) if p != "true" => std::path::PathBuf::from(p),
                _ => AuditOptions::default_cache_path(&root),
            };
            AuditOptions {
                cache_path: Some(path),
            }
        };
        let started = std::time::Instant::now();
        let report = audit_workspace_with(&root, &opts).map_err(|e| format!("audit: {e}"))?;
        let elapsed = started.elapsed();
        if let Some(sarif) = args.opts.get("sarif") {
            if sarif == "-" {
                println!("{}", report.render_sarif());
            } else {
                std::fs::write(sarif, report.render_sarif())
                    .map_err(|e| format!("audit: write {sarif}: {e}"))?;
            }
        }
        // `--sarif -` owns stdout; keep it parseable and move the
        // human summary to stderr.
        let sarif_on_stdout = args.opts.get("sarif").is_some_and(|s| s == "-");
        if json && !sarif_on_stdout {
            println!("{}", report.render_json());
        } else if !sarif_on_stdout {
            print!("{}", report.render_human());
            eprintln!("audit: static pass took {:.3}s", elapsed.as_secs_f64());
        } else {
            eprint!("{}", report.render_human());
            eprintln!("audit: static pass took {:.3}s", elapsed.as_secs_f64());
        }
        if !report.clean() {
            return Err(format!(
                "audit: {} unannotated determinism violation(s)",
                report.violations.len()
            ));
        }
        if fail_stale && !report.stale_allows.is_empty() {
            return Err(format!(
                "audit: {} stale audit:allow annotation(s)",
                report.stale_allows.len()
            ));
        }
    }

    if want_dual {
        let platform = args.platform()?;
        let workload = args.workload(&platform)?;
        let cfg = args.exec_config()?;
        let perturb = args.opts.get("perturb").and_then(|v| v.parse().ok());
        let cadence = args
            .get("cadence", &DEFAULT_CADENCE.to_string())
            .parse()
            .unwrap_or(DEFAULT_CADENCE);
        let outcome = dual_run_harness(
            &platform,
            workload.as_ref(),
            &cfg,
            args.seed(),
            perturb,
            cadence,
        )?;
        match outcome {
            DualRunOutcome::Identical { events, hash } => {
                if json {
                    println!(
                        "{{\"dual_run\": \"identical\", \"events\": {events}, \
                         \"hash\": \"{hash:016x}\"}}"
                    );
                } else {
                    println!("dual run identical: {events} events, stream hash {hash:016x}");
                }
            }
            DualRunOutcome::Diverged(report) => {
                if json {
                    println!(
                        "{{\"dual_run\": \"diverged\", \"hash_a\": \"{:016x}\", \
                         \"hash_b\": \"{:016x}\", \"events_a\": {}, \"events_b\": {}, \
                         \"first_index\": {}, \"first_a\": {:?}, \"first_b\": {:?}}}",
                        report.hash_a,
                        report.hash_b,
                        report.events_a,
                        report.events_b,
                        report.first_a.index,
                        report.first_a.digest,
                        report.first_b.digest,
                    );
                } else {
                    println!("{}", report.render());
                }
                return Err("audit: dual run diverged".into());
            }
        }
    }
    Ok(())
}

/// Campaign seeds read naturally in either base: `--seed 0xC0DE` or
/// `--seed 49374`.
fn parse_seed(s: &str) -> u64 {
    match s.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16).unwrap_or(0xC0DE),
        None => s.parse().unwrap_or(0xC0DE),
    }
}

/// `conform`: drive the scheduler conformance suite — either a fuzz
/// campaign (oracle + invariants over generated scenarios, shrunk
/// repros on failure) or a single-case replay of a shrunk repro.
fn cmd_conform(args: &Args) -> Result<(), String> {
    use noiselab::conform::{
        check_scenario, fuzz, render_json, render_text, FuzzConfig, Mutation, Scenario,
        REPRO_MARKER,
    };

    let json = args.get("json", "false") == "true";
    let mutation = match args.opts.get("mutate") {
        None => None,
        Some(name) => Some(Mutation::from_name(name).ok_or_else(|| {
            format!(
                "unknown mutation '{name}' ({})",
                Mutation::ALL.map(|m| m.name()).join("|")
            )
        })?),
    };

    if let Some(case) = args.opts.get("replay") {
        // Accept a corpus case file (scenario JSON), a file holding a
        // `// conform:repro` line, or the repro line pasted directly.
        let text = match std::fs::read_to_string(case) {
            Ok(contents) => contents,
            Err(_) if case.contains(REPRO_MARKER) || case.trim_start().starts_with('{') => {
                case.clone()
            }
            Err(e) => return Err(format!("cannot read replay case {case}: {e}")),
        };
        let sc: Scenario = if text.contains(REPRO_MARKER) {
            let line = text
                .lines()
                .find(|l| l.contains(REPRO_MARKER))
                .expect("marker present");
            Scenario::from_repro_line(line)?
        } else {
            serde_json::from_str(text.trim()).map_err(|e| format!("bad scenario JSON: {e}"))?
        };
        match check_scenario(&sc, mutation) {
            None => {
                if json {
                    println!("{{\"replay\": \"pass\"}}");
                } else {
                    println!("replay PASS: oracle and invariants agree");
                    println!("  {}", sc.repro_line());
                }
                Ok(())
            }
            Some(v) => {
                if json {
                    println!(
                        "{{\"replay\": \"fail\", \"violation\": {}}}",
                        serde::write_json(&serde::Value::Str(v.to_string()), false)
                    );
                } else {
                    println!("replay FAIL: {v}");
                    println!("  {}", sc.repro_line());
                }
                Err("conformance replay failed".into())
            }
        }
    } else {
        let iterations: u64 = args.get("fuzz", "500").parse().unwrap_or(500);
        let cfg = FuzzConfig {
            iterations,
            seed: parse_seed(&args.get("seed", "0xC0DE")),
            corpus_dir: args.opts.get("corpus").map(std::path::PathBuf::from),
            mutation,
            ..FuzzConfig::default()
        };
        let report = fuzz(&cfg);
        if json {
            println!("{}", render_json(&report));
        } else {
            print!("{}", render_text(&report));
        }
        match (report.ok(), mutation) {
            // A clean campaign must pass; a mutated campaign must fail,
            // proving the suite detects the seeded scheduler bug.
            (true, None) => Ok(()),
            (false, None) => Err(format!(
                "conformance campaign failed with {} violation(s)",
                report.failures.len()
            )),
            (false, Some(m)) => {
                if !json {
                    println!(
                        "mutation '{}' detected as intended ({} failure(s) shrunk)",
                        m.name(),
                        report.failures.len()
                    );
                }
                Ok(())
            }
            (true, Some(m)) => Err(format!(
                "mutation '{}' went UNDETECTED across {iterations} scenarios",
                m.name()
            )),
        }
    }
}

fn cmd_analyze(args: &Args) -> Result<(), String> {
    let traces_path = args.required("traces")?;
    let data = std::fs::read_to_string(&traces_path).map_err(|e| e.to_string())?;
    let traces: TraceSet = serde_json::from_str(&data).map_err(|e| e.to_string())?;
    let top_k: usize = args.get("top", "10").parse().unwrap_or(10);
    let summary = noiselab::noise::analysis::summarize_set(&traces, top_k)
        .ok_or("trace set is empty".to_string())?;
    print!(
        "{}",
        noiselab::noise::analysis::render_set_summary(&summary)
    );
    let worst = &traces.runs[summary.worst_index];
    let ws = noiselab::noise::analysis::summarize_run(worst);
    let [irq, softirq, thread] = ws.by_class;
    println!(
        "worst run: {} events; irq {:.3}ms, softirq {:.3}ms, thread {:.3}ms; \
         busiest cpu {:?}; outlier: {}",
        ws.events,
        irq.as_millis_f64(),
        softirq.as_millis_f64(),
        thread.as_millis_f64(),
        ws.busiest_cpu
            .map(|(c, d)| format!("cpu{c} ({:.3}ms)", d.as_millis_f64())),
        noiselab::noise::analysis::is_outlier(worst, &traces)
    );
    Ok(())
}

fn usage() {
    eprintln!(
        "noiselab <baseline|trace|generate|inject|analyze|report|campaign|metrics|advise|audit|conform> \
         [--key value ...]\n\
         see the module docs (src/bin/noiselab.rs) for the full flag list"
    );
}

fn main() -> ExitCode {
    let Some(args) = parse_args() else {
        usage();
        return ExitCode::FAILURE;
    };
    let result = match args.cmd.as_str() {
        "baseline" => cmd_baseline(&args),
        "trace" => cmd_trace(&args),
        "generate" => cmd_generate(&args),
        "inject" => cmd_inject(&args),
        "analyze" => cmd_analyze(&args),
        "report" => cmd_report(&args),
        "campaign" => cmd_campaign(&args),
        // Hidden: spawned by `campaign --workers N`, not user-facing.
        "campaign-worker" => cmd_campaign_worker(&args),
        "metrics" => cmd_metrics(&args),
        "advise" => cmd_advise(&args),
        "audit" => cmd_audit(&args),
        "conform" => cmd_conform(&args),
        _ => {
            usage();
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
