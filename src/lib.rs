//! # noiselab
//!
//! Facade crate re-exporting the full noiselab public API. See the
//! individual crates for details; `noiselab_core::prelude` is the usual
//! entry point.

pub use noiselab_advise as advise;
pub use noiselab_audit as audit;
pub use noiselab_campaignd as campaignd;
pub use noiselab_conform as conform;
pub use noiselab_core as core;
pub use noiselab_injector as injector;
pub use noiselab_kernel as kernel;
pub use noiselab_machine as machine;
pub use noiselab_noise as noise;
pub use noiselab_runtime as runtime;
pub use noiselab_sim as sim;
pub use noiselab_stats as stats;
pub use noiselab_telemetry as telemetry;
pub use noiselab_workloads as workloads;
