//! End-to-end contract of the sharded multi-process campaign engine:
//! real OS worker processes (the compiled `noiselab` binary), a real
//! on-disk queue, real SIGKILLs — and a merged state that must be
//! **bit-identical** to the single-process driver's.

use noiselab::campaignd::{
    merge_queue, merged_metrics, run_supervised, state_hash, CampaignSpec, CellSpec,
    SupervisorConfig, WorkQueue,
};
use noiselab::core::{run_campaign, CampaignState, ExecConfig, Mitigation, Model, RetryPolicy};
use std::path::PathBuf;
use std::time::Duration;

fn worker_binary() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_noiselab"))
}

fn spec() -> CampaignSpec {
    let cells = Mitigation::ALL
        .iter()
        .flat_map(|&mit| {
            [Model::Omp, Model::Sycl].map(|model| {
                let cfg = ExecConfig::new(model, mit);
                CellSpec {
                    label: cfg.label(),
                    config: cfg,
                }
            })
        })
        .collect();
    CampaignSpec {
        platform: "intel".into(),
        workload: "nbody-tiny".into(),
        cells,
        runs_per_cell: 2,
        seed_base: 0xC0DE,
        faults: None,
        retry: RetryPolicy::none(),
    }
}

fn single_process_baseline() -> CampaignState {
    let spec = spec();
    let resolved = spec.resolve().unwrap();
    run_campaign(&spec.plan(&resolved)).unwrap()
}

fn test_config(workers: usize) -> SupervisorConfig {
    SupervisorConfig {
        workers,
        heartbeat_timeout: Duration::from_secs(60),
        shard_timeout: Duration::from_secs(120),
        respawn_backoff: Duration::from_millis(10),
        backoff_cap: Duration::from_millis(200),
        ..SupervisorConfig::default()
    }
}

fn assert_bit_identical(sharded: &CampaignState, baseline: &CampaignState) {
    assert_eq!(sharded, baseline, "merged state != single-process state");
    assert_eq!(
        serde_json::to_string_pretty(sharded).unwrap(),
        serde_json::to_string_pretty(baseline).unwrap(),
        "serialized checkpoints differ"
    );
    assert_eq!(state_hash(sharded), state_hash(baseline));
    // Stream hashes cell by cell (the fingerprint-v2 contract)...
    for (s, b) in sharded.cells.iter().zip(&baseline.cells) {
        assert_eq!(s.stream_hash, b.stream_hash, "cell {}", b.key.label);
    }
    // ...and the merged metrics registries (counters, histograms,
    // order-sensitive gauge averages).
    assert_eq!(
        merged_metrics(sharded).render(),
        merged_metrics(baseline).render()
    );
}

#[test]
fn four_workers_merge_bit_identical_to_single_process() {
    let root = std::env::temp_dir().join("noiselab-it-sharded-clean");
    let _ = std::fs::remove_dir_all(&root);
    WorkQueue::init(&root, &spec(), 2).unwrap();
    let report = run_supervised(&worker_binary(), &root, &test_config(4)).unwrap();
    assert!(report.spawned >= 4);
    assert_eq!(report.crashes, 0);
    assert!(report.quarantined_shards.is_empty());
    assert_bit_identical(&report.state, &single_process_baseline());
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn sigkilled_worker_mid_shard_recovers_bit_identical() {
    let root = std::env::temp_dir().join("noiselab-it-sharded-chaos");
    let _ = std::fs::remove_dir_all(&root);
    // Shards of 3 cells so a kill after one CellDone is mid-shard.
    WorkQueue::init(&root, &spec(), 3).unwrap();
    let cfg = SupervisorConfig {
        chaos_kills: 2,
        ..test_config(4)
    };
    let report = run_supervised(&worker_binary(), &root, &cfg).unwrap();
    assert_eq!(report.chaos_kills, 2, "both chaos kills must have fired");
    assert!(
        report.quarantined_shards.is_empty(),
        "chaos kills must not quarantine shards"
    );
    assert_bit_identical(&report.state, &single_process_baseline());
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn supervisor_resumes_a_previously_killed_campaign() {
    // Simulate a supervisor killed wholesale: a queue where some shards
    // are done, one is mid-flight (wip + stale lease), the rest
    // untouched. A fresh supervisor must reclaim the lease, finish the
    // rest, and still merge bit-identical.
    let root = std::env::temp_dir().join("noiselab-it-sharded-resume");
    let _ = std::fs::remove_dir_all(&root);
    let (queue, manifest) = WorkQueue::init(&root, &spec(), 2).unwrap();

    // First pass: drain the whole queue once, then rewind it into the
    // interrupted shape using the real ledgers.
    let report = run_supervised(&worker_binary(), &root, &test_config(2)).unwrap();
    let full = report.state;
    let ledger1 = queue.load_done(1).unwrap().unwrap();
    for s in &manifest.shards {
        if s.id >= 2 {
            std::fs::remove_file(queue.done_path(s.id)).unwrap();
        }
    }
    let mut wip = ledger1.clone();
    wip.cells.truncate(1);
    wip.hash = 0;
    std::fs::remove_file(queue.done_path(1)).unwrap();
    queue.save_wip(&wip).unwrap();
    std::fs::write(queue.lease_path(1), "dead-supervisor pid=0\n").unwrap();

    let report = run_supervised(&worker_binary(), &root, &test_config(2)).unwrap();
    assert_bit_identical(&report.state, &full);
    assert_bit_identical(&report.state, &single_process_baseline());
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn merge_queue_matches_supervisor_report() {
    let root = std::env::temp_dir().join("noiselab-it-sharded-merge");
    let _ = std::fs::remove_dir_all(&root);
    WorkQueue::init(&root, &spec(), 4).unwrap();
    let report = run_supervised(&worker_binary(), &root, &test_config(2)).unwrap();
    // An independent merge of the same queue directory reproduces the
    // supervisor's state exactly — merging is a pure disk function.
    let independent = merge_queue(&root).unwrap();
    assert_eq!(independent, report.state);
    assert_eq!(state_hash(&independent), report.state_hash);
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn supervisor_health_folds_into_checkpoints_without_changing_the_ledger() {
    let root = std::env::temp_dir().join("noiselab-it-sharded-health");
    let _ = std::fs::remove_dir_all(&root);
    WorkQueue::init(&root, &spec(), 2).unwrap();
    let report = run_supervised(&worker_binary(), &root, &test_config(2)).unwrap();

    // The fold the CLI performs at checkpoint-save time: health counters
    // ride along in the saved state but stay outside the ledger hash,
    // so calm and chaotic campaigns still merge to identical ledgers.
    let mut folded = report.state.clone();
    folded.supervisor = report.health_metrics();
    assert_eq!(state_hash(&folded), report.state_hash);
    assert_eq!(
        folded.supervisor.counter("campaignd.workers_spawned"),
        u64::from(report.spawned)
    );
    assert!(report.spawned >= 2);

    // Round-trip through the checkpoint file preserves the counters.
    let path = root.join("state.json");
    folded.save(&path).unwrap();
    let loaded = CampaignState::load(&path).unwrap();
    assert_eq!(loaded.supervisor, folded.supervisor);
    // Strip the health annex and the ledger underneath is still
    // bit-identical to the single-process driver's.
    let mut ledger = loaded;
    ledger.supervisor = Default::default();
    assert_bit_identical(&ledger, &single_process_baseline());
    std::fs::remove_dir_all(&root).ok();
}
