//! A shard whose cells crash the worker every time must not wedge the
//! campaign: after `max_shard_crashes` attempts the supervisor
//! quarantines it, the remaining shards complete, and the report names
//! every lost cell.
//!
//! Lives in its own integration-test binary because it sets the
//! process-wide [`CRASH_SHARD_ENV`] variable, which spawned workers
//! inherit — it must not leak into other campaign tests.

use noiselab::campaignd::{
    run_supervised, CampaignSpec, CellSpec, SupervisorConfig, WorkQueue, CRASH_SHARD_ENV,
};
use noiselab::core::{ExecConfig, Mitigation, Model, RetryPolicy};
use std::path::PathBuf;
use std::time::Duration;

#[test]
fn lethal_shard_is_quarantined_and_named() {
    let cells: Vec<CellSpec> = [Mitigation::Rm, Mitigation::Tp, Mitigation::RmHK]
        .iter()
        .flat_map(|&mit| {
            [Model::Omp, Model::Sycl].map(|model| {
                let cfg = ExecConfig::new(model, mit);
                CellSpec {
                    label: cfg.label(),
                    config: cfg,
                }
            })
        })
        .collect();
    let spec = CampaignSpec {
        platform: "intel".into(),
        workload: "nbody-tiny".into(),
        cells,
        runs_per_cell: 2,
        seed_base: 11,
        faults: None,
        retry: RetryPolicy::none(),
    };

    let root = std::env::temp_dir().join("noiselab-it-quarantine");
    let _ = std::fs::remove_dir_all(&root);
    // Shard size 2 over 6 cells -> shards 0..3; shard 1 = cells 2,3.
    WorkQueue::init(&root, &spec, 2).unwrap();
    std::env::set_var(CRASH_SHARD_ENV, "1");

    let cfg = SupervisorConfig {
        workers: 2,
        max_shard_crashes: 3,
        respawn_backoff: Duration::from_millis(10),
        backoff_cap: Duration::from_millis(100),
        ..SupervisorConfig::default()
    };
    let report =
        run_supervised(&PathBuf::from(env!("CARGO_BIN_EXE_noiselab")), &root, &cfg).unwrap();
    std::env::remove_var(CRASH_SHARD_ENV);

    assert_eq!(report.quarantined_shards, vec![1]);
    assert_eq!(report.crashes, 3, "exactly max_shard_crashes attempts");

    // Healthy shards all completed despite the lethal one.
    assert_eq!(report.state.cells.len(), 4);
    for cell in &report.state.cells {
        assert_eq!(cell.samples.len(), 2, "cell {}", cell.key.label);
        assert!(cell.failures.is_empty(), "cell {}", cell.key.label);
    }

    // The quarantine record names the lost cells: shard 1 covers cells
    // 2 and 3, the TP pair in spec order.
    assert_eq!(report.state.quarantined.len(), 1);
    let q = &report.state.quarantined[0];
    assert_eq!(q.shard, 1);
    assert_eq!(q.crashes, 3);
    let lost: Vec<&str> = q.cells.iter().map(|k| k.label.as_str()).collect();
    assert_eq!(lost, vec!["TP-OMP", "TP-SYCL"]);

    // The rendered report surfaces the quarantine to a human.
    let rendered = noiselab::core::render_campaign_report(&report.state.report(6));
    assert!(rendered.contains("QUARANTINED"), "{rendered}");
    assert!(rendered.contains("TP-OMP"), "{rendered}");

    std::fs::remove_dir_all(&root).ok();
}
