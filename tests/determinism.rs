//! Determinism guarantees across the whole stack: the reproducibility
//! claim of the paper's methodology rests on these.

use noiselab::core::{run_once, ExecConfig, Mitigation, Model, Platform};
use noiselab::injector::{generate, GeneratorOptions};
use noiselab::workloads::{Babelstream, NBody};

fn nbody() -> NBody {
    NBody {
        bodies: 8_192,
        steps: 2,
        sycl_kernel_efficiency: 1.3,
    }
}

#[test]
fn identical_seeds_identical_exec_times() {
    let p = Platform::intel();
    let cfg = ExecConfig::new(Model::Omp, Mitigation::Rm);
    let w = nbody();
    for seed in [1u64, 99, 12345] {
        let a = run_once(&p, &w, &cfg, seed, false, None).unwrap();
        let b = run_once(&p, &w, &cfg, seed, false, None).unwrap();
        assert_eq!(a.exec, b.exec, "seed {seed} not reproducible");
        assert_eq!(a.anomaly, b.anomaly);
    }
}

#[test]
fn identical_seeds_identical_traces() {
    let mut p = Platform::intel();
    p.noise.anomaly_prob = 0.5; // exercise the anomaly path too
    let cfg = ExecConfig::new(Model::Sycl, Mitigation::RmHK);
    let w = nbody();
    let a = run_once(&p, &w, &cfg, 7, true, None).unwrap();
    let b = run_once(&p, &w, &cfg, 7, true, None).unwrap();
    let (ta, tb) = (a.trace.unwrap(), b.trace.unwrap());
    assert_eq!(ta.events.len(), tb.events.len());
    assert_eq!(ta.events, tb.events);
}

#[test]
fn different_seeds_differ() {
    let p = Platform::intel();
    let cfg = ExecConfig::new(Model::Omp, Mitigation::Rm);
    let w = nbody();
    let times: Vec<_> = (0..5)
        .map(|s| run_once(&p, &w, &cfg, s, false, None).unwrap().exec)
        .collect();
    let distinct: std::collections::BTreeSet<_> = times.iter().map(|t| t.nanos()).collect();
    assert!(
        distinct.len() >= 4,
        "seeds produce too-similar runs: {times:?}"
    );
}

#[test]
fn config_generation_is_deterministic() {
    let mut p = Platform::intel();
    p.noise.anomaly_prob = 1.0;
    let cfg = ExecConfig::new(Model::Omp, Mitigation::Rm);
    let w = Babelstream {
        elements: 1 << 18,
        iterations: 10,
        ..Default::default()
    };

    let collect = || {
        let mut set = noiselab::noise::TraceSet::default();
        for seed in 0..4 {
            let out = run_once(&p, &w, &cfg, seed, true, None).unwrap();
            let mut t = out.trace.unwrap();
            t.run_index = seed as usize;
            set.runs.push(t);
        }
        generate("det", &set, &GeneratorOptions::default()).unwrap()
    };
    assert_eq!(collect(), collect());
}

#[test]
fn injection_runs_are_deterministic() {
    let mut stormy = Platform::intel();
    stormy.noise.anomaly_prob = 1.0;
    let cfg = ExecConfig::new(Model::Omp, Mitigation::Rm);
    let w = nbody();
    let traced = noiselab::core::run_baseline(&stormy, &w, &cfg, 3, 50, true);
    let config = generate("det", &traced.traces, &GeneratorOptions::default()).unwrap();
    let quiet = Platform::intel();
    let a = run_once(&quiet, &w, &cfg, 9, false, Some(&config)).unwrap();
    let b = run_once(&quiet, &w, &cfg, 9, false, Some(&config)).unwrap();
    assert_eq!(a.exec, b.exec);
}
