//! Cross-crate integration tests: the full §4 pipeline (trace
//! collection → configuration generation → injection) and the headline
//! mitigation behaviours, at smoke scale.

use noiselab::core::experiments::suite;
use noiselab::core::{
    run_baseline, run_injected, run_once, ExecConfig, Mitigation, Model, Platform,
};
use noiselab::injector::{generate, GeneratorOptions};
use noiselab::noise::{AnomalyKind, AnomalySpec};
use noiselab::sim::SimDuration;
use noiselab::workloads::NBody;

fn fast_nbody() -> NBody {
    NBody {
        bodies: 8_192,
        steps: 3,
        sycl_kernel_efficiency: 1.3,
    }
}

/// A platform whose every run contains a deterministic CPU storm, so
/// smoke-scale runs exercise worst-case paths.
fn stormy_intel() -> Platform {
    let mut p = Platform::intel();
    p.noise.anomaly_prob = 1.0;
    p.noise.anomalies = vec![AnomalySpec {
        name: "test-storm".into(),
        kind: AnomalyKind::ThreadStorm {
            threads: 2,
            median_burst: SimDuration::from_millis(2),
            sigma: 0.4,
            mean_gap: SimDuration::from_micros(500),
        },
        window: (SimDuration::from_millis(30), SimDuration::from_millis(60)),
        start: (SimDuration::from_millis(1), SimDuration::from_millis(5)),
    }];
    p
}

#[test]
fn full_pipeline_trace_generate_inject() {
    let platform = stormy_intel();
    let w = fast_nbody();
    let cfg = ExecConfig::new(Model::Omp, Mitigation::Rm);

    // Stage 1: traced baseline.
    let traced = run_baseline(&platform, &w, &cfg, 6, 100, true);
    assert_eq!(traced.traces.runs.len(), 6);
    assert!(traced.traces.runs.iter().all(|t| !t.events.is_empty()));

    // Stage 2: configuration generation.
    let config = generate("it", &traced.traces, &GeneratorOptions::default()).unwrap();
    config.validate().unwrap();
    assert!(
        config.event_count() > 0,
        "storm must survive delta subtraction"
    );
    assert!(config.anomaly_exec > SimDuration::ZERO);

    // Stage 3: injection measurably slows the workload vs a quiet
    // baseline.
    let quiet = Platform::intel();
    let base = run_baseline(&quiet, &w, &cfg, 5, 300, false);
    let injected = run_injected(&quiet, &w, &cfg, &config, 5, 400);
    assert!(
        injected.summary.mean > base.summary.mean * 1.02,
        "injection should slow the workload: {} vs {}",
        injected.summary.mean,
        base.summary.mean
    );
}

#[test]
fn housekeeping_absorbs_cpu_storm() {
    // Under a persistent 2-thread storm, RmHK2 (2 housekeeping cores on
    // Intel) should be much closer to its quiet baseline than Rm is.
    let stormy = stormy_intel();
    let quiet = Platform::intel();
    let w = fast_nbody();

    let degradation = |mit: Mitigation| {
        let cfg = ExecConfig::new(Model::Omp, mit);
        let noisy = run_baseline(&stormy, &w, &cfg, 5, 77, false).summary.mean;
        let base = run_baseline(&quiet, &w, &cfg, 5, 77, false).summary.mean;
        noisy / base - 1.0
    };
    let rm = degradation(Mitigation::Rm);
    let hk2 = degradation(Mitigation::RmHK2);
    assert!(
        hk2 < rm * 0.6,
        "housekeeping should absorb the storm: Rm +{:.1}% vs RmHK2 +{:.1}%",
        rm * 100.0,
        hk2 * 100.0
    );
}

#[test]
fn sycl_more_resilient_than_omp_under_storm() {
    let stormy = stormy_intel();
    let quiet = Platform::intel();
    let w = fast_nbody();
    let degradation = |model: Model| {
        let cfg = ExecConfig::new(model, Mitigation::Rm);
        let noisy = run_baseline(&stormy, &w, &cfg, 5, 55, false).summary.mean;
        let base = run_baseline(&quiet, &w, &cfg, 5, 55, false).summary.mean;
        noisy / base - 1.0
    };
    let omp = degradation(Model::Omp);
    let sycl = degradation(Model::Sycl);
    assert!(
        sycl < omp,
        "dynamic dispatch should absorb noise better: OMP +{:.1}% vs SYCL +{:.1}%",
        omp * 100.0,
        sycl * 100.0
    );
}

#[test]
fn injection_config_roundtrips_through_json_file() {
    let platform = stormy_intel();
    let w = fast_nbody();
    let cfg = ExecConfig::new(Model::Omp, Mitigation::Rm);
    let traced = run_baseline(&platform, &w, &cfg, 4, 900, true);
    let config = generate("rt", &traced.traces, &GeneratorOptions::default()).unwrap();

    let json = config.to_json().unwrap();
    let back = noiselab::injector::InjectionConfig::from_json(&json).unwrap();
    assert_eq!(config, back);

    // Injecting the deserialised config gives identical results.
    let quiet = Platform::intel();
    let a = run_injected(&quiet, &w, &cfg, &config, 3, 1_000);
    let b = run_injected(&quiet, &w, &cfg, &back, 3, 1_000);
    assert_eq!(a.summary.mean, b.summary.mean);
}

#[test]
fn tracing_overhead_is_small() {
    let platform = Platform::intel();
    let w = fast_nbody();
    let cfg = ExecConfig::new(Model::Omp, Mitigation::Rm);
    let off = run_baseline(&platform, &w, &cfg, 5, 42, false).summary.mean;
    let on = run_baseline(&platform, &w, &cfg, 5, 42, true).summary.mean;
    let inc = on / off - 1.0;
    assert!(inc.abs() < 0.02, "tracing overhead {:+.2}%", inc * 100.0);
}

#[test]
fn per_platform_suite_baselines_match_paper_scale() {
    // Calibration guard: the Intel baselines should stay within 15 % of
    // the paper's Table 1 / Tables 3-5 values.
    let intel = Platform::intel();
    for (w, paper, model) in [
        (
            Box::new(suite::nbody_for(&intel)) as Box<dyn noiselab::workloads::Workload + Sync>,
            0.451,
            Model::Omp,
        ),
        (Box::new(suite::babelstream_for(&intel)), 1.902, Model::Omp),
        (Box::new(suite::minife_for(&intel)), 1.059, Model::Omp),
    ] {
        let cfg = ExecConfig::new(model, Mitigation::Rm);
        let out = run_once(&intel, w.as_ref(), &cfg, 5, false, None).unwrap();
        let ratio = out.exec.as_secs_f64() / paper;
        assert!(
            (0.85..1.25).contains(&ratio),
            "{} baseline drifted: sim {:.3}s vs paper {:.3}s",
            w.name(),
            out.exec.as_secs_f64(),
            paper
        );
    }
}
